//! The complete paper workflow, end to end and cross-crate: identify a
//! feature **purely from execution-trace diffs** (no symbol knowledge),
//! block it on the live server, validate with the verifier, and re-enable
//! it — §3.1 + §3.2 in one pass.

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_analysis::{feature_blocks, CovGraph};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, LoadSpec};
use std::sync::Arc;

struct World {
    kernel: Kernel,
    pids: Vec<dynacut_vm::Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
    tracer: Tracer,
}

fn boot_traced_nginx() -> World {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let tracer = Tracer::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let first = kernel.spawn(&spec).unwrap();
    tracer.track(&kernel, first).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let pids = kernel.pids();
    for &pid in &pids {
        let _ = tracer.track(&kernel, pid);
    }
    World {
        kernel,
        pids,
        exe,
        registry,
        tracer,
    }
}

fn request(kernel: &mut Kernel, bytes: &[u8]) -> Vec<u8> {
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    let reply = kernel.client_request(conn, bytes, 10_000_000).unwrap();
    let _ = kernel.client_close(conn);
    reply
}

/// The paper's trace-diff feature discovery: record a *wanted* trace
/// (GET/HEAD) and an *undesired* trace (PUT), compute
/// `blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted`, and block exactly those
/// blocks — without ever consulting the symbol table.
#[test]
fn trace_diff_discovers_and_blocks_the_put_feature() {
    let mut world = boot_traced_nginx();
    world.tracer.nudge(); // discard init coverage

    // Wanted workload: everything the operator wants to keep — including
    // DELETE, whose dispatch path falls *through* the PUT test. Leaving a
    // wanted feature out of the training trace would let the diff claim
    // the shared dispatcher edge (the paper's training-coverage caveat).
    for _ in 0..3 {
        assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
        assert_eq!(
            request(&mut world.kernel, b"HEAD /x\n"),
            nginx::RESP_200_HEAD
        );
        assert_eq!(request(&mut world.kernel, b"DELETE /x"), nginx::RESP_204);
    }
    let wanted = CovGraph::from_log(&world.tracer.nudge());

    // Undesired workload.
    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_201);
    let undesired = CovGraph::from_log(&world.tracer.snapshot());

    // tracediff (filtering out library blocks, as tracediff.py does).
    let put_blocks = feature_blocks(&undesired, &wanted).retain_modules(&[nginx::MODULE]);
    assert!(!put_blocks.is_empty(), "diff found feature blocks");

    // The discovered blocks really are the PUT handler's (plus possibly
    // its dispatcher edge and PLT stubs) — check the handler entry is in
    // the set.
    let handler_entry = world.exe.symbols["ngx_put_handler"].offset;
    assert!(
        put_blocks
            .module_blocks(nginx::MODULE)
            .iter()
            .any(|&(offset, _)| offset == handler_entry),
        "diff includes the PUT handler entry"
    );

    // Block the trace-derived feature with a 403 redirect.
    let feature = Feature::from_cov_graph("PUT (from traces)", nginx::MODULE, &put_blocks)
        .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut world.kernel, &world.pids, &plan)
        .unwrap();

    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_403);
    assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
    assert_eq!(
        request(&mut world.kernel, b"DELETE /x"),
        nginx::RESP_204,
        "DELETE was not part of the undesired trace and stays enabled"
    );
}

/// Over-elimination, detected and healed: train only on GET, block the
/// diff of a HEAD trace (which shares blocks with nothing), then discover
/// via the verifier that one "undesired" block was actually wanted.
#[test]
fn verifier_workflow_recovers_from_thin_training_sets() {
    let mut world = boot_traced_nginx();
    world.tracer.nudge();

    // Thin wanted set: GET only.
    assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
    let wanted = CovGraph::from_log(&world.tracer.nudge());
    // "Undesired" trace accidentally includes HEAD (which the operator
    // actually wants) alongside PUT.
    assert_eq!(
        request(&mut world.kernel, b"HEAD /x\n"),
        nginx::RESP_200_HEAD
    );
    assert_eq!(request(&mut world.kernel, b"PUT /x d"), nginx::RESP_201);
    let undesired = CovGraph::from_log(&world.tracer.snapshot());

    let blocks = feature_blocks(&undesired, &wanted).retain_modules(&[nginx::MODULE]);
    let feature = Feature::from_cov_graph("overzealous", nginx::MODULE, &blocks);
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut world.kernel, &world.pids, &plan)
        .unwrap();
    world.kernel.drain_events();

    // HEAD was misclassified; under the verifier it heals itself and is
    // reported, instead of killing the worker.
    assert_eq!(
        request(&mut world.kernel, b"HEAD /x\n"),
        nginx::RESP_200_HEAD,
        "verifier restores the wanted path"
    );
    let reports = DynaCut::verifier_reports(&mut world.kernel);
    assert!(!reports.is_empty(), "false positives were logged");
    // And the server is still alive and fully functional.
    assert_eq!(request(&mut world.kernel, b"GET /y\n"), nginx::RESP_200);
    for &pid in &world.pids {
        assert!(world.kernel.exit_status(pid).is_none());
    }
}

/// The same trace-diff discovery, through the `Profiler` convenience API
/// — the workflow as the paper narrates it, in five lines.
#[test]
fn profiler_api_runs_the_paper_workflow() {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let mut profiler = dynacut::Profiler::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let first = kernel.spawn(&spec).unwrap();
    profiler.track(&kernel, first).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    for &pid in &kernel.pids() {
        let _ = profiler.track(&kernel, pid);
    }
    profiler.end_phase("init");

    // Wanted phase covers everything the operator keeps.
    for request in [&b"GET /\n"[..], b"HEAD /\n", b"DELETE /x", b"MKCOL /d", b"PROPFIND /\n"] {
        request_conn(&mut kernel, request);
    }
    profiler.end_phase("wanted");
    request_conn(&mut kernel, b"PUT /x data");
    profiler.snapshot_phase("undesired");

    // The diff becomes a Feature directly.
    let feature = profiler
        .feature_between("PUT", "undesired", "wanted", nginx::MODULE)
        .expect("feature discovered")
        .redirect_to_offset(exe.symbols[nginx::ERROR_HANDLER].offset);
    // Init-only analysis is also one call.
    let init_only = profiler
        .init_only_between("init", "wanted", nginx::MODULE)
        .expect("phases recorded");
    assert!(init_only.len() > 50, "init mass found: {}", init_only.len());

    let mut dynacut = DynaCut::new(registry);
    let pids = kernel.pids();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &pids, &plan).unwrap();
    assert_eq!(request_conn(&mut kernel, b"PUT /x data"), nginx::RESP_403);
    assert_eq!(request_conn(&mut kernel, b"GET /\n"), nginx::RESP_200);
}

fn request_conn(kernel: &mut Kernel, bytes: &[u8]) -> Vec<u8> {
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    let reply = kernel.client_request(conn, bytes, 10_000_000).unwrap();
    let _ = kernel.client_close(conn);
    reply
}

/// A second customization cycle on an already-customized process: dump →
/// rewrite → restore must be repeatable (the paper's "instantly update
/// available features" loop).
#[test]
fn repeated_customization_cycles_are_stable() {
    let mut world = boot_traced_nginx();
    let mut dynacut = DynaCut::new(world.registry.clone());
    let put = Feature::from_function("PUT", &world.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
        .unwrap();
    for round in 0..3 {
        let plan = RewritePlan::new()
            .disable(put.clone())
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(Downtime::None);
        let pids = world.kernel.pids();
        dynacut.customize(&mut world.kernel, &pids, &plan).unwrap();
        assert_eq!(
            request(&mut world.kernel, b"PUT /r d"),
            nginx::RESP_403,
            "round {round}: blocked"
        );
        let plan = RewritePlan::new().enable(put.clone()).with_downtime(Downtime::None);
        let pids = world.kernel.pids();
        dynacut.customize(&mut world.kernel, &pids, &plan).unwrap();
        assert_eq!(
            request(&mut world.kernel, b"PUT /r d"),
            nginx::RESP_201,
            "round {round}: restored"
        );
    }
}
