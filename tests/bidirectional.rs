//! Property tests for the central DESIGN.md invariant: rewriting is
//! **bidirectional** — `disable(blocks)` followed by `enable(blocks)`
//! restores the original text bytes exactly, for arbitrary block subsets
//! and any policy.

use dynacut::{disable_in_image, enable_in_image, BlockPolicy, Feature, OriginalText};
use dynacut_apps::{libc::guest_libc, lighttpd};
use dynacut_criu::{dump, DumpOptions, ModuleRegistry};
use dynacut_vm::{Kernel, LoadSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// Boots the Lighttpd analogue once and returns a frozen process image
/// plus the registry and module text length.
fn frozen_world() -> (
    dynacut_criu::ProcessImage,
    ModuleRegistry,
    Arc<dynacut_obj::Image>,
) {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec).unwrap();
    kernel
        .run_until_event(dynacut_apps::EVENT_READY, 200_000_000)
        .unwrap();
    kernel.freeze(pid).unwrap();
    let image = dump(&mut kernel, pid, &DumpOptions::default()).unwrap();
    (image, registry, exe)
}

fn text_snapshot(image: &dynacut_criu::ProcessImage, base: u64, len: usize) -> Vec<u8> {
    image.read_mem(base, len).expect("text mapped")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// disable∘enable == identity on the whole text, for random block
    /// subsets under every policy.
    #[test]
    fn disable_then_enable_is_identity(
        indices in proptest::collection::btree_set(0usize..300, 1..40),
        policy_pick in 0u8..3,
    ) {
        let (mut image, registry, exe) = frozen_world();
        let base = image
            .core
            .modules
            .iter()
            .find(|m| m.name == lighttpd::MODULE)
            .unwrap()
            .base;
        let before = text_snapshot(&image, base, exe.text.len());

        let blocks: Vec<_> = indices
            .iter()
            .filter_map(|&i| exe.blocks.get(i).copied())
            .collect();
        prop_assume!(!blocks.is_empty());
        let feature = Feature::new("prop", lighttpd::MODULE, blocks);
        let policy = match policy_pick {
            0 => BlockPolicy::EntryByte,
            1 => BlockPolicy::WipeBlocks,
            _ => BlockPolicy::UnmapPages,
        };

        let outcome = disable_in_image(&mut image, &feature, policy).expect("disable");
        prop_assert!(outcome.blocks > 0);
        // Something actually changed (bytes or pages).
        prop_assert!(outcome.bytes_written > 0 || outcome.pages_unmapped > 0);

        let mut original = OriginalText::new();
        enable_in_image(&mut image, &feature, &registry, &mut original).expect("enable");
        let after = text_snapshot(&image, base, exe.text.len());
        prop_assert_eq!(before, after, "text restored byte-for-byte");
    }

    /// Disabling is idempotent: applying the same disable twice leaves
    /// the same memory as applying it once.
    #[test]
    fn disable_is_idempotent(
        indices in proptest::collection::btree_set(0usize..300, 1..20),
    ) {
        let (mut image, _registry, exe) = frozen_world();
        let base = image
            .core
            .modules
            .iter()
            .find(|m| m.name == lighttpd::MODULE)
            .unwrap()
            .base;
        let blocks: Vec<_> = indices
            .iter()
            .filter_map(|&i| exe.blocks.get(i).copied())
            .collect();
        prop_assume!(!blocks.is_empty());
        let feature = Feature::new("prop", lighttpd::MODULE, blocks);

        disable_in_image(&mut image, &feature, BlockPolicy::WipeBlocks).expect("first");
        let once = text_snapshot(&image, base, exe.text.len());
        disable_in_image(&mut image, &feature, BlockPolicy::WipeBlocks).expect("second");
        let twice = text_snapshot(&image, base, exe.text.len());
        prop_assert_eq!(once, twice);
    }

    /// The image stays internally consistent across arbitrary disables:
    /// every pagemap page lies inside some VMA, sorted and unique.
    #[test]
    fn image_consistency_after_random_unmaps(
        indices in proptest::collection::btree_set(0usize..300, 1..40),
    ) {
        let (mut image, _registry, exe) = frozen_world();
        let blocks: Vec<_> = indices
            .iter()
            .filter_map(|&i| exe.blocks.get(i).copied())
            .collect();
        prop_assume!(!blocks.is_empty());
        let feature = Feature::new("prop", lighttpd::MODULE, blocks);
        disable_in_image(&mut image, &feature, BlockPolicy::UnmapPages).expect("disable");

        for window in image.pagemap.pages.windows(2) {
            prop_assert!(window[0] < window[1], "pagemap sorted and unique");
        }
        for &page in &image.pagemap.pages {
            prop_assert!(image.mm.vma_at(page).is_some(), "page {page:#x} orphaned");
        }
        prop_assert_eq!(
            image.pages.bytes.len(),
            image.pagemap.pages.len() * dynacut_obj::PAGE_SIZE as usize,
            "pages.img length matches pagemap"
        );
        for window in image.mm.vmas.windows(2) {
            prop_assert!(window[0].end <= window[1].start, "VMAs non-overlapping");
        }
    }
}
