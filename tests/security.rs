//! Security-property tests (paper §3.2.1/§4.2): the difference between
//! the entry-byte and wipe policies under mid-block control-flow hijacks,
//! and the post-init PLT surface.

use dynacut::{BlockPolicy, Downtime, DynaCut, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_isa::decode;
use dynacut_vm::{Kernel, LoadSpec, Pid, ProcState, Signal};
use std::sync::Arc;

struct World {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot() -> World {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let pids = kernel.pids();
    World {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn hijack_worker_to(world: &mut World, addr: u64) {
    let worker = *world.pids.last().unwrap();
    let proc = world.kernel.process_mut(worker).unwrap();
    proc.cpu.pc = addr;
    proc.state = ProcState::Runnable;
    world.kernel.run_for(1_000_000);
}

fn worker_module_base(world: &World) -> u64 {
    let worker = *world.pids.last().unwrap();
    world
        .kernel
        .process(worker)
        .unwrap()
        .modules
        .iter()
        .find(|m| m.image.name == nginx::MODULE)
        .unwrap()
        .base
}

/// Under the entry-byte policy, an attacker who jumps *into the middle*
/// of a blocked feature's block still finds executable original code —
/// the ROP residue the paper acknowledges ("a powerful attacker may
/// redirect the control flow to the middle of a basic block").
#[test]
fn entry_byte_policy_leaves_mid_block_code_executable() {
    let mut world = boot();
    let feature = Feature::from_function("PUT", &world.exe, "ngx_put_handler").unwrap();
    let entry = feature.entry_block().unwrap();
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_block_policy(BlockPolicy::EntryByte)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();

    let base = worker_module_base(&world);
    let worker = *world.pids.last().unwrap();
    // Find the second instruction boundary inside the entry block from
    // the pristine binary.
    let text = &world.exe.text;
    let (_, first_len) = decode(text, entry.addr as usize).unwrap();
    let mid = base + entry.addr + first_len as u64;
    // The byte at the block entry is a trap, but mid-block bytes are the
    // original code.
    let proc = world.kernel.process(worker).unwrap();
    let mut byte = [0u8; 1];
    proc.mem.read_unchecked(base + entry.addr, &mut byte);
    assert_eq!(byte[0], dynacut_isa::TRAP_OPCODE);
    proc.mem.read_unchecked(mid, &mut byte);
    assert_ne!(byte[0], dynacut_isa::TRAP_OPCODE, "gadget bytes remain");

    // A hijack into the middle executes real instructions (it will
    // eventually fault somewhere else, but NOT with an immediate trap at
    // the landing point).
    hijack_worker_to(&mut world, mid);
    let status = world.kernel.exit_status(worker);
    if let Some(status) = status {
        // Whatever happened downstream, the landing instruction itself
        // executed: the worker did not die by an immediate SIGTRAP with
        // pc == mid.
        let proc_gone = status.fatal_signal == Some(Signal::Sigtrap);
        if proc_gone {
            // Acceptable only if the trap happened later (pc advanced).
            // We cannot read the pc of a dead process here, so assert via
            // instruction count: it retired at least one instruction.
            assert!(world.kernel.process(worker).unwrap().insns_retired > 0);
        }
    }
}

/// Under the wipe policy every byte is a trap: any landing point, aligned
/// or not, faults immediately — code-reuse denied.
#[test]
fn wipe_policy_traps_any_landing_point() {
    let mut world = boot();
    let feature = Feature::from_function("PUT", &world.exe, "ngx_put_handler").unwrap();
    let entry = feature.entry_block().unwrap();
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_block_policy(BlockPolicy::WipeBlocks)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();

    let base = worker_module_base(&world);
    let worker = *world.pids.last().unwrap();
    // Land at an arbitrary unaligned offset inside the block.
    let landing = base + entry.addr + 3;
    hijack_worker_to(&mut world, landing);
    let status = world.kernel.exit_status(worker).expect("worker died");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
}

/// Under the unmap policy the pages are gone: the hijack faults with
/// SIGSEGV (no bytes to read at all — stronger than trapping).
#[test]
fn unmap_policy_segfaults_on_access() {
    let mut world = boot();
    // The contiguous cold modules (ssl/gzip/proxy/cache/upstream) span
    // whole pages once coalesced.
    let mut blocks = Vec::new();
    for func in &world.exe.functions {
        if ["ngx_ssl", "ngx_gzip", "ngx_proxy", "ngx_cache", "ngx_upstream"]
            .iter()
            .any(|prefix| func.name.starts_with(prefix))
        {
            blocks.extend(world.exe.blocks_of_function(&func.name));
        }
    }
    let feature = Feature::new("cold", nginx::MODULE, blocks.clone());
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_block_policy(BlockPolicy::UnmapPages)
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();
    assert!(report.pages_unmapped > 0);

    // Hijack into the middle of the unmapped range.
    let base = worker_module_base(&world);
    let worker = *world.pids.last().unwrap();
    let ranges = dynacut_isa::coalesce_blocks(&blocks);
    let widest = ranges.iter().max_by_key(|r| r.end - r.start).unwrap();
    let landing = base + (widest.start + widest.end) / 2;
    // Confirm the page is really unmapped.
    assert!(world
        .kernel
        .process(worker)
        .unwrap()
        .mem
        .vma_at(landing)
        .is_none());
    hijack_worker_to(&mut world, landing);
    let status = world.kernel.exit_status(worker).expect("worker died");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// Defence in depth for the paper's BROP analysis: after wiping the
/// fork PLT stub, a hijack into it dies, and the master (which would
/// have to respawn workers for BROP probing) never forks again.
#[test]
fn brop_fork_stub_removal_kills_probes() {
    let mut world = boot();
    let stub = world.exe.plt_entry("libc_fork").unwrap().stub_offset;
    let stub_block = world.exe.block_containing(stub).unwrap();
    let feature = Feature::new("fork@plt", nginx::MODULE, vec![stub_block]);
    let mut dynacut = DynaCut::new(world.registry.clone());
    let plan = RewritePlan::new()
        .disable(feature)
        .with_block_policy(BlockPolicy::WipeBlocks)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();

    // Serving still works (fork is init-only).
    let conn = world.kernel.client_connect(nginx::PORT).unwrap();
    let reply = world
        .kernel
        .client_request(conn, b"GET /\n", 10_000_000)
        .unwrap();
    assert_eq!(reply, nginx::RESP_200);

    // A BROP probe into fork@plt dies immediately.
    let base = worker_module_base(&world);
    hijack_worker_to(&mut world, base + stub);
    let worker = *world.pids.last().unwrap();
    let status = world.kernel.exit_status(worker).expect("probe killed");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    // No new worker appears: the process count can only shrink.
    assert_eq!(world.kernel.pids().len(), 2, "no respawn for brute-forcing");
}
