//! Soak test: a seeded random walk over DynaCut operations against the
//! Nginx analogue, model-checked every round. Features are disabled and
//! re-enabled in random combinations and policies, interleaved with
//! client traffic, gratuitous checkpoint round-trips, and requests to
//! blocked features — the server must match the model for hundreds of
//! transitions and never die.

use dynacut::{
    BlockPolicy, Downtime, DynaCut, EventKind, FaultPolicy, Feature, Phase, RewritePlan,
};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::{dump_many, restore_many, DumpOptions, ModuleRegistry};
use dynacut_vm::{Kernel, LoadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

const ROUNDS: usize = 60;

/// The success-path phases a non-incremental customize journals, in
/// execution order (no pre-dump, no baseline store).
const SUCCESS_PHASES: [Phase; 6] = [
    Phase::Freeze,
    Phase::Dump,
    Phase::ImageEdit,
    Phase::Inject,
    Phase::RestorePrepare,
    Phase::RestoreCommit,
];

/// Asserts the flight journal for one committed cycle records exactly
/// the phases that ran: every success-path phase started and ended in
/// order, bracketed by one begin and one commit, with no rollback.
fn assert_committed_cycle_journal(kernel: &Kernel, seq0: u64, round: usize) {
    let events: Vec<_> = kernel.flight().since(seq0).collect();
    let mut expected = vec!["customize_begin".to_owned()];
    for phase in SUCCESS_PHASES {
        expected.push(format!("start {phase}"));
        expected.push(format!("end {phase}"));
    }
    expected.push("customize_commit".to_owned());
    let observed: Vec<String> = events
        .iter()
        .filter_map(|event| match &event.kind {
            EventKind::CustomizeBegin { .. } => Some("customize_begin".to_owned()),
            EventKind::CustomizeCommit => Some("customize_commit".to_owned()),
            EventKind::PhaseStart { phase } => Some(format!("start {phase}")),
            EventKind::PhaseEnd { phase, .. } => Some(format!("end {phase}")),
            EventKind::CustomizeRollback | EventKind::RollbackStep { .. } => {
                panic!("round {round}: committed cycle journalled a rollback event")
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        observed, expected,
        "round {round}: journal records exactly the phases that ran"
    );
}

struct Model {
    /// feature name → (feature, enabled?)
    features: BTreeMap<&'static str, (Feature, bool)>,
}

fn expected_reply(method: &str, enabled: bool) -> &'static [u8] {
    if !enabled {
        return nginx::RESP_403;
    }
    match method {
        "GET" => nginx::RESP_200,
        "HEAD" => nginx::RESP_200_HEAD,
        "PUT" | "MKCOL" => nginx::RESP_201,
        "DELETE" => nginx::RESP_204,
        "PROPFIND" => nginx::RESP_207,
        _ => unreachable!(),
    }
}

fn request_for(method: &str) -> Vec<u8> {
    match method {
        "GET" => b"GET /soak\n".to_vec(),
        "HEAD" => b"HEAD /soak\n".to_vec(),
        "PUT" => b"PUT /soak data".to_vec(),
        "DELETE" => b"DELETE /soak".to_vec(),
        "MKCOL" => b"MKCOL /soak".to_vec(),
        "PROPFIND" => b"PROPFIND /\n".to_vec(),
        _ => unreachable!(),
    }
}

#[test]
fn randomized_feature_churn_matches_the_model() {
    let mut rng = StdRng::seed_from_u64(0xD15A_B1ED);

    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let mut dynacut = DynaCut::new(registry);

    // The blockable features (GET stays enabled so the server is always
    // probe-able).
    let mut model = Model {
        features: BTreeMap::new(),
    };
    for (method, handler) in [
        ("HEAD", "ngx_head_handler"),
        ("PUT", "ngx_put_handler"),
        ("DELETE", "ngx_delete_handler"),
        ("MKCOL", "ngx_mkcol_handler"),
        ("PROPFIND", "ngx_propfind_handler"),
    ] {
        let feature = Feature::from_function(method, &exe, handler)
            .unwrap()
            .redirect_to_function(&exe, nginx::ERROR_HANDLER)
            .unwrap();
        model.features.insert(method, (feature, true));
    }

    for round in 0..ROUNDS {
        // Pick a random subset to toggle.
        let method_names: Vec<&'static str> = model.features.keys().copied().collect();
        let toggles: Vec<&'static str> = method_names
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.4))
            .collect();
        if !toggles.is_empty() {
            let policy = if rng.gen_bool(0.5) {
                BlockPolicy::EntryByte
            } else {
                BlockPolicy::WipeBlocks
            };
            let mut plan = RewritePlan::new()
                .with_block_policy(policy)
                .with_fault_policy(FaultPolicy::Redirect)
                .with_downtime(Downtime::None);
            for method in &toggles {
                let (feature, enabled) = model.features.get_mut(method).unwrap();
                if *enabled {
                    plan = plan.disable(feature.clone());
                } else {
                    plan = plan.enable(feature.clone());
                }
                *enabled = !*enabled;
            }
            let pids = kernel.pids();
            let seq0 = kernel.flight().next_seq();
            dynacut
                .customize(&mut kernel, &pids, &plan)
                .unwrap_or_else(|err| panic!("round {round}: customize failed: {err}"));
            assert_committed_cycle_journal(&kernel, seq0, round);
        }

        // Occasionally do a gratuitous checkpoint round-trip (failure
        // injection: the state must survive identity dump/restore).
        if rng.gen_bool(0.15) {
            let pids = kernel.pids();
            for &pid in &pids {
                kernel.freeze(pid).unwrap();
            }
            let checkpoint = dump_many(&mut kernel, &pids, &DumpOptions::default()).unwrap();
            for &pid in &pids {
                kernel.remove_process(pid).unwrap();
            }
            restore_many(&mut kernel, &checkpoint, dynacut.registry()).unwrap();
        }

        // Probe every feature and GET; replies must match the model.
        let conn = kernel.client_connect(nginx::PORT).unwrap();
        let mut probes: Vec<(&str, bool)> =
            vec![("GET", true)];
        for (method, (_, enabled)) in &model.features {
            probes.push((method, *enabled));
        }
        for (method, enabled) in probes {
            let reply = kernel
                .client_request(conn, &request_for(method), 10_000_000)
                .unwrap();
            assert_eq!(
                reply,
                expected_reply(method, enabled),
                "round {round}: {method} (enabled={enabled})"
            );
        }
        let _ = kernel.client_close(conn);

        // Both processes stay alive throughout.
        for pid in kernel.pids() {
            assert!(
                kernel.exit_status(pid).is_none(),
                "round {round}: {pid} died"
            );
        }
    }

    // Hundreds of transitions later, the recorder's accounting still
    // balances: everything ever recorded is either held or counted as
    // dropped — loss is explicit, never silent.
    let flight = kernel.flight();
    assert_eq!(flight.next_seq(), flight.len() as u64 + flight.dropped());
    let metrics = flight.metrics();
    assert_eq!(metrics.counter("customize.rollbacks"), 0);
    assert!(metrics.counter("customize.commits") >= 1);
    // Probing redirected features trips the planted traps; the policy
    // label the commit set must show up in the trap-hit counters.
    assert!(metrics.counter("trap_hits.redirect") >= 1);
}
