//! Incremental checkpointing, cross-crate: the delta-chain bit-identity
//! property, multi-process (nginx master + worker) incremental dumps,
//! the [`DynaCut::with_incremental`] session flow, and the regression
//! pinning the stock-CRIU lost-rewrite hazard.

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::{
    dump_incremental, dump_many, mark_clean_after_dump, materialize_chain, restore_chain,
    CheckpointStore, CkptId, DumpOptions, ModuleRegistry,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, PAGE_SIZE};
use dynacut_vm::{Kernel, LoadSpec, Pid, Sysno};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// A minimal echo server with a several-page BSS scratch area, cheap
// enough to boot inside a property test.
// ---------------------------------------------------------------------

const SCRATCH_PAGES: u64 = 6;

fn scratch_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 9090));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "scratch", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "scratch", 0);
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new("scratch_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("scratch", SCRATCH_PAGES * PAGE_SIZE);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

fn boot_scratch() -> (Kernel, Pid, ModuleRegistry) {
    let exe = scratch_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("server up");
    (kernel, pid, registry)
}

fn scratch_base(kernel: &Kernel, pid: Pid) -> u64 {
    kernel
        .process(pid)
        .unwrap()
        .mem
        .vmas()
        .iter()
        .find(|v| v.perms.write && v.end - v.start >= SCRATCH_PAGES * PAGE_SIZE)
        .expect("scratch vma")
        .start
}

// ---------------------------------------------------------------------
// Property: restoring parent + deltas is bit-for-bit identical to
// restoring the full dump, for arbitrary guest write/drop sequences
// split across two delta windows.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_chain_restore_is_bit_identical(
        window_1 in proptest::collection::vec((0u64..SCRATCH_PAGES, any::<u8>(), 1usize..64), 0..12),
        window_2 in proptest::collection::vec((0u64..SCRATCH_PAGES, any::<u8>(), 1usize..64), 0..12),
        drop_page in proptest::option::of(0u64..SCRATCH_PAGES),
    ) {
        let (mut kernel, pid, registry) = boot_scratch();
        let base = scratch_base(&kernel, pid);
        kernel.freeze(pid).unwrap();
        let parent = dump_many(&mut kernel, &[pid], &DumpOptions::default()).unwrap();
        mark_clean_after_dump(&mut kernel, &[pid]).unwrap();

        // First delta window.
        for &(page, byte, len) in &window_1 {
            let fill = vec![byte; len];
            kernel.process_mut(pid).unwrap().mem
                .write_unchecked(base + page * PAGE_SIZE, &fill);
        }
        let delta_1 = dump_incremental(
            &mut kernel, &[pid], &DumpOptions::default(), CkptId(0), &parent,
        ).unwrap();
        mark_clean_after_dump(&mut kernel, &[pid]).unwrap();
        let baseline_1 = materialize_chain(&parent, [&delta_1]).unwrap();

        // Second delta window, including an optional page drop.
        for &(page, byte, len) in &window_2 {
            let fill = vec![byte; len];
            kernel.process_mut(pid).unwrap().mem
                .write_unchecked(base + page * PAGE_SIZE, &fill);
        }
        if let Some(page) = drop_page {
            kernel.process_mut(pid).unwrap().mem.drop_page(base + page * PAGE_SIZE);
        }
        let delta_2 = dump_incremental(
            &mut kernel, &[pid], &DumpOptions::default(), CkptId(1), &baseline_1,
        ).unwrap();

        // The chain materializes to the exact full dump, byte for byte.
        let full = dump_many(&mut kernel, &[pid], &DumpOptions::default()).unwrap();
        let materialized = materialize_chain(&parent, [&delta_1, &delta_2]).unwrap();
        prop_assert_eq!(&materialized, &full);
        prop_assert_eq!(materialized.to_bytes(), full.to_bytes());

        // And the restored process memory matches the full image exactly.
        kernel.remove_process(pid).unwrap();
        restore_chain(&mut kernel, &parent, [&delta_1, &delta_2], &registry).unwrap();
        let restored = kernel.process(pid).unwrap();
        let image = &full.procs[0];
        for (index, &page) in image.pagemap.pages.iter().enumerate() {
            let expected = &image.pages.bytes[index * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
            let mut got = vec![0u8; PAGE_SIZE as usize];
            restored.mem.read_unchecked(page, &mut got);
            prop_assert_eq!(&got[..], expected, "page {:#x} differs after chain restore", page);
        }
    }

    /// dump → mark_clean → dump always yields an empty delta, whatever
    /// ran before the baseline was taken.
    #[test]
    fn dump_after_sweep_is_always_empty(
        warmup in proptest::collection::vec((0u64..SCRATCH_PAGES, any::<u8>()), 0..8),
    ) {
        let (mut kernel, pid, _registry) = boot_scratch();
        let base = scratch_base(&kernel, pid);
        for &(page, byte) in &warmup {
            kernel.process_mut(pid).unwrap().mem
                .write_unchecked(base + page * PAGE_SIZE, &[byte; 8]);
        }
        kernel.freeze(pid).unwrap();
        let parent = dump_many(&mut kernel, &[pid], &DumpOptions::default()).unwrap();
        mark_clean_after_dump(&mut kernel, &[pid]).unwrap();
        let delta = dump_incremental(
            &mut kernel, &[pid], &DumpOptions::default(), CkptId(0), &parent,
        ).unwrap();
        prop_assert_eq!(delta.pages_bytes(), 0);
        prop_assert!(delta.procs.iter().all(|p| p.dirty.pages.is_empty()));
    }
}

// ---------------------------------------------------------------------
// Multi-process: nginx master + worker through dump_many-style
// incremental checkpoints.
// ---------------------------------------------------------------------

struct World {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot_nginx() -> World {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let pids = kernel.pids();
    World {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn request(kernel: &mut Kernel, bytes: &[u8]) -> Vec<u8> {
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    let reply = kernel.client_request(conn, bytes, 10_000_000).unwrap();
    let _ = kernel.client_close(conn);
    reply
}

#[test]
fn nginx_master_and_worker_checkpoint_incrementally() {
    let mut world = boot_nginx();
    assert!(world.pids.len() >= 2, "nginx runs master + worker");

    for &pid in &world.pids {
        world.kernel.freeze(pid).unwrap();
    }
    let parent = dump_many(&mut world.kernel, &world.pids, &DumpOptions::default()).unwrap();
    mark_clean_after_dump(&mut world.kernel, &world.pids).unwrap();
    for &pid in &world.pids {
        world.kernel.thaw(pid).unwrap();
    }

    // Live traffic dirties worker pages (request parsing, response
    // buffers); the master mostly idles.
    assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_201);

    for &pid in &world.pids {
        world.kernel.freeze(pid).unwrap();
    }
    let delta = dump_incremental(
        &mut world.kernel,
        &world.pids,
        &DumpOptions::default(),
        CkptId(0),
        &parent,
    )
    .unwrap();
    let full = dump_many(&mut world.kernel, &world.pids, &DumpOptions::default()).unwrap();

    assert_eq!(delta.procs.len(), world.pids.len());
    assert!(delta.pages_bytes() < full.pages_bytes());
    let materialized = materialize_chain(&parent, [&delta]).unwrap();
    assert_eq!(materialized, full);

    // Store round trip, then restore the chain and serve again.
    let mut store = CheckpointStore::new();
    let parent_id = store.put_full(parent).unwrap();
    let delta_id = store.put_delta(delta).unwrap();
    assert_eq!((parent_id, delta_id), (CkptId(0), CkptId(1)));
    let resolved = store.materialize(delta_id).unwrap();
    for &pid in &world.pids {
        world.kernel.remove_process(pid).unwrap();
    }
    restore_chain(&mut world.kernel, &resolved, [], &world.registry).unwrap();
    assert_eq!(request(&mut world.kernel, b"GET /y\n"), nginx::RESP_200);
}

// ---------------------------------------------------------------------
// Session flow: DynaCut::with_incremental pre-dumps outside the freeze
// window and stores disable/enable cycles as a delta chain.
// ---------------------------------------------------------------------

#[test]
fn session_incremental_cycles_store_deltas_and_shrink_the_freeze() {
    let mut world = boot_nginx();
    let mut dynacut = DynaCut::new(world.registry.clone()).with_incremental();

    // Cycle one: block PUT. First checkpoint has no parent → stored full.
    let put = Feature::from_function("PUT", &world.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(put.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report_1 = dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();
    assert_eq!(report_1.checkpoint_id, Some(CkptId(0)));
    let full_bytes = report_1.stored_page_bytes.unwrap();
    assert!(full_bytes > 0);
    // The pre-dump moved the whole payload before the freeze; nothing
    // ran in between, so the frozen residue is empty. (`full_bytes` can
    // exceed the dump-time payload: the rewrite phase adds patched text
    // pages to the stored image afterwards.)
    assert_eq!(report_1.frozen_page_bytes, 0);
    assert!(report_1.prewritten_page_bytes > 0);
    assert!(report_1.prewritten_page_bytes <= full_bytes);
    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_403);

    // Traffic between cycles dirties a few pages.
    assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);

    // Cycle two: block DELETE as well → stored as a delta, far smaller
    // than the full image.
    let delete = Feature::from_function("DELETE", &world.exe, "ngx_delete_handler")
        .unwrap()
        .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(delete)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report_2 = dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();
    assert_eq!(report_2.checkpoint_id, Some(CkptId(1)));
    let delta_bytes = report_2.stored_page_bytes.unwrap();
    assert!(
        delta_bytes < full_bytes,
        "delta ({delta_bytes}) not smaller than full ({full_bytes})"
    );

    // The chain materializes and both rewrites are live.
    assert_eq!(dynacut.store().len(), 2);
    dynacut.store().materialize(CkptId(1)).unwrap();
    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_403);
    assert_eq!(request(&mut world.kernel, b"DELETE /x"), nginx::RESP_403);
    assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
}

#[test]
fn session_without_incremental_stores_nothing() {
    let mut world = boot_nginx();
    let mut dynacut = DynaCut::new(world.registry.clone());
    let put = Feature::from_function("PUT", &world.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(put)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut world.kernel, &world.pids.clone(), &plan)
        .unwrap();
    // Full dumps remain the default: whole payload copied frozen, no
    // store entries.
    assert_eq!(report.stored_page_bytes, None);
    assert_eq!(report.checkpoint_id, None);
    assert!(report.frozen_page_bytes > 0);
    assert_eq!(report.prewritten_page_bytes, 0);
    assert!(dynacut.store().is_empty());
    assert_eq!(request(&mut world.kernel, b"PUT /x data"), nginx::RESP_403);
}

// ---------------------------------------------------------------------
// Regression: the stock-CRIU hazard the paper's criu/mem.c patch fixes.
// An int3 rewrite must survive restore under DynaCut's default options
// and is silently lost under `DumpOptions::stock_criu()`.
// ---------------------------------------------------------------------

#[test]
fn stock_criu_options_lose_the_int3_patch_after_restore() {
    for (options, blocked) in [
        (DumpOptions::default(), true),
        (DumpOptions::stock_criu(), false),
    ] {
        let mut world = boot_nginx();
        let put = Feature::from_function("PUT", &world.exe, "ngx_put_handler")
            .unwrap()
            .redirect_to_function(&world.exe, nginx::ERROR_HANDLER)
            .unwrap();
        let mut dynacut = DynaCut::new(world.registry.clone()).with_dump_options(options);
        let plan = RewritePlan::new()
            .disable(put)
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(Downtime::None);
        dynacut
            .customize(&mut world.kernel, &world.pids.clone(), &plan)
            .unwrap();

        let reply = request(&mut world.kernel, b"PUT /x data");
        if blocked {
            assert_eq!(reply, nginx::RESP_403, "DynaCut default keeps the patch");
        } else {
            // Stock CRIU reconstructed pristine text from the binary on
            // restore: the trap byte is gone and the feature still runs.
            assert_eq!(reply, nginx::RESP_201, "stock CRIU loses the patch");
        }
        // Untouched paths work either way.
        assert_eq!(request(&mut world.kernel, b"GET /x\n"), nginx::RESP_200);
    }
}
