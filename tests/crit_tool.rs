//! Exercises the `crit` image-tool workflow: checkpoint a live server to
//! a file (the paper's tmpfs image directory), then inspect and round-trip
//! it through the CLI's library surface.

use dynacut_apps::{libc::guest_libc, redis, EVENT_READY};
use dynacut_criu::{dump_many, CheckpointImage, DumpOptions};
use dynacut_vm::{Kernel, LoadSpec};

fn checkpoint_redis() -> CheckpointImage {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let pid = kernel
        .spawn(&LoadSpec::with_libs(exe, vec![libc]))
        .unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    kernel.freeze(pid).unwrap();
    dump_many(&mut kernel, &[pid], &DumpOptions::default()).unwrap()
}

#[test]
fn checkpoint_file_round_trips_through_disk() {
    let checkpoint = checkpoint_redis();
    let dir = std::env::temp_dir().join(format!("dynacut-crit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("redis.dcr");
    std::fs::write(&path, checkpoint.to_bytes()).unwrap();

    let raw = std::fs::read(&path).unwrap();
    let parsed = CheckpointImage::from_bytes(&raw).unwrap();
    assert_eq!(parsed, checkpoint);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decode_text_describes_the_server() {
    let checkpoint = checkpoint_redis();
    let text = checkpoint.decode_text();
    assert!(text.contains("redis"));
    assert!(text.contains("listener :6379"));
    assert!(text.contains("r-x"), "text segment visible");
    assert!(text.contains("rw-"), "data segment visible");
    assert!(text.contains("[stack]"));
    // Module table names both binaries.
    assert!(text.contains("libc @"));
}

#[test]
fn checkpoint_summary_facts_are_consistent() {
    // The facts `crit info` prints must be internally consistent.
    let checkpoint = checkpoint_redis();
    assert_eq!(checkpoint.procs.len(), 1);
    let image = &checkpoint.procs[0];
    assert!(image.exec_pages_dumped, "DynaCut default dumps text pages");
    assert_eq!(
        checkpoint.pages_bytes(),
        image.pagemap.pages.len() * dynacut_obj::PAGE_SIZE as usize
    );
    // The redis heap (160 pages) plus text/data dominates the image.
    assert!(image.pagemap.pages.len() > 160);
    // Every fd the files image lists decodes to something printable.
    assert!(image.files.fds.iter().any(|(_, fd)| matches!(
        fd,
        dynacut_criu::FdImage::Listener { port: 6379 }
    )));
}
