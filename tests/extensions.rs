//! The paper's §5 extension directions, implemented and tested:
//! customizing **library** code, **page-per-feature** layout for fast
//! unmapping, and **automatic** init-phase detection via syscall
//! monitoring.

use dynacut::{BlockPolicy, Downtime, DynaCut, Feature, RewritePlan};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::{libc::guest_libc, lighttpd, EVENT_READY};
use dynacut_criu::{dump, DumpOptions, ModuleRegistry};
use dynacut_isa::{Assembler, Insn, Reg, TRAP_OPCODE};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, PAGE_SIZE};
use dynacut_trace::{InitDetector, Tracer};
use dynacut_vm::{Kernel, LoadSpec, ProcState, Signal, Sysno};
use std::sync::Arc;

/// §5: "unused shared library code can be dynamically unloaded through
/// the process rewriting approach". We disable a guest-libc function
/// (`libc_atoi`, used only during config parsing) inside the **libc
/// module** of a live server.
#[test]
fn library_code_can_be_customized_too() {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let libc_image = Arc::clone(&spec.libs[0]);
    let pid = kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();

    // The feature lives in the "libc" module, not the application.
    let feature = Feature::from_function("libc atoi", &libc_image, "libc_atoi").unwrap();
    assert_eq!(feature.module, "libc");
    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .disable(feature.clone())
        .with_block_policy(BlockPolicy::WipeBlocks)
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &[pid], &plan).unwrap();
    assert!(report.bytes_written > 0);

    // Serving still works — atoi is initialization-only.
    let conn = kernel.client_connect(lighttpd::PORT).unwrap();
    let reply = kernel.client_request(conn, b"GET /\n", 10_000_000).unwrap();
    assert!(reply.starts_with(b"HTTP/1.1 200"));

    // The libc function body is really gone from memory.
    let proc = kernel.process(pid).unwrap();
    let libc_base = proc
        .modules
        .iter()
        .find(|m| m.image.name == "libc")
        .unwrap()
        .base;
    let entry = feature.entry_block().unwrap();
    let mut byte = [0u8; 1];
    proc.mem.read_unchecked(libc_base + entry.addr, &mut byte);
    assert_eq!(byte[0], TRAP_OPCODE);

    // A hijack into the wiped libc code dies.
    {
        let proc = kernel.process_mut(pid).unwrap();
        proc.cpu.pc = libc_base + entry.addr;
        proc.state = ProcState::Runnable;
    }
    kernel.run_for(1_000_000);
    assert_eq!(
        kernel.exit_status(pid).unwrap().fatal_signal,
        Some(Signal::Sigtrap)
    );
}

/// Builds a sleeper program whose `feat` function either shares pages
/// with the rest of the text (packed) or sits on its own pages
/// (page-per-feature, via align directives).
fn sleeper_with_feature(page_aligned: bool) -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("sleep_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Nanosleep as u64));
    asm.push(Insn::Movi(Reg::R1, 1_000_000));
    asm.push(Insn::Syscall);
    asm.jmp("sleep_loop");
    if page_aligned {
        asm.align(PAGE_SIZE);
    }
    asm.func("feat");
    // A feature bigger than one page (~230 blocks × ~23 bytes).
    asm.push(Insn::Movi(Reg::R8, 1));
    for index in 0..230 {
        asm.push(Insn::Addi(Reg::R8, index + 1));
        asm.push(Insn::Muli(Reg::R8, 3));
        asm.push(Insn::Cmpi(Reg::R8, 0));
        asm.jcc(dynacut_isa::Cond::Eq, "feat_end");
    }
    asm.label("feat_end");
    asm.push(Insn::Ret);
    if page_aligned {
        asm.align(PAGE_SIZE);
    }
    asm.func("tail");
    asm.push(Insn::Ret);
    let mut builder = ModuleBuilder::new(
        if page_aligned { "aligned" } else { "packed" },
        ObjectKind::Executable,
    );
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

/// §5: "separate each feature-related code block into separate memory
/// pages. As such, we can dynamically unload these code pages …, faster
/// than replacing code with int3 instructions." The ablation: the same
/// feature yields strictly more unmappable pages (and fewer int3 writes)
/// under the page-per-feature layout.
#[test]
fn page_per_feature_layout_maximises_unmapping() {
    let mut outcomes = Vec::new();
    for page_aligned in [false, true] {
        let exe = sleeper_with_feature(page_aligned);
        let module = exe.name.clone();
        let mut kernel = Kernel::new();
        let spec = LoadSpec::exe_only(exe);
        let mut registry = ModuleRegistry::new();
        registry.insert(Arc::clone(&spec.exe));
        let exe = Arc::clone(&spec.exe);
        let pid = kernel.spawn(&spec).unwrap();
        kernel.run_for(10_000);
        kernel.freeze(pid).unwrap();
        let mut image = dump(&mut kernel, pid, &DumpOptions::default()).unwrap();
        let feature = Feature::from_function("feat", &exe, "feat").unwrap();
        let outcome =
            dynacut::disable_in_image(&mut image, &feature, BlockPolicy::UnmapPages).unwrap();
        outcomes.push((module, outcome));
    }
    let packed = &outcomes[0].1;
    let aligned = &outcomes[1].1;
    assert!(
        aligned.pages_unmapped > packed.pages_unmapped,
        "aligned unmaps more pages: {} vs {}",
        aligned.pages_unmapped,
        packed.pages_unmapped
    );
    assert!(
        aligned.bytes_written < packed.bytes_written,
        "aligned needs fewer int3 bytes for the page remainders"
    );
    // The aligned layout unmaps the feature's full footprint.
    assert!(aligned.pages_unmapped >= 1);
}

/// §5: "we can monitor specific system calls to determine the end of the
/// initialization phase, making DynaCut fully automatic." The FirstAccept
/// detector replaces the manual nudge and finds the same init-only code.
#[test]
fn automatic_init_detection_matches_manual_nudge() {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let tracer = Tracer::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec).unwrap();
    tracer.track(&kernel, pid).unwrap();

    // Run in slices with NO knowledge of the ready event; stop when the
    // syscall monitor sees the first blocking accept.
    let detector = InitDetector::FirstAccept;
    let mut observed = Vec::new();
    for _ in 0..1000 {
        kernel.run_for(20_000);
        observed.extend(tracer.drain_syscalls());
        if detector.detect(&observed, pid).is_some() {
            break;
        }
    }
    assert!(
        detector.detect(&observed, pid).is_some(),
        "accept observed automatically"
    );
    let init_cov = CovGraph::from_log(&tracer.nudge());

    // Serve, snapshot, diff.
    let conn = kernel.client_connect(lighttpd::PORT).unwrap();
    for _ in 0..3 {
        kernel.client_request(conn, b"GET /\n", 10_000_000).unwrap();
    }
    let serving_cov = CovGraph::from_log(&tracer.snapshot());
    let auto_init = init_only_blocks(&init_cov, &serving_cov).retain_modules(&[lighttpd::MODULE]);

    // The automatically detected init set contains the known init-only
    // functions (config parsing, module init) and none of the serving
    // path.
    let block_key = |offset: u64, size: u32| dynacut_analysis::BlockKey {
        module: lighttpd::MODULE.into(),
        offset,
        size,
    };
    for func in ["lt_parse_config", "lt_plugins_init", "lt_mod_init_00"] {
        let blocks = exe.blocks_of_function(func);
        assert!(
            blocks
                .iter()
                .any(|b| auto_init.contains(&block_key(b.addr, b.size))),
            "{func} detected as init-only"
        );
    }
    for func in ["lt_get_handler", "lt_log_access"] {
        let blocks = exe.blocks_of_function(func);
        assert!(
            blocks
                .iter()
                .all(|b| !auto_init.contains(&block_key(b.addr, b.size))),
            "{func} must not be classified init-only"
        );
    }

    // The syscall-quiescence detector fires once the serving syscalls
    // (read/write/accept) have streamed past the last setup call.
    observed.extend(tracer.drain_syscalls());
    let quiescence = InitDetector::SyscallQuiescence { window: 5 };
    assert!(quiescence.detect(&observed, pid).is_some());
}

/// §5: "dynamically enabling/disabling seccomp filtering" through
/// process rewriting — post-init, the server is restricted to its serving
/// syscalls; anything else (a hijacked `fork`, `open`, `mmap`) kills it
/// with SIGSYS, Ghavamnia-style temporal specialization.
#[test]
fn dynamic_seccomp_filter_via_process_rewriting() {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let libc_image = Arc::clone(&spec.libs[0]);
    let pid = kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();

    // Post-init, the event loop only needs these.
    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .restrict_syscalls(&[
            Sysno::Read,
            Sysno::Write,
            Sysno::Accept,
            Sysno::Close,
            Sysno::Exit,
        ])
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &[pid], &plan).unwrap();

    // Serving is unaffected.
    let conn = kernel.client_connect(lighttpd::PORT).unwrap();
    let reply = kernel.client_request(conn, b"GET /\n", 10_000_000).unwrap();
    assert!(reply.starts_with(b"HTTP/1.1 200"));

    // A hijack that calls libc_open (a filtered syscall) dies with SIGSYS.
    let open_addr = {
        let proc = kernel.process(pid).unwrap();
        let libc_base = proc
            .modules
            .iter()
            .find(|m| m.image.name == "libc")
            .unwrap()
            .base;
        libc_base + libc_image.symbols["libc_open"].offset
    };
    {
        let proc = kernel.process_mut(pid).unwrap();
        proc.cpu.pc = open_addr;
        proc.state = ProcState::Runnable;
    }
    kernel.run_for(1_000_000);
    let status = kernel.exit_status(pid).expect("filter killed the hijack");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsys));
}

/// §5 library unloading: after all features are re-enabled, the stale
/// injected fault-handler library is unloaded from the live process —
/// its pages disappear, its sigaction is reset, and the server keeps
/// serving.
#[test]
fn stale_handler_library_can_be_unloaded() {
    use dynacut::{DynaCut, FaultPolicy, Feature};
    use dynacut_criu::{dump, restore, DumpOptions};

    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();

    // Disable + re-enable PUT: the injected handler library is now dead
    // weight in the address space.
    let mut dynacut = DynaCut::new(registry);
    let put = Feature::from_function("PUT", &exe, "lt_put_handler")
        .unwrap()
        .redirect_to_function(&exe, lighttpd::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(put.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &[pid], &plan).unwrap();
    let plan = RewritePlan::new().enable(put).with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &[pid], &plan).unwrap();

    // The handler library is mapped under a versioned name.
    let handler_name = kernel
        .process(pid)
        .unwrap()
        .modules
        .iter()
        .map(|m| m.image.name.clone())
        .find(|name| name.starts_with("dc_sighandler"))
        .expect("handler module mapped");

    // Unload it through a manual dump/edit/restore cycle.
    kernel.freeze(pid).unwrap();
    let mut image = dump(&mut kernel, pid, &DumpOptions::default()).unwrap();
    let vmas_before = image.mm.vmas.len();
    let pages = image
        .unload_module(&handler_name, dynacut.registry())
        .expect("unload");
    assert!(pages > 0, "handler pages removed");
    assert!(image.mm.vmas.len() < vmas_before);
    assert!(!image.core.modules.iter().any(|m| m.name == handler_name));
    assert!(
        !image.core.sigactions[dynacut_vm::Signal::Sigtrap.number() as usize].is_handled(),
        "dangling sigaction reset"
    );
    kernel.remove_process(pid).unwrap();
    restore(&mut kernel, &image, dynacut.registry()).unwrap();

    // Still serving, PUT included.
    let conn = kernel.client_connect(lighttpd::PORT).unwrap();
    let reply = kernel
        .client_request(conn, b"PUT /f data", 10_000_000)
        .unwrap();
    assert_eq!(reply, dynacut_apps::nginx::RESP_201);
}
