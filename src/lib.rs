//! DynaCut reproduction umbrella crate: hosts cross-crate integration tests and examples.
pub use dynacut;
