//! The [`Strategy`] trait and the built-in strategies.

use crate::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

/// A recipe for generating values of one type (subset of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Type-erases the strategy so heterogeneous strategies of one value
    /// type can be unioned (see [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let source = self;
        BoxedStrategy(Rc::new(move |rng| source.generate(rng)))
    }
}

/// Values with a canonical strategy, reachable through [`any`].
pub trait Arbitrary {
    /// Draws one canonical value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range for integers).
pub fn any<T: Arbitrary + Debug>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary + Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased alternatives (the `prop_oneof!`
/// backing type).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $index:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

/// One parsed element of a character-class string pattern.
#[derive(Debug, Clone)]
enum PatternPiece {
    /// A `[lo-hi]` class (or single literal char) with repeat bounds.
    Class { lo: u8, hi: u8, min: u32, max: u32 },
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let bytes = pattern.as_bytes();
    let mut pieces = Vec::new();
    let mut cursor = 0usize;
    while cursor < bytes.len() {
        let (lo, hi) = if bytes[cursor] == b'[' {
            let close = pattern[cursor..]
                .find(']')
                .map(|i| cursor + i)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            let class = &bytes[cursor + 1..close];
            cursor = close + 1;
            match class {
                [lo, b'-', hi] => (*lo, *hi),
                [single] => (*single, *single),
                _ => panic!("unsupported character class in pattern {pattern:?}"),
            }
        } else {
            let ch = bytes[cursor];
            cursor += 1;
            (ch, ch)
        };
        let (min, max) = if cursor < bytes.len() && bytes[cursor] == b'{' {
            let close = pattern[cursor..]
                .find('}')
                .map(|i| cursor + i)
                .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
            let body = &pattern[cursor + 1..close];
            cursor = close + 1;
            match body.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("repeat min"),
                    max.trim().parse().expect("repeat max"),
                ),
                None => {
                    let n = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi && min <= max, "degenerate pattern {pattern:?}");
        pieces.push(PatternPiece::Class { lo, hi, min, max });
    }
    pieces
}

/// String patterns double as strategies, as in upstream proptest. Only
/// the simple character-class shape the test suites use is supported,
/// e.g. `"[a-z]{1,12}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let PatternPiece::Class { lo, hi, min, max } = piece;
            let count = min + rng.below(u64::from(max - min) + 1) as u32;
            for _ in 0..count {
                out.push((lo + rng.below(u64::from(hi - lo) + 1) as u8) as char);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_draws_every_option() {
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(union.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..256 {
            let v = (-100i32..-50).generate(&mut rng);
            assert!((-100..-50).contains(&v));
        }
    }

    #[test]
    fn full_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::seed_from_u64(7);
        let _ = (0u64..=u64::MAX).generate(&mut rng);
        let v = (1u8..=255).generate(&mut rng);
        assert!(v >= 1);
    }

    #[test]
    fn pattern_with_fixed_repeat_and_literals() {
        let mut rng = TestRng::seed_from_u64(8);
        let s = "x[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x'));
        assert!(s[1..].bytes().all(|b| b.is_ascii_digit()));
    }
}
