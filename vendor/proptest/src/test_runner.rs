//! Case running, configuration, and the user-facing macros.

/// Per-suite configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is retried.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Deterministic seed for one `(test, attempt)` pair.
pub fn case_seed(test_name: &str, attempt: u32) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::hash::DefaultHasher::new();
    test_name.hash(&mut hasher);
    attempt.hash(&mut hasher);
    hasher.finish()
}

/// Defines property tests. Mirrors upstream `proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies via `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal per-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($param:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempt: u32 = 0;
            while __accepted < __config.cases {
                assert!(
                    __attempt < __config.cases.saturating_mul(64).saturating_add(1024),
                    "proptest: too many prop_assume! rejections in {}",
                    __test_name,
                );
                let mut __rng = $crate::TestRng::seed_from_u64(
                    $crate::test_runner::case_seed(__test_name, __attempt),
                );
                __attempt += 1;
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let $param = {
                        let __value =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!(
                            "{} = {:?}",
                            stringify!($param).trim_start_matches("mut "),
                            &__value
                        ));
                        __value
                    };
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__message),
                    ) => {
                        panic!(
                            "proptest: minimal failing input (no shrinking) for {}:\n  {}\n{}",
                            __test_name,
                            __inputs.join("\n  "),
                            __message,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property test body; on failure the case fails with
/// the generated inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property test bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __left, __right,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __left, __right,
                );
            }
        }
    };
}

/// Inequality assertion for property test bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left != *__right,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left), stringify!($right), __left,
                );
            }
        }
    };
}

/// Filters the generated inputs: a failing assumption rejects the case
/// without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
