//! Offline vendored subset of the `proptest` crate.
//!
//! The workspace cannot reach a crates registry, so this crate
//! re-implements the slice of the proptest API its test suites use:
//! the [`Strategy`] trait with `prop_map`/`boxed`, [`prelude::any`],
//! range and tuple strategies, `collection::{vec, btree_set}`,
//! `option::of`, `array::uniform*`, `sample::{select, Index}`, a
//! character-class string strategy, and the `proptest!`/`prop_oneof!`/
//! `prop_assert*!`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! original inputs) and a fixed deterministic seed sequence per test
//! name, so failures reproduce exactly across runs.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// A deterministic RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::BTreeSet;

    /// Size bounds for generated collections, `From`-convertible from
    /// the range forms the call sites use.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Inclusive maximum length.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of values from `element`; the length bound is best-effort
    /// (duplicates are retried a bounded number of times, as upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy producing `Option<S::Value>` (`None` 1 time in 4).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` values from `inner`, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy producing `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// Arrays of values drawn from one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy(element)
            }
        )*};
    }

    uniform_fns! {
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8, uniform16 => 16,
        uniform32 => 32,
    }
}

pub mod sample {
    //! Sampling strategies (`select`, [`Index`]).

    use crate::strategy::{Arbitrary, Strategy};
    use crate::TestRng;

    /// Strategy drawing one element of a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Chooses uniformly among `options` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty set");
        Select(options)
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// A position into a collection whose length is only known at use
    /// time; `any::<Index>()` then `index(len)` yields `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects the abstract index onto a concrete length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero, as upstream does.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let strat = (0u8..16, 1u64..=64, proptest_internal_range());
        for _ in 0..256 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!(a < 16);
            assert!((1..=64).contains(&b));
            assert!((-5..5).contains(&c));
        }
    }

    fn proptest_internal_range() -> std::ops::Range<i32> {
        -5..5
    }

    #[test]
    fn string_pattern_matches_class() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..64 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(v in crate::collection::vec(0u8..255, 0..8), flag in any::<bool>()) {
            prop_assert!(v.len() < 8);
            if flag {
                #[allow(clippy::iter_count)]
                {
                    prop_assert_eq!(v.len(), v.iter().count());
                }
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn inner(x in 10u32..20) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
