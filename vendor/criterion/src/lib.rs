//! Offline vendored subset of the `criterion` crate.
//!
//! Provides the API surface the bench targets use — benchmark groups,
//! `iter`/`iter_batched`, `BatchSize`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! fixed-iteration timing loop instead of criterion's statistical
//! engine. Results print as `group/name: mean <duration> (N iters)`.

use std::time::{Duration, Instant};

/// How batched setup output is sized; accepted for API compatibility
/// (every batch runs one routine invocation here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per routine invocation.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A function-plus-parameter id.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: std::fmt::Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
            performed: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
            performed: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.performed += self.iterations;
    }

    /// Times `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.performed += self.iterations;
    }

    fn report(&self, group: &str, name: &str) {
        if self.performed == 0 {
            println!("{group}/{name}: no iterations recorded");
            return;
        }
        let mean = self.elapsed / self.performed as u32;
        println!("{group}/{name}: mean {mean:?} ({} iters)", self.performed);
    }
}

/// Declares a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_the_closures() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        let mut plain = 0u64;
        let mut batched = 0u64;
        group.bench_function("plain", |b| b.iter(|| plain += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &seven| {
            b.iter_batched(|| seven, |v| batched += v, BatchSize::PerIteration)
        });
        group.finish();
        assert_eq!(plain, 3);
        assert_eq!(batched, 21);
    }
}
