//! Offline vendored subset of the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (splitmix64-seeded
//! xoshiro256**) plus the [`Rng`]/[`SeedableRng`] trait surface the
//! workspace uses: `gen`, `gen_bool`, `gen_range` and `seed_from_u64`.
//! Streams are stable across runs and platforms, which is all the
//! callers rely on (they always seed explicitly for reproducibility).

/// Values that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generic random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized + AsStdRng,
    {
        T::sample(self.as_std_rng())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

/// Helper to let the generic `gen` dispatch through the concrete RNG.
pub trait AsStdRng {
    /// The underlying concrete generator.
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
