//! Offline vendored subset of the `bytes` crate.
//!
//! The workspace cannot reach a crates registry, so this crate provides
//! the small slice of the `bytes` 1.x API the codecs actually use:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with the
//! little-endian accessors. Semantics match the upstream crate for this
//! subset; the zero-copy reference counting is replaced by plain `Vec`
//! storage, which is irrelevant for correctness.

/// Read-side cursor over an immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `at` bytes remain, as upstream does.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.remaining(), "split_to out of bounds");
        let out = Bytes {
            data: self.data[self.pos..self.pos + at].to_vec(),
            pos: 0,
        };
        self.pos += at;
        out
    }

    /// The unread bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Growable byte buffer used by the encoders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// The accumulated bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let out = self.data[self.pos];
        self.pos += 1;
        out
    }

    fn get_u16_le(&mut self) -> u16 {
        let raw: [u8; 2] = self.data[self.pos..self.pos + 2].try_into().unwrap();
        self.pos += 2;
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let raw: [u8; 4] = self.data[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let raw: [u8; 8] = self.data[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        u64::from_le_bytes(raw)
    }
}

/// Write access to a growable buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, value: i64) {
        self.put_u64_le(value as u64);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u16_le(&mut self, value: u16) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16_le(), 0x1234);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.split_to(4).to_vec(), b"tail");
        assert!(bytes.is_empty());
    }

    #[test]
    fn split_to_advances_cursor() {
        let mut bytes = Bytes::copy_from_slice(b"abcdef");
        let head = bytes.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&bytes[..], b"cdef");
        assert_eq!(bytes.to_vec(), b"cdef");
    }
}
