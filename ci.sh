#!/usr/bin/env bash
# CI gate: release build, full test suite, lint-clean clippy.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Transactional-customize error paths: the fault-injection hooks only
# exist behind the feature gate, so the rollback suites need their own run.
cargo test -q -p dynacut-vm -p dynacut-criu -p dynacut --features fault-injection
cargo clippy -p dynacut-vm -p dynacut-criu -p dynacut --features fault-injection --all-targets -- -D warnings

# Trace-pipeline boundary suite and flight-recorder suites: covered by
# the workspace run above, but named here so a regression in either
# fails with its own line in the log.
cargo test -q -p dynacut-trace --test boundaries
cargo test -q -p dynacut-vm events::
cargo test -q -p dynacut-bench flight
cargo clippy -p dynacut-vm -p dynacut-trace -p dynacut-bench --all-targets -- -D warnings

# The machine-readable flight report: `figures flight` regenerates
# results/flight.json and panics if the document violates the
# dynacut-flight-v1 schema (keys, phases, durations-sum-to-total).
cargo run --release -q -p dynacut-bench --bin figures -- flight > /dev/null
test -s results/flight.json
grep -q '"schema": "dynacut-flight-v1"' results/flight.json

# Staged fleet engine + page store: the fleet suite asserts >4x dedup,
# flat per-process freeze windows, serialized stage journals, and
# serving-during-cycle; `figures fleet` regenerates results/fleet.json
# and panics unless dedup_ratio >= 1.0 and every process's phase
# durations sum to its cycle total (the dynacut-fleet-v1 schema gate).
cargo test -q -p dynacut-bench fleet
cargo test -q -p dynacut-criu --test page_store
cargo clippy -p dynacut -p dynacut-criu --all-targets -- -D warnings
cargo run --release -q -p dynacut-bench --bin figures -- fleet > /dev/null
test -s results/fleet.json
grep -q '"schema": "dynacut-fleet-v1"' results/fleet.json

# Superblock-chaining multi-version block cache (DESIGN §11): the vm
# suite pins rewrite-precise invalidation (self-modifying code,
# host-planted traps fired mid-superblock, unmap/protect),
# three-way uncached/cached/superblocked fingerprint parity and
# hot-entry survival under capacity eviction; the core suites pin trap
# visibility across a full customize cycle with a hot cache, the
# zero-flush version-swapping commit and the re-decode-free rollback.
# The syscall_args and serve_deadline suites are the fd/pid truncation
# and deadline-overshoot regression pins. `figures interp` regenerates
# results/interp.json and panics unless MIPS > 0, superblocked >=
# uncached, speedup >= 2x over uncached and >= 1.5x over the plain
# cache, superblocks were promoted, the commit version-swapped (swaps >
# 0, warm-hit ratio > 0), retirement counts are identical and
# fingerprints match (the dynacut-interp-v2 schema gate).
cargo test -q -p dynacut-vm --test block_cache
cargo test -q -p dynacut-vm --test syscall_args
cargo test -q -p dynacut-vm --test serve_deadline
cargo test -q -p dynacut --test cache_trap_visibility
cargo test -q -p dynacut --test version_swap
cargo test -q -p dynacut-bench interp
cargo run --release -q -p dynacut-bench --bin figures -- interp > /dev/null
test -s results/interp.json
grep -q '"schema": "dynacut-interp-v2"' results/interp.json
grep -q '"fingerprints_match": true' results/interp.json
! grep -q '"superblocks": 0,' results/interp.json
! grep -q '"version_swaps": 0,' results/interp.json
! grep -q '"warm_hit_ratio": 0.0000' results/interp.json

# Zero-copy CoW restore (DESIGN §12): the criu battery proptests
# intern/restore-via-handle/CoW/release interleavings for exact
# refcounts and byte-identity with the copying path; the core suite
# pins the per-cycle byte accounting and cross-mode fingerprint
# parity; `figures restore` regenerates results/restore.json and
# panics unless the copying restore moved >= 5x the bytes at 8
# replicas, the two modes' kernels fingerprint-match, no run leaked a
# page ref, and zero-copy cost stays flat from 2 to 8 replicas (the
# dynacut-restore-v1 gate — all deterministic byte counts).
cargo test -q -p dynacut-criu --test zero_copy
cargo test -q -p dynacut --test restore_accounting
cargo test -q -p dynacut-bench experiments::restore
cargo run --release -q -p dynacut-bench --bin figures -- restore > /dev/null
test -s results/restore.json
grep -q '"schema": "dynacut-restore-v1"' results/restore.json
grep -q '"fingerprints_match": true' results/restore.json
grep -q '"refcount_leaked_bytes": 0' results/restore.json

# Canary-then-fleet rollout (DESIGN §13): the core suite pins
# promote/demote end to end (one dump per rollout, zero-copy
# promotion, clock-masked fingerprint parity on demotion, selective
# verifier-event drain); the fault battery adds the CanarySoak /
# PromoteRestore phases and the synthetic mid-soak report, each with
# fleet-wide parity + no leaked page refs + retry-promotes. The page
# store's collision/unknown-key typed errors ride the page_store and
# criu unit runs above. `figures rollout` regenerates
# results/rollout.json and panics unless the whole fleet paid exactly
# one ProcessDumped, the promotion wave copied zero page bytes, a
# CanaryPromoted was journalled, and the demotion round-trip restored
# the clock-masked fingerprint (the dynacut-rollout-v1 schema gate).
cargo test -q -p dynacut --test rollout
cargo test -q -p dynacut --features fault-injection --test fault_injection
cargo test -q -p dynacut-bench rollout
cargo run --release -q -p dynacut-bench --bin figures -- rollout > /dev/null
test -s results/rollout.json
grep -q '"schema": "dynacut-rollout-v1"' results/rollout.json
grep -q '"promotion_copied_bytes": 0' results/rollout.json
grep -q '"process_dumps": 1' results/rollout.json
grep -q '"demotion_fingerprints_match": true' results/rollout.json

# Preemptive MLFQ scheduler (DESIGN §14): the vm suite pins the
# starvation bound (every runnable progresses within two boost
# windows), zero quanta burned by blocked guests, wake lists never
# waking the wrong pid, single-process fingerprint parity with the
# round-robin oracle, the event-ring seq-anchoring regression for
# run_until_event, and the named pump tunable. `figures sched`
# regenerates results/sched.json and panics unless the MLFQ serving
# p99 stays within 2x from the 100- to the 1000-replica fleet while
# the oracle degrades >= 2x and MLFQ wakeups stay flat across sizes
# (the dynacut-sched-v1 schema gate).
cargo test -q -p dynacut-vm --test sched
cargo test -q -p dynacut-bench experiments::sched
cargo run --release -q -p dynacut-bench --bin figures -- sched > /dev/null
test -s results/sched.json
grep -q '"schema": "dynacut-sched-v1"' results/sched.json
grep -q '"fleet_size": 1000' results/sched.json

# API docs must build warning-free.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
