#!/usr/bin/env bash
# CI gate: release build, full test suite, lint-clean clippy.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Transactional-customize error paths: the fault-injection hooks only
# exist behind the feature gate, so the rollback suites need their own run.
cargo test -q -p dynacut-vm -p dynacut-criu -p dynacut --features fault-injection
cargo clippy -p dynacut-vm -p dynacut-criu -p dynacut --features fault-injection --all-targets -- -D warnings

# API docs must build warning-free.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
