#!/usr/bin/env bash
# CI gate: release build, full test suite, lint-clean clippy.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
