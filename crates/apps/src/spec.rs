//! Synthetic SPEC INTspeed 2017 analogues.
//!
//! The paper evaluates seven C/C++ INTspeed benchmarks (it excludes
//! `602.gcc_s` and `657.xz_s`, §4.1 footnote 4). Each analogue here is a
//! generated program with an initialization phase, a heap footprint and a
//! compute loop, parameterised so the **relative** orderings of the
//! paper's Figure 7/9 table hold after ~50× downscaling:
//!
//! * text size / total block count: `xalancbmk > perlbench > omnetpp >
//!   x264 > leela > deepsjeng > mcf`,
//! * checkpoint image size (heap pages): `omnetpp > xalancbmk >
//!   perlbench > x264 > mcf > leela`,
//! * fraction of executed blocks that are initialization-only:
//!   `perlbench` highest (paper: 41.4 %), `mcf` lowest (≈8 %), average
//!   ≈22 %.

use crate::util::*;
use crate::EVENT_READY;
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};

/// Parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecProgram {
    /// Program name (module name of the built image).
    pub name: &'static str,
    /// Initialization functions (run once before the ready event).
    pub init_funcs: usize,
    /// Hot functions (run every main-loop iteration).
    pub hot_funcs: usize,
    /// Cold functions (never executed — the gray blocks of Figure 2).
    pub cold_funcs: usize,
    /// Basic blocks per generated function.
    pub blocks_per_func: usize,
    /// Heap pages touched at startup (drives the image size).
    pub heap_pages: u64,
    /// Main-loop iterations.
    pub iterations: u64,
}

impl SpecProgram {
    /// Expected fraction of *executed* blocks that are
    /// initialization-only, approximately `init / (init + hot)`.
    pub fn expected_init_fraction(&self) -> f64 {
        let init = self.init_funcs as f64;
        let hot = self.hot_funcs as f64;
        init / (init + hot)
    }

    /// Builds the benchmark binary, linked against the guest libc.
    pub fn image(&self, libc: &Image) -> Image {
        let prefix = self.name.replace('.', "_");
        let mut asm = Assembler::new();

        asm.func("_start");
        let init_names: Vec<String> = (0..self.init_funcs)
            .map(|i| format!("{prefix}_init_{i:03}"))
            .collect();
        emit_calls(&mut asm, &init_names);
        emit_touch_heap(&mut asm, self.heap_pages, Reg::R9);
        emit_event(&mut asm, EVENT_READY);
        // Main compute loop.
        asm.push(Insn::Movi(Reg::R13, self.iterations));
        asm.label("spec_loop");
        asm.push(Insn::Cmpi(Reg::R13, 0));
        asm.jcc(Cond::Eq, "spec_done");
        let hot_names: Vec<String> = (0..self.hot_funcs)
            .map(|i| format!("{prefix}_hot_{i:03}"))
            .collect();
        emit_calls(&mut asm, &hot_names);
        asm.push(Insn::Addi(Reg::R13, -1));
        asm.jmp("spec_loop");
        asm.label("spec_done");
        asm.push(Insn::Movi(Reg::R1, 0));
        asm.call_ext("libc_exit");

        for name in &init_names {
            emit_busy_func(&mut asm, name, self.blocks_per_func);
        }
        for i in 0..self.hot_funcs {
            emit_busy_func(&mut asm, &format!("{prefix}_hot_{i:03}"), self.blocks_per_func);
        }
        for i in 0..self.cold_funcs {
            emit_busy_func(&mut asm, &format!("{prefix}_cold_{i:03}"), self.blocks_per_func);
        }

        let mut builder = ModuleBuilder::new(self.name, ObjectKind::Executable);
        builder.text(asm.finish().expect("spec program assembles"));
        builder.entry("_start");
        builder.link(&[libc]).expect("spec program links")
    }
}

/// The seven benchmarks the paper evaluates, with paper-shaped relative
/// parameters.
pub fn suite() -> Vec<SpecProgram> {
    vec![
        SpecProgram {
            name: "600.perlbench_s",
            init_funcs: 60,
            hot_funcs: 85,
            cold_funcs: 202,
            blocks_per_func: 8,
            heap_pages: 450,
            iterations: 5000,
        },
        SpecProgram {
            name: "605.mcf_s",
            init_funcs: 1,
            hot_funcs: 10,
            cold_funcs: 0,
            blocks_per_func: 8,
            heap_pages: 68,
            iterations: 20000,
        },
        SpecProgram {
            name: "620.omnetpp_s",
            init_funcs: 40,
            hot_funcs: 120,
            cold_funcs: 127,
            blocks_per_func: 8,
            heap_pages: 523,
            iterations: 5000,
        },
        SpecProgram {
            name: "623.xalancbmk_s",
            init_funcs: 25,
            hot_funcs: 140,
            cold_funcs: 610,
            blocks_per_func: 8,
            heap_pages: 467,
            iterations: 5000,
        },
        SpecProgram {
            name: "625.x264_s",
            init_funcs: 17,
            hot_funcs: 40,
            cold_funcs: 0,
            blocks_per_func: 8,
            heap_pages: 381,
            iterations: 10000,
        },
        SpecProgram {
            name: "631.deepsjeng_s",
            init_funcs: 2,
            hot_funcs: 8,
            cold_funcs: 2,
            blocks_per_func: 8,
            heap_pages: 30,
            iterations: 30000,
        },
        SpecProgram {
            name: "641.leela_s",
            init_funcs: 3,
            hot_funcs: 22,
            cold_funcs: 1,
            blocks_per_func: 8,
            heap_pages: 24,
            iterations: 15000,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<SpecProgram> {
    suite().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libc::guest_libc;
    use dynacut_vm::{Kernel, LoadSpec};

    #[test]
    fn suite_has_the_papers_seven_benchmarks() {
        let names: Vec<&str> = suite().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "600.perlbench_s",
                "605.mcf_s",
                "620.omnetpp_s",
                "623.xalancbmk_s",
                "625.x264_s",
                "631.deepsjeng_s",
                "641.leela_s",
            ]
        );
    }

    #[test]
    fn text_size_ordering_matches_paper() {
        let libc = guest_libc();
        let size = |name: &str| by_name(name).unwrap().image(&libc).text_size();
        // xalancbmk > perlbench > omnetpp > x264 > leela > deepsjeng > mcf
        assert!(size("623.xalancbmk_s") > size("600.perlbench_s"));
        assert!(size("600.perlbench_s") > size("620.omnetpp_s"));
        assert!(size("620.omnetpp_s") > size("625.x264_s"));
        assert!(size("625.x264_s") > size("641.leela_s"));
        assert!(size("641.leela_s") > size("631.deepsjeng_s"));
        assert!(size("631.deepsjeng_s") > size("605.mcf_s"));
    }

    #[test]
    fn perlbench_has_highest_init_fraction_mcf_lowest() {
        let fractions: Vec<(&str, f64)> = suite()
            .iter()
            .map(|p| (p.name, p.expected_init_fraction()))
            .collect();
        let perl = fractions.iter().find(|(n, _)| n.contains("perl")).unwrap().1;
        let mcf = fractions.iter().find(|(n, _)| n.contains("mcf")).unwrap().1;
        for (name, fraction) in &fractions {
            if !name.contains("perl") {
                assert!(perl > *fraction, "perlbench deepest init ({name})");
            }
            if !name.contains("mcf") {
                assert!(mcf < *fraction, "mcf shallowest init ({name})");
            }
        }
        // Average ≈ paper's 22.3 %.
        let avg: f64 =
            fractions.iter().map(|(_, f)| f).sum::<f64>() / fractions.len() as f64;
        assert!((0.15..0.30).contains(&avg), "average init fraction {avg}");
    }

    #[test]
    fn mcf_runs_to_completion_quickly() {
        let libc = guest_libc();
        let program = by_name("605.mcf_s").unwrap();
        let exe = program.image(&libc);
        let mut kernel = Kernel::new();
        let pid = kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
        kernel
            .run_until_event(EVENT_READY, 100_000_000)
            .expect("init completes");
        let status = kernel.run_until_exit(pid, 100_000_000).expect("finishes");
        assert_eq!(status.code, 0);
    }

    #[test]
    fn heap_pages_dominate_checkpoint_size_ordering() {
        // omnetpp's image must be the largest, leela's the smallest, as in
        // Figure 7's image-size row (214 MB vs 9.7 MB).
        let pages = |name: &str| by_name(name).unwrap().heap_pages;
        assert!(pages("620.omnetpp_s") > pages("623.xalancbmk_s"));
        assert!(pages("623.xalancbmk_s") > pages("600.perlbench_s"));
        assert!(pages("600.perlbench_s") > pages("625.x264_s"));
        assert!(pages("625.x264_s") > pages("605.mcf_s"));
        assert!(pages("605.mcf_s") > pages("641.leela_s"));
    }
}
