//! # dynacut-apps — guest applications for the DCVM
//!
//! The paper evaluates DynaCut on "3 widely used server applications and
//! the SPECint2017_speed benchmark suite" (§4). This crate provides those
//! workloads as DCVM guests, written against the `dynacut-isa` assembler
//! and linked against a from-scratch [`guest libc`](libc::guest_libc):
//!
//! * [`nginx`] — a **multi-process** (master + worker) web server with a
//!   WebDAV-style method dispatcher (`GET`/`HEAD`/`PUT`/`DELETE`/`MKCOL`/
//!   `PROPFIND`), a configuration-parsing initialization phase, and a
//!   `403 Forbidden` default error path in the same dispatch function —
//!   the redirect target of paper Figure 5,
//! * [`lighttpd`] — a **single-process, event-driven** counterpart,
//! * [`redis`] — an in-memory key-value store speaking a line-based
//!   RESP-like protocol, with **modelled vulnerable handlers**
//!   (`STRALGO LCS` integer overflow ≈ CVE-2021-32625/29477,
//!   `SETRANGE` missing bounds check ≈ CVE-2019-10192/10193,
//!   `CONFIG SET` fixed-buffer overflow ≈ CVE-2016-8339) for the Table 1
//!   case study,
//! * [`spec`] — seven synthetic SPEC INTspeed analogues whose *relative*
//!   text sizes, block counts, heap footprints and init-phase depths track
//!   the paper's Figure 7/9 table (scaled down ~50×).
//!
//! Every server signals the end of its initialization phase with
//! `emit_event(EVENT_READY)`, the observable the paper's nudge protocol
//! relies on.

pub mod libc;
pub mod lighttpd;
pub mod nginx;
pub mod redis;
pub mod spec;
mod util;

/// Event code emitted by every server when initialization completes.
pub const EVENT_READY: u64 = 1;
