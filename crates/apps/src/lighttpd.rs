//! The Lighttpd analogue: a single-process, event-driven web server with
//! WebDAV `PUT`/`DELETE` (paper §4: Lighttpd 1.4.59, "event-driven
//! single-process architecture").

use crate::util::*;
use crate::EVENT_READY;
use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};

/// TCP port the server listens on.
pub const PORT: u16 = 8081;
/// Configuration file path.
pub const CONFIG_PATH: &str = "/etc/lighttpd.conf";
/// Module (binary) name.
pub const MODULE: &str = "lighttpd";

/// HTTP method handlers, in dispatch order.
pub const METHOD_HANDLERS: [(&str, &str); 4] = [
    ("GET ", "lt_get_handler"),
    ("HEAD ", "lt_head_handler"),
    ("PUT ", "lt_put_handler"),
    ("DELETE ", "lt_delete_handler"),
];

/// The `403 Forbidden` error path.
pub const ERROR_HANDLER: &str = "lt_http_forbidden";

/// Heap pages touched at startup (≈ half of the Nginx analogue's, like
/// the paper's 2.3 MB vs 4.9 MB image sizes).
pub const HEAP_PAGES: u64 = 45;

/// The configuration file contents.
pub fn config_file() -> Vec<u8> {
    b"port=8081\nserver.modules=(mod_webdav,mod_access)\nindex=index.html\n".to_vec()
}

/// Builds the server binary, linked against the guest libc.
pub fn image(libc: &Image) -> Image {
    let mut asm = Assembler::new();

    asm.func("_start");
    asm.call("lt_parse_config");
    asm.call("lt_plugins_init");
    let init_mods: Vec<String> = (0..12).map(|i| format!("lt_mod_init_{i:02}")).collect();
    emit_calls(&mut asm, &init_mods);
    asm.call("lt_setup_listener");
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    emit_touch_heap(&mut asm, HEAP_PAGES, Reg::R9);
    emit_event(&mut asm, EVENT_READY);
    asm.jmp("lt_server_main_loop");

    asm.func("lt_parse_config");
    asm.lea_ext(Reg::R1, "lt_conf_path", 0);
    asm.push(Insn::Movi(Reg::R2, CONFIG_PATH.len() as u64));
    asm.call_ext("libc_open");
    asm.push(Insn::Mov(Reg::R9, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.lea_ext(Reg::R2, "lt_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.call_ext("libc_close");
    asm.lea_ext(Reg::R1, "lt_conf_buf", 5);
    asm.call_ext("libc_atoi");
    asm.lea_ext(Reg::R4, "lt_port", 0);
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R0));
    asm.push(Insn::Ret);

    asm.func("lt_plugins_init");
    asm.lea_ext(Reg::R1, "lt_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 48));
    asm.call_ext("libc_checksum");
    asm.lea_ext(Reg::R1, "lt_storage", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.call_ext("libc_memset");
    asm.push(Insn::Ret);

    emit_busy_family(&mut asm, "lt_mod_init", 12, 7);

    asm.func("lt_setup_listener");
    emit_listener_setup(&mut asm, PORT, Reg::R6);
    asm.push(Insn::Mov(Reg::R0, Reg::R6));
    asm.push(Insn::Ret);

    // The event loop — the paper's `server_main_loop()` transition point.
    asm.func("lt_server_main_loop");
    asm.label("lt_accept_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.call_ext("libc_accept");
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("lt_serve_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "lt_req_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "lt_close_conn");
    asm.lea_ext(Reg::R4, "lt_req_buf", 0);
    asm.push(Insn::Add(Reg::R4, Reg::R0));
    asm.push(Insn::Movi(Reg::R5, 0));
    asm.push(Insn::St(Width::B1, Reg::R4, 0, Reg::R5));
    asm.call("lt_parse_headers");
    asm.jmp("lt_http_dispatch");
    asm.label("lt_close_conn");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.call_ext("libc_close");
    asm.jmp("lt_accept_loop");

    // Per-request epilogue: access logging and finalization.
    asm.func("lt_finish_request");
    asm.call("lt_log_access");
    asm.call("lt_finalize");
    asm.jmp("lt_serve_loop");
    emit_busy_func(&mut asm, "lt_parse_headers", 20);
    emit_busy_func(&mut asm, "lt_log_access", 20);
    emit_busy_func(&mut asm, "lt_finalize", 12);

    asm.func("lt_http_dispatch");
    for (index, (literal, handler)) in METHOD_HANDLERS.iter().enumerate() {
        emit_method_test(
            &mut asm,
            "lt_req_buf",
            &format!("lt_m{index}"),
            literal.len() as u64,
            handler,
        );
    }
    emit_write_lit(&mut asm, Reg::R11, "lt_r405", crate::nginx::RESP_405.len() as u64);
    asm.jmp("lt_finish_request");
    asm.func(ERROR_HANDLER);
    emit_write_lit(&mut asm, Reg::R11, "lt_r403", crate::nginx::RESP_403.len() as u64);
    asm.jmp("lt_finish_request");

    asm.func("lt_get_handler");
    asm.lea_ext(Reg::R1, "lt_req_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 32));
    asm.call_ext("libc_checksum");
    emit_write_lit(&mut asm, Reg::R11, "lt_r200", crate::nginx::RESP_200.len() as u64);
    asm.jmp("lt_finish_request");

    asm.func("lt_head_handler");
    emit_write_lit(&mut asm, Reg::R11, "lt_r200h", crate::nginx::RESP_200_HEAD.len() as u64);
    asm.jmp("lt_finish_request");

    asm.func("lt_put_handler");
    asm.lea_ext(Reg::R1, "lt_storage", 0);
    asm.lea_ext(Reg::R2, "lt_req_buf", 4);
    asm.push(Insn::Movi(Reg::R3, 32));
    asm.call_ext("libc_memcpy");
    emit_write_lit(&mut asm, Reg::R11, "lt_r201", crate::nginx::RESP_201.len() as u64);
    asm.jmp("lt_finish_request");

    asm.func("lt_delete_handler");
    asm.lea_ext(Reg::R1, "lt_storage", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.call_ext("libc_memset");
    emit_write_lit(&mut asm, Reg::R11, "lt_r204", crate::nginx::RESP_204.len() as u64);
    asm.jmp("lt_finish_request");

    // Never-used modules (mod_cgi, mod_rewrite, mod_auth, mod_ssi,
    // mod_fastcgi — the bulk of a real Lighttpd build that a read-only
    // deployment never touches).
    emit_busy_family(&mut asm, "lt_cgi", 10, 7);
    emit_busy_family(&mut asm, "lt_rewrite", 8, 7);
    emit_busy_family(&mut asm, "lt_auth", 10, 7);
    emit_busy_family(&mut asm, "lt_ssi", 9, 7);
    emit_busy_family(&mut asm, "lt_fastcgi", 9, 7);

    let mut builder = ModuleBuilder::new(MODULE, ObjectKind::Executable);
    builder.text(asm.finish().expect("lighttpd assembles"));
    builder.rodata("lt_conf_path", CONFIG_PATH.as_bytes());
    for (index, (literal, _)) in METHOD_HANDLERS.iter().enumerate() {
        builder.rodata(&format!("lt_m{index}"), literal.as_bytes());
    }
    builder.rodata("lt_r200", crate::nginx::RESP_200);
    builder.rodata("lt_r200h", crate::nginx::RESP_200_HEAD);
    builder.rodata("lt_r201", crate::nginx::RESP_201);
    builder.rodata("lt_r204", crate::nginx::RESP_204);
    builder.rodata("lt_r403", crate::nginx::RESP_403);
    builder.rodata("lt_r405", crate::nginx::RESP_405);
    builder.bss("lt_conf_buf", 256);
    builder.bss("lt_req_buf", 256);
    builder.bss("lt_storage", 64);
    builder.bss("lt_port", 8);
    builder.entry("_start");
    builder.link(&[libc]).expect("lighttpd links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libc::guest_libc;
    use dynacut_vm::{Kernel, LoadSpec};

    fn boot() -> (Kernel, dynacut_vm::Pid) {
        let libc = guest_libc();
        let exe = image(&libc);
        let mut kernel = Kernel::new();
        kernel.add_file(CONFIG_PATH, &config_file());
        let pid = kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
        kernel
            .run_until_event(EVENT_READY, 50_000_000)
            .expect("boots");
        (kernel, pid)
    }

    #[test]
    fn single_process_serves_webdav() {
        let (mut kernel, pid) = boot();
        assert_eq!(kernel.pids(), vec![pid], "single-process architecture");
        let conn = kernel.client_connect(PORT).unwrap();
        assert_eq!(
            kernel.client_request(conn, b"GET /\n", 2_000_000).unwrap(),
            crate::nginx::RESP_200
        );
        assert_eq!(
            kernel
                .client_request(conn, b"PUT /f data", 2_000_000)
                .unwrap(),
            crate::nginx::RESP_201
        );
        assert_eq!(
            kernel
                .client_request(conn, b"DELETE /f", 2_000_000)
                .unwrap(),
            crate::nginx::RESP_204
        );
        assert_eq!(
            kernel
                .client_request(conn, b"PATCH /f\n", 2_000_000)
                .unwrap(),
            crate::nginx::RESP_405
        );
    }

    #[test]
    fn lighttpd_is_smaller_than_nginx() {
        // The paper's table: Lighttpd 335 KB text / 17.8 k blocks vs Nginx
        // 853 KB / 35.4 k — our analogues preserve the ordering.
        let libc = guest_libc();
        let lt = image(&libc);
        let ngx = crate::nginx::image(&libc);
        assert!(lt.text_size() < ngx.text_size());
        assert!(lt.total_blocks() < ngx.total_blocks());
    }
}
