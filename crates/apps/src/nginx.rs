//! The Nginx analogue: a multi-process (master + worker) web server with
//! WebDAV-style methods.
//!
//! Matches the paper's Nginx 1.18 configuration: master forks one worker
//! (§4.2 footnote: "we configured Nginx to use only one worker process"),
//! the WebDAV extension adds `PUT`/`DELETE`/`MKCOL`/`PROPFIND`, and the
//! dispatcher falls through to a `403 Forbidden` error path in the same
//! function — the redirect target of paper Figure 5 / Listing 1.

use crate::util::*;
use crate::EVENT_READY;
use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};

/// TCP port the server listens on.
pub const PORT: u16 = 8080;
/// Configuration file path read during initialization.
pub const CONFIG_PATH: &str = "/etc/nginx.conf";
/// Module (binary) name.
pub const MODULE: &str = "nginx";

/// The HTTP method handler functions, in dispatch order. Each is a
/// feature that DynaCut can block individually.
pub const METHOD_HANDLERS: [(&str, &str); 6] = [
    ("GET ", "ngx_get_handler"),
    ("HEAD ", "ngx_head_handler"),
    ("PUT ", "ngx_put_handler"),
    ("DELETE ", "ngx_delete_handler"),
    ("MKCOL ", "ngx_mkcol_handler"),
    ("PROPFIND ", "ngx_propfind_handler"),
];

/// The default error path (`403 Forbidden`) inside the dispatcher.
pub const ERROR_HANDLER: &str = "ngx_http_forbidden";

/// Number of heap pages the server touches at startup (sets the
/// checkpoint image size).
pub const HEAP_PAGES: u64 = 100;

/// The configuration file contents expected at [`CONFIG_PATH`].
pub fn config_file() -> Vec<u8> {
    config_file_with_workers(1)
}

/// A configuration with `workers` worker processes (1–9).
///
/// # Panics
///
/// Panics if `workers` is not in `1..=9` (the parser expects one digit at
/// a fixed offset).
pub fn config_file_with_workers(workers: u8) -> Vec<u8> {
    assert!((1..=9).contains(&workers), "workers must be 1..=9");
    format!(
        "port=8080\nworkers={workers}\nroot=/var/www\nkeepalive=on\nmime=text/html,text/css,application/json\n"
    )
    .into_bytes()
}

/// Builds the server binary, linked against the guest libc.
pub fn image(libc: &Image) -> Image {
    let mut asm = Assembler::new();

    // ===== entry ==========================================================
    asm.func("_start");
    asm.call("ngx_init_log");
    asm.call("ngx_parse_config");
    asm.call("ngx_init_mime");
    // Generated initialization modules (config re-validation, module
    // registration, worker setup, …): the bulk of the init-only blocks.
    let init_mods = {
        // Forward-declare the calls; bodies are emitted below.
        (0..20)
            .map(|index| format!("ngx_mod_init_{index:02}"))
            .collect::<Vec<_>>()
    };
    emit_calls(&mut asm, &init_mods);
    asm.call("ngx_setup_listener"); // r0 = listener fd
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    emit_touch_heap(&mut asm, HEAP_PAGES, Reg::R9);
    // Fork `workers=N` workers (parsed from the config by
    // ngx_parse_config into ngx_workers); all accept on the shared
    // listener, real-Nginx style.
    asm.lea_ext(Reg::R13, "ngx_workers", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R13, Reg::R13, 0));
    asm.label("ngx_fork_loop");
    asm.push(Insn::Cmpi(Reg::R13, 0));
    asm.jcc(Cond::Eq, "ngx_master_ready");
    asm.call_ext("libc_fork");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "ngx_worker_cycle");
    asm.push(Insn::Addi(Reg::R13, -1));
    asm.jmp("ngx_fork_loop");
    // Master: announce readiness, then idle.
    asm.label("ngx_master_ready");
    emit_event(&mut asm, EVENT_READY);
    asm.label("ngx_master_loop");
    asm.push(Insn::Movi(Reg::R1, 1_000_000));
    asm.call_ext("libc_nanosleep");
    asm.jmp("ngx_master_loop");

    // ===== initialization functions ======================================
    asm.func("ngx_init_log");
    asm.lea_ext(Reg::R1, "ngx_log_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 256));
    asm.call_ext("libc_memset");
    asm.push(Insn::Ret);

    asm.func("ngx_parse_config");
    // open(CONFIG_PATH) → read → parse the port with atoi.
    asm.lea_ext(Reg::R1, "ngx_conf_path", 0);
    asm.push(Insn::Movi(Reg::R2, CONFIG_PATH.len() as u64));
    asm.call_ext("libc_open");
    asm.push(Insn::Mov(Reg::R9, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.lea_ext(Reg::R2, "ngx_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.call_ext("libc_close");
    // The file starts with "port=": parse the number after it.
    asm.lea_ext(Reg::R1, "ngx_conf_buf", 5);
    asm.call_ext("libc_atoi");
    asm.lea_ext(Reg::R4, "ngx_port", 0);
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R0));
    // The second line is "workers=N": the digits start at offset 18.
    asm.lea_ext(Reg::R1, "ngx_conf_buf", 18);
    asm.call_ext("libc_atoi");
    asm.lea_ext(Reg::R4, "ngx_workers", 0);
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R0));
    // Validate the rest of the config with busy parsing.
    asm.lea_ext(Reg::R1, "ngx_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 64));
    asm.call_ext("libc_checksum");
    asm.push(Insn::Ret);

    asm.func("ngx_init_mime");
    asm.lea_ext(Reg::R1, "ngx_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 96));
    asm.call_ext("libc_checksum");
    asm.lea_ext(Reg::R1, "ngx_storage", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.call_ext("libc_memset");
    asm.push(Insn::Ret);

    emit_busy_family(&mut asm, "ngx_mod_init", 20, 8);

    asm.func("ngx_setup_listener");
    emit_listener_setup(&mut asm, PORT, Reg::R6);
    asm.push(Insn::Mov(Reg::R0, Reg::R6));
    asm.push(Insn::Ret);

    // ===== worker ========================================================
    asm.func("ngx_worker_cycle");
    asm.label("ngx_accept_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.call_ext("libc_accept");
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("ngx_serve_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "ngx_req_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "ngx_close_conn");
    // NUL-terminate the request.
    asm.lea_ext(Reg::R4, "ngx_req_buf", 0);
    asm.push(Insn::Add(Reg::R4, Reg::R0));
    asm.push(Insn::Movi(Reg::R5, 0));
    asm.push(Insn::St(Width::B1, Reg::R4, 0, Reg::R5));
    asm.call("ngx_parse_headers");
    asm.jmp("ngx_http_dispatch");
    asm.label("ngx_close_conn");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.call_ext("libc_close");
    asm.jmp("ngx_accept_loop");

    // Per-request epilogue every handler jumps to: access logging and
    // request finalization (a realistic slice of hot serving code).
    asm.func("ngx_finish_request");
    asm.call("ngx_log_access");
    asm.call("ngx_finalize");
    asm.jmp("ngx_serve_loop");
    emit_busy_func(&mut asm, "ngx_parse_headers", 24);
    emit_busy_func(&mut asm, "ngx_log_access", 24);
    emit_busy_func(&mut asm, "ngx_finalize", 16);

    // ===== dispatcher (the "big switch-case statement", §3) ==============
    asm.func("ngx_http_dispatch");
    for (index, (literal, handler)) in METHOD_HANDLERS.iter().enumerate() {
        emit_method_test(
            &mut asm,
            "ngx_req_buf",
            &format!("ngx_m{index}"),
            literal.len() as u64,
            handler,
        );
    }
    // Unknown method.
    emit_write_lit(&mut asm, Reg::R11, "ngx_r405", RESP_405.len() as u64);
    asm.jmp("ngx_finish_request");
    // Default error path — the redirect target (same function, as the
    // paper requires for stack consistency).
    asm.func(ERROR_HANDLER);
    emit_write_lit(&mut asm, Reg::R11, "ngx_r403", RESP_403.len() as u64);
    asm.jmp("ngx_finish_request");

    // ===== method handlers (jump-entered blocks, not calls) =============
    asm.func("ngx_get_handler");
    asm.lea_ext(Reg::R1, "ngx_req_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 32));
    asm.call_ext("libc_checksum");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r200", RESP_200.len() as u64);
    asm.jmp("ngx_finish_request");

    asm.func("ngx_head_handler");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r200h", RESP_200_HEAD.len() as u64);
    asm.jmp("ngx_finish_request");

    asm.func("ngx_put_handler");
    // Store the body (after "PUT ") into the WebDAV storage area.
    asm.lea_ext(Reg::R1, "ngx_storage", 0);
    asm.lea_ext(Reg::R2, "ngx_req_buf", 4);
    asm.push(Insn::Movi(Reg::R3, 32));
    asm.call_ext("libc_memcpy");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r201", RESP_201.len() as u64);
    asm.jmp("ngx_finish_request");

    asm.func("ngx_delete_handler");
    asm.lea_ext(Reg::R1, "ngx_storage", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.call_ext("libc_memset");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r204", RESP_204.len() as u64);
    asm.jmp("ngx_finish_request");

    asm.func("ngx_mkcol_handler");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r201", RESP_201.len() as u64);
    asm.jmp("ngx_finish_request");

    asm.func("ngx_propfind_handler");
    asm.lea_ext(Reg::R1, "ngx_storage", 0);
    asm.push(Insn::Movi(Reg::R2, 64));
    asm.call_ext("libc_checksum");
    emit_write_lit(&mut asm, Reg::R11, "ngx_r207", RESP_207.len() as u64);
    asm.jmp("ngx_finish_request");

    // ===== never-used feature modules (gray blocks of Figure 2) =========
    emit_busy_family(&mut asm, "ngx_ssl", 14, 8);
    emit_busy_family(&mut asm, "ngx_gzip", 10, 8);
    emit_busy_family(&mut asm, "ngx_proxy", 16, 8);
    emit_busy_family(&mut asm, "ngx_cache", 12, 8);
    emit_busy_family(&mut asm, "ngx_upstream", 10, 8);

    // ===== data ===========================================================
    let mut builder = ModuleBuilder::new(MODULE, ObjectKind::Executable);
    builder.text(asm.finish().expect("nginx assembles"));
    builder.rodata("ngx_conf_path", CONFIG_PATH.as_bytes());
    for (index, (literal, _)) in METHOD_HANDLERS.iter().enumerate() {
        builder.rodata(&format!("ngx_m{index}"), literal.as_bytes());
    }
    builder.rodata("ngx_r200", RESP_200);
    builder.rodata("ngx_r200h", RESP_200_HEAD);
    builder.rodata("ngx_r201", RESP_201);
    builder.rodata("ngx_r204", RESP_204);
    builder.rodata("ngx_r207", RESP_207);
    builder.rodata("ngx_r403", RESP_403);
    builder.rodata("ngx_r405", RESP_405);
    builder.bss("ngx_log_buf", 256);
    builder.bss("ngx_conf_buf", 256);
    builder.bss("ngx_req_buf", 256);
    builder.bss("ngx_storage", 64);
    builder.bss("ngx_port", 8);
    builder.bss("ngx_workers", 8);
    builder.entry("_start");
    builder.link(&[libc]).expect("nginx links")
}

/// `200 OK` with a body.
pub const RESP_200: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
/// `200 OK` header-only (HEAD).
pub const RESP_200_HEAD: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
/// `201 Created` (PUT, MKCOL).
pub const RESP_201: &[u8] = b"HTTP/1.1 201 Created\r\n\r\n";
/// `204 No Content` (DELETE).
pub const RESP_204: &[u8] = b"HTTP/1.1 204 No Content\r\n\r\n";
/// `207 Multi-Status` (PROPFIND).
pub const RESP_207: &[u8] = b"HTTP/1.1 207 Multi-Status\r\n\r\n<propfind/>";
/// `403 Forbidden` — the redirected answer for blocked methods.
pub const RESP_403: &[u8] = b"HTTP/1.1 403 Forbidden\r\n\r\n";
/// `405 Method Not Allowed`.
pub const RESP_405: &[u8] = b"HTTP/1.1 405 Method Not Allowed\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libc::guest_libc;
    use dynacut_vm::{Kernel, LoadSpec};

    fn boot() -> (Kernel, dynacut_vm::Pid) {
        let libc = guest_libc();
        let exe = image(&libc);
        let mut kernel = Kernel::new();
        kernel.add_file(CONFIG_PATH, &config_file());
        let pid = kernel
            .spawn(&LoadSpec::with_libs(exe, vec![libc]))
            .unwrap();
        kernel.run_until_event(EVENT_READY, 50_000_000).expect("boots");
        (kernel, pid)
    }

    #[test]
    fn serves_get_and_head() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        let reply = kernel
            .client_request(conn, b"GET /index.html\n", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_200);
        let reply = kernel.client_request(conn, b"HEAD /\n", 2_000_000).unwrap();
        assert_eq!(reply, RESP_200_HEAD);
    }

    #[test]
    fn webdav_put_then_propfind_round_trip() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        let reply = kernel
            .client_request(conn, b"PUT /f.txt payload", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_201);
        let reply = kernel
            .client_request(conn, b"DELETE /f.txt", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_204);
        let reply = kernel
            .client_request(conn, b"MKCOL /dir", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_201);
        let reply = kernel
            .client_request(conn, b"PROPFIND /", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_207);
    }

    #[test]
    fn unknown_method_gets_405() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        let reply = kernel
            .client_request(conn, b"BREW /coffee\n", 2_000_000)
            .unwrap();
        assert_eq!(reply, RESP_405);
    }

    #[test]
    fn master_and_worker_are_two_processes() {
        let (kernel, master) = boot();
        let pids = kernel.pids();
        assert_eq!(pids.len(), 2, "master + one worker");
        let worker = pids.into_iter().find(|&p| p != master).unwrap();
        assert_eq!(kernel.process(worker).unwrap().parent, Some(master));
    }

    #[test]
    fn workers_directive_controls_the_fork_count() {
        let libc = guest_libc();
        let exe = image(&libc);
        let mut kernel = Kernel::new();
        kernel.add_file(CONFIG_PATH, &config_file_with_workers(3));
        let master = kernel
            .spawn(&LoadSpec::with_libs(exe, vec![libc]))
            .unwrap();
        kernel
            .run_until_event(EVENT_READY, 100_000_000)
            .expect("boots");
        let pids = kernel.pids();
        assert_eq!(pids.len(), 4, "master + three workers");
        for &pid in &pids {
            if pid != master {
                assert_eq!(kernel.process(pid).unwrap().parent, Some(master));
            }
        }
        // All workers share the listener: three concurrent connections
        // are served in parallel.
        let conns: Vec<_> = (0..3)
            .map(|_| kernel.client_connect(PORT).unwrap())
            .collect();
        for &conn in &conns {
            kernel.client_send(conn, b"GET /parallel\n").unwrap();
        }
        kernel.run_for(2_000_000);
        for &conn in &conns {
            assert_eq!(kernel.client_recv(conn).unwrap(), RESP_200);
        }
    }

    #[test]
    fn parsed_port_lands_in_memory() {
        let (kernel, master) = boot();
        let proc = kernel.process(master).unwrap();
        let exe = &proc.modules.last().unwrap();
        let addr = exe.symbol_addr("ngx_port").unwrap();
        let mut buf = [0u8; 8];
        proc.mem.read_unchecked(addr, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), u64::from(PORT));
    }

    #[test]
    fn handlers_are_locatable_features() {
        let libc = guest_libc();
        let exe = image(&libc);
        for (_, handler) in METHOD_HANDLERS {
            assert!(
                !exe.blocks_of_function(handler).is_empty(),
                "{handler} has blocks"
            );
        }
        assert!(exe.symbols.contains_key(ERROR_HANDLER));
        // The binary imports fork through the PLT (BROP experiment).
        assert!(exe.plt_entry("libc_fork").is_some());
    }

    #[test]
    fn requests_on_parallel_connections_interleave() {
        let (mut kernel, _) = boot();
        let a = kernel.client_connect(PORT).unwrap();
        let reply_a = kernel.client_request(a, b"GET /a\n", 2_000_000).unwrap();
        assert_eq!(reply_a, RESP_200);
        kernel.client_close(a).unwrap();
        // After closing, the worker accepts the next connection.
        let b = kernel.client_connect(PORT).unwrap();
        let reply_b = kernel.client_request(b, b"HEAD /b\n", 2_000_000).unwrap();
        assert_eq!(reply_b, RESP_200_HEAD);
    }
}
