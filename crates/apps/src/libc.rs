//! The guest C library: syscall wrappers plus string/memory routines,
//! linked by every guest application through the PLT.
//!
//! Routing the applications' kernel entries through PLT stubs is what
//! makes the paper's §4.2 PLT-surface experiments (ret2plt, BROP)
//! reproducible: after initialization, DynaCut can disable the
//! `libc_fork` stub of the Nginx analogue just as the paper disables
//! `fork@plt`.

use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::Sysno;

/// Calling convention: arguments in `r1..=r5`, result in `r0`; all
/// registers caller-saved.
///
/// Exported functions:
/// `libc_exit`, `libc_write`, `libc_read`, `libc_open`, `libc_close`,
/// `libc_socket`, `libc_bind`, `libc_listen`, `libc_accept`,
/// `libc_fork`, `libc_getpid`, `libc_nanosleep`, `libc_sigaction`,
/// `libc_mmap`, `libc_munmap`, `libc_mprotect`, `libc_clock`,
/// `libc_emit_event`, `libc_kill`, `libc_strlen`, `libc_strncmp`,
/// `libc_memset`, `libc_memcpy`, `libc_atoi`, `libc_checksum`.
pub fn guest_libc() -> Image {
    let mut asm = Assembler::new();

    // --- syscall wrappers -----------------------------------------------
    let wrappers: [(&str, Sysno); 19] = [
        ("libc_exit", Sysno::Exit),
        ("libc_write", Sysno::Write),
        ("libc_read", Sysno::Read),
        ("libc_open", Sysno::Open),
        ("libc_close", Sysno::Close),
        ("libc_socket", Sysno::Socket),
        ("libc_bind", Sysno::Bind),
        ("libc_listen", Sysno::Listen),
        ("libc_accept", Sysno::Accept),
        ("libc_fork", Sysno::Fork),
        ("libc_getpid", Sysno::Getpid),
        ("libc_nanosleep", Sysno::Nanosleep),
        ("libc_sigaction", Sysno::Sigaction),
        ("libc_mmap", Sysno::Mmap),
        ("libc_munmap", Sysno::Munmap),
        ("libc_mprotect", Sysno::Mprotect),
        ("libc_clock", Sysno::ClockGettime),
        ("libc_emit_event", Sysno::EmitEvent),
        ("libc_kill", Sysno::Kill),
    ];
    for (name, sysno) in wrappers {
        asm.func(name);
        asm.push(Insn::Movi(Reg::R0, sysno as u64));
        asm.push(Insn::Syscall);
        asm.push(Insn::Ret);
    }

    // --- strlen(r1) -> r0 -------------------------------------------------
    asm.func("libc_strlen");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.label("strlen_loop");
    asm.push(Insn::Ld(Width::B1, Reg::R3, Reg::R1, 0));
    asm.push(Insn::Cmpi(Reg::R3, 0));
    asm.jcc(Cond::Eq, "strlen_done");
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R0, 1));
    asm.jmp("strlen_loop");
    asm.label("strlen_done");
    asm.push(Insn::Ret);

    // --- strncmp(r1, r2, r3) -> r0 (0 equal / 1 differ) -------------------
    asm.func("libc_strncmp");
    asm.label("strncmp_loop");
    asm.push(Insn::Cmpi(Reg::R3, 0));
    asm.jcc(Cond::Eq, "strncmp_equal");
    asm.push(Insn::Ld(Width::B1, Reg::R4, Reg::R1, 0));
    asm.push(Insn::Ld(Width::B1, Reg::R5, Reg::R2, 0));
    asm.push(Insn::Cmp(Reg::R4, Reg::R5));
    asm.jcc(Cond::Ne, "strncmp_differ");
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R2, 1));
    asm.push(Insn::Addi(Reg::R3, -1));
    asm.jmp("strncmp_loop");
    asm.label("strncmp_equal");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.push(Insn::Ret);
    asm.label("strncmp_differ");
    asm.push(Insn::Movi(Reg::R0, 1));
    asm.push(Insn::Ret);

    // --- memset(r1=dst, r2=byte, r3=len) ----------------------------------
    asm.func("libc_memset");
    asm.label("memset_loop");
    asm.push(Insn::Cmpi(Reg::R3, 0));
    asm.jcc(Cond::Eq, "memset_done");
    asm.push(Insn::St(Width::B1, Reg::R1, 0, Reg::R2));
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R3, -1));
    asm.jmp("memset_loop");
    asm.label("memset_done");
    asm.push(Insn::Ret);

    // --- memcpy(r1=dst, r2=src, r3=len) ------------------------------------
    asm.func("libc_memcpy");
    asm.label("memcpy_loop");
    asm.push(Insn::Cmpi(Reg::R3, 0));
    asm.jcc(Cond::Eq, "memcpy_done");
    asm.push(Insn::Ld(Width::B1, Reg::R4, Reg::R2, 0));
    asm.push(Insn::St(Width::B1, Reg::R1, 0, Reg::R4));
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R2, 1));
    asm.push(Insn::Addi(Reg::R3, -1));
    asm.jmp("memcpy_loop");
    asm.label("memcpy_done");
    asm.push(Insn::Ret);

    // --- atoi(r1) -> r0 (decimal, stops at non-digit) ----------------------
    asm.func("libc_atoi");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.label("atoi_loop");
    asm.push(Insn::Ld(Width::B1, Reg::R3, Reg::R1, 0));
    asm.push(Insn::Cmpi(Reg::R3, b'0' as i32));
    asm.jcc(Cond::B, "atoi_done");
    asm.push(Insn::Cmpi(Reg::R3, b'9' as i32));
    asm.jcc(Cond::A, "atoi_done");
    asm.push(Insn::Muli(Reg::R0, 10));
    asm.push(Insn::Addi(Reg::R3, -(b'0' as i32)));
    asm.push(Insn::Add(Reg::R0, Reg::R3));
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.jmp("atoi_loop");
    asm.label("atoi_done");
    asm.push(Insn::Ret);

    // --- checksum(r1=ptr, r2=len) -> r0 (busy-work rolling sum) ------------
    asm.func("libc_checksum");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.label("checksum_loop");
    asm.push(Insn::Cmpi(Reg::R2, 0));
    asm.jcc(Cond::Eq, "checksum_done");
    asm.push(Insn::Ld(Width::B1, Reg::R3, Reg::R1, 0));
    asm.push(Insn::Add(Reg::R0, Reg::R3));
    asm.push(Insn::Movi(Reg::R4, 31));
    asm.push(Insn::Mul(Reg::R0, Reg::R4));
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R2, -1));
    asm.jmp("checksum_loop");
    asm.label("checksum_done");
    asm.push(Insn::Ret);

    let mut builder = ModuleBuilder::new("libc", ObjectKind::SharedLib);
    builder.text(asm.finish().expect("libc assembles"));
    builder.link(&[]).expect("libc links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_vm::{Kernel, LoadSpec};

    /// Runs a tiny program that exercises a libc routine and exits with
    /// the result as its exit code.
    fn run_with_libc(
        configure: impl FnOnce(&mut Assembler),
        data: &[(&str, &[u8])],
    ) -> u64 {
        let libc = guest_libc();
        let mut asm = Assembler::new();
        asm.func("_start");
        configure(&mut asm);
        // exit(r0): move result into r1 first.
        asm.push(Insn::Mov(Reg::R1, Reg::R0));
        asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
        asm.push(Insn::Syscall);
        let mut builder = ModuleBuilder::new("probe", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        for (name, bytes) in data {
            builder.data(name, bytes);
        }
        builder.entry("_start");
        let exe = builder.link(&[&libc]).unwrap();

        let mut kernel = Kernel::new();
        let pid = kernel
            .spawn(&LoadSpec::with_libs(exe, vec![libc]))
            .unwrap();
        kernel.run_until_exit(pid, 10_000_000).expect("exits").code
    }

    #[test]
    fn strlen_counts_to_nul() {
        let result = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "s", 0);
                asm.call_ext("libc_strlen");
            },
            &[("s", b"hello\0")],
        );
        assert_eq!(result, 5);
    }

    #[test]
    fn strncmp_distinguishes_prefixes() {
        let equal = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "a", 0);
                asm.lea_ext(Reg::R2, "b", 0);
                asm.push(Insn::Movi(Reg::R3, 4));
                asm.call_ext("libc_strncmp");
            },
            &[("a", b"GET /x\0"), ("b", b"GET \0")],
        );
        assert_eq!(equal, 0);
        let differ = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "a", 0);
                asm.lea_ext(Reg::R2, "b", 0);
                asm.push(Insn::Movi(Reg::R3, 4));
                asm.call_ext("libc_strncmp");
            },
            &[("a", b"PUT /x\0"), ("b", b"GET \0")],
        );
        assert_eq!(differ, 1);
    }

    #[test]
    fn atoi_parses_decimal() {
        let result = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "n", 0);
                asm.call_ext("libc_atoi");
            },
            &[("n", b"8080;\0")],
        );
        assert_eq!(result, 8080);
    }

    #[test]
    fn memset_and_checksum() {
        // memset 8 bytes to 1, checksum them: rolling sum is deterministic.
        let result = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "buf", 0);
                asm.push(Insn::Movi(Reg::R2, 1));
                asm.push(Insn::Movi(Reg::R3, 8));
                asm.call_ext("libc_memset");
                asm.lea_ext(Reg::R1, "buf", 0);
                asm.push(Insn::Movi(Reg::R2, 8));
                asm.call_ext("libc_checksum");
                // Keep only the low byte so it fits an exit code check.
                asm.push(Insn::Movi(Reg::R4, 0xFF));
                asm.push(Insn::And(Reg::R0, Reg::R4));
            },
            &[("buf", &[0u8; 8])],
        );
        // Computed on the host for cross-validation.
        let mut expect: u64 = 0;
        for _ in 0..8 {
            expect = (expect + 1).wrapping_mul(31);
        }
        assert_eq!(result, expect & 0xFF);
    }

    #[test]
    fn memcpy_copies() {
        let result = run_with_libc(
            |asm| {
                asm.lea_ext(Reg::R1, "dst", 0);
                asm.lea_ext(Reg::R2, "src", 0);
                asm.push(Insn::Movi(Reg::R3, 3));
                asm.call_ext("libc_memcpy");
                asm.lea_ext(Reg::R1, "dst", 0);
                asm.call_ext("libc_strlen");
            },
            &[("dst", &[0u8; 8]), ("src", b"abc\0")],
        );
        assert_eq!(result, 3);
    }

    #[test]
    fn libc_exports_all_wrappers() {
        let libc = guest_libc();
        for name in [
            "libc_exit",
            "libc_write",
            "libc_read",
            "libc_fork",
            "libc_socket",
            "libc_accept",
            "libc_sigaction",
            "libc_strlen",
            "libc_checksum",
        ] {
            assert!(libc.symbols.contains_key(name), "missing {name}");
        }
    }
}
