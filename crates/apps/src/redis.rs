//! The Redis analogue: an in-memory key-value store with modelled
//! vulnerable commands for the Table 1 CVE case study.
//!
//! Protocol (line-based, RESP-flavoured): `PING`, `GET k`, `SET k v`,
//! `DEL k`, `SETRANGE off v`, `STRALGO a b`, `CONFIG v`.
//!
//! Three handlers carry deliberately modelled vulnerabilities, placed on a
//! dedicated "vuln page" whose successor page is unmapped so that each
//! exploit deterministically crashes the vanilla server:
//!
//! * **`STRALGO`** — the length check truncates the combined input length
//!   to 6 bits before comparing (an integer-overflow model of the
//!   `STRALGO LCS` bugs, CVE-2021-32625 / CVE-2021-29477): inputs summing
//!   to 64 pass the check as "0" and the scratch `memset` runs off the
//!   page,
//! * **`SETRANGE`** — the offset is never bounds-checked
//!   (CVE-2019-10192/10193): a large offset writes past the page,
//! * **`CONFIG`** — the value is copied into a fixed 24-byte area with no
//!   length check (CVE-2016-8339).

use crate::util::*;
use crate::EVENT_READY;
use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};

/// TCP port.
pub const PORT: u16 = 6379;
/// Configuration file path.
pub const CONFIG_PATH: &str = "/etc/redis.conf";
/// Module (binary) name.
pub const MODULE: &str = "redis";
/// Heap pages touched at startup (the paper's Redis image is the largest
/// of the three servers: 4.1 MB).
pub const HEAP_PAGES: u64 = 160;

/// Command handler functions, in dispatch order. Each is an individually
/// blockable feature.
pub const COMMAND_HANDLERS: [(&str, &str); 7] = [
    ("PING", "rd_cmd_ping"),
    ("GET ", "rd_cmd_get"),
    ("SET ", "rd_cmd_set"),
    ("DEL ", "rd_cmd_del"),
    ("SETRANGE ", "rd_cmd_setrange"),
    ("STRALGO ", "rd_cmd_stralgo"),
    ("CONFIG ", "rd_cmd_config"),
];

/// The graceful error reply path (redirect target for blocked commands).
pub const ERROR_HANDLER: &str = "rd_cmd_err";

/// Reply sent by the error path.
pub const ERR_BLOCKED: &[u8] = b"-ERR blocked\n";
/// Reply for unknown commands.
pub const ERR_UNKNOWN: &[u8] = b"-ERR unknown\n";

/// The configuration file contents.
pub fn config_file() -> Vec<u8> {
    b"port=6379\nmaxmemory=64mb\nappendonly=no\nsave=off\n".to_vec()
}

/// Builds the server binary, linked against the guest libc.
pub fn image(libc: &Image) -> Image {
    let mut asm = Assembler::new();

    // ===== entry ==========================================================
    asm.func("_start");
    asm.call("rd_parse_config");
    asm.call("rd_init_table");
    asm.call("rd_load_rdb");
    let init_mods: Vec<String> = (0..16).map(|i| format!("rd_mod_init_{i:02}")).collect();
    emit_calls(&mut asm, &init_mods);
    emit_touch_heap(&mut asm, HEAP_PAGES, Reg::R9);
    // Map the (deliberately guard-adjacent) page used by the vulnerable
    // handlers, and remember its base.
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Movi(Reg::R2, 4096));
    asm.push(Insn::Movi(Reg::R3, 0b011));
    asm.call_ext("libc_mmap");
    asm.lea_ext(Reg::R4, "rd_vuln_ptr", 0);
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R0));
    asm.call("rd_setup_listener");
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    emit_event(&mut asm, EVENT_READY);
    asm.jmp("rd_event_loop");

    // ===== init ===========================================================
    asm.func("rd_parse_config");
    asm.lea_ext(Reg::R1, "rd_conf_path", 0);
    asm.push(Insn::Movi(Reg::R2, CONFIG_PATH.len() as u64));
    asm.call_ext("libc_open");
    asm.push(Insn::Mov(Reg::R9, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.lea_ext(Reg::R2, "rd_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Mov(Reg::R1, Reg::R9));
    asm.call_ext("libc_close");
    asm.lea_ext(Reg::R1, "rd_conf_buf", 5);
    asm.call_ext("libc_atoi");
    asm.lea_ext(Reg::R4, "rd_port", 0);
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R0));
    asm.push(Insn::Ret);

    asm.func("rd_init_table");
    asm.lea_ext(Reg::R1, "rd_table", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 512));
    asm.call_ext("libc_memset");
    asm.push(Insn::Ret);

    asm.func("rd_load_rdb");
    asm.lea_ext(Reg::R1, "rd_conf_buf", 0);
    asm.push(Insn::Movi(Reg::R2, 128));
    asm.call_ext("libc_checksum");
    asm.push(Insn::Ret);

    emit_busy_family(&mut asm, "rd_mod_init", 16, 8);

    asm.func("rd_setup_listener");
    emit_listener_setup(&mut asm, PORT, Reg::R6);
    asm.push(Insn::Mov(Reg::R0, Reg::R6));
    asm.push(Insn::Ret);

    // ===== helpers ========================================================
    // rd_token(r1 = ptr) -> r0 = length until ' ', '\n' or NUL.
    asm.func("rd_token");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.label("rd_token_loop");
    asm.push(Insn::Ld(Width::B1, Reg::R3, Reg::R1, 0));
    asm.push(Insn::Cmpi(Reg::R3, 0));
    asm.jcc(Cond::Eq, "rd_token_done");
    asm.push(Insn::Cmpi(Reg::R3, b' ' as i32));
    asm.jcc(Cond::Eq, "rd_token_done");
    asm.push(Insn::Cmpi(Reg::R3, b'\n' as i32));
    asm.jcc(Cond::Eq, "rd_token_done");
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Addi(Reg::R0, 1));
    asm.jmp("rd_token_loop");
    asm.label("rd_token_done");
    asm.push(Insn::Ret);

    // rd_load_key(r1 = ptr) -> r0 = ptr past the token separator; fills
    // rd_keybuf NUL-padded. Clobbers r8, r12, r13.
    asm.func("rd_load_key");
    asm.push(Insn::Mov(Reg::R12, Reg::R1));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R8, Reg::R0));
    asm.push(Insn::Mov(Reg::R13, Reg::R8));
    asm.push(Insn::Cmpi(Reg::R13, 15));
    asm.jcc(Cond::Be, "rd_lk_capped");
    asm.push(Insn::Movi(Reg::R13, 15));
    asm.label("rd_lk_capped");
    asm.lea_ext(Reg::R1, "rd_keybuf", 0);
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 16));
    asm.call_ext("libc_memset");
    asm.lea_ext(Reg::R1, "rd_keybuf", 0);
    asm.push(Insn::Mov(Reg::R2, Reg::R12));
    asm.push(Insn::Mov(Reg::R3, Reg::R13));
    asm.call_ext("libc_memcpy");
    asm.push(Insn::Mov(Reg::R0, Reg::R12));
    asm.push(Insn::Add(Reg::R0, Reg::R8));
    asm.push(Insn::Addi(Reg::R0, 1));
    asm.push(Insn::Ret);

    // rd_find() -> r0 = slot addr whose key equals rd_keybuf, or 0.
    asm.func("rd_find");
    asm.lea_ext(Reg::R7, "rd_table", 0);
    asm.push(Insn::Movi(Reg::R6, 0));
    asm.label("rd_find_loop");
    asm.push(Insn::Cmpi(Reg::R6, 8));
    asm.jcc(Cond::Ae, "rd_find_miss");
    asm.push(Insn::Mov(Reg::R1, Reg::R7));
    asm.lea_ext(Reg::R2, "rd_keybuf", 0);
    asm.push(Insn::Movi(Reg::R3, 16));
    asm.call_ext("libc_strncmp");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "rd_find_hit");
    asm.push(Insn::Addi(Reg::R7, 64));
    asm.push(Insn::Addi(Reg::R6, 1));
    asm.jmp("rd_find_loop");
    asm.label("rd_find_hit");
    asm.push(Insn::Mov(Reg::R0, Reg::R7));
    asm.push(Insn::Ret);
    asm.label("rd_find_miss");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.push(Insn::Ret);

    // rd_find_empty() -> r0 = first slot with a NUL key byte, or 0.
    asm.func("rd_find_empty");
    asm.lea_ext(Reg::R7, "rd_table", 0);
    asm.push(Insn::Movi(Reg::R6, 0));
    asm.label("rd_fe_loop");
    asm.push(Insn::Cmpi(Reg::R6, 8));
    asm.jcc(Cond::Ae, "rd_fe_miss");
    asm.push(Insn::Ld(Width::B1, Reg::R4, Reg::R7, 0));
    asm.push(Insn::Cmpi(Reg::R4, 0));
    asm.jcc(Cond::Eq, "rd_fe_hit");
    asm.push(Insn::Addi(Reg::R7, 64));
    asm.push(Insn::Addi(Reg::R6, 1));
    asm.jmp("rd_fe_loop");
    asm.label("rd_fe_hit");
    asm.push(Insn::Mov(Reg::R0, Reg::R7));
    asm.push(Insn::Ret);
    asm.label("rd_fe_miss");
    asm.push(Insn::Movi(Reg::R0, 0));
    asm.push(Insn::Ret);

    // ===== event loop =====================================================
    asm.func("rd_event_loop");
    asm.label("rd_accept_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.call_ext("libc_accept");
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("rd_serve_loop");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "rd_req_buf", 0);
    asm.push(Insn::Movi(Reg::R3, 255));
    asm.call_ext("libc_read");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "rd_close_conn");
    asm.lea_ext(Reg::R4, "rd_req_buf", 0);
    asm.push(Insn::Add(Reg::R4, Reg::R0));
    asm.push(Insn::Movi(Reg::R5, 0));
    asm.push(Insn::St(Width::B1, Reg::R4, 0, Reg::R5));
    asm.jmp("rd_dispatch");
    asm.label("rd_close_conn");
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.call_ext("libc_close");
    asm.jmp("rd_accept_loop");

    // ===== dispatcher =====================================================
    asm.func("rd_dispatch");
    for (index, (literal, handler)) in COMMAND_HANDLERS.iter().enumerate() {
        emit_method_test(
            &mut asm,
            "rd_req_buf",
            &format!("rd_c{index}"),
            literal.len() as u64,
            handler,
        );
    }
    emit_write_lit(&mut asm, Reg::R11, "rd_eunk", ERR_UNKNOWN.len() as u64);
    asm.jmp("rd_serve_loop");
    asm.func(ERROR_HANDLER);
    emit_write_lit(&mut asm, Reg::R11, "rd_eblk", ERR_BLOCKED.len() as u64);
    asm.jmp("rd_serve_loop");

    // ===== command handlers ==============================================
    asm.func("rd_cmd_ping");
    emit_write_lit(&mut asm, Reg::R11, "rd_pong", b"+PONG\n".len() as u64);
    asm.jmp("rd_serve_loop");

    asm.func("rd_cmd_get");
    asm.lea_ext(Reg::R1, "rd_req_buf", 4);
    asm.call("rd_load_key");
    asm.call("rd_find");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "rd_get_missing");
    asm.push(Insn::Mov(Reg::R13, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, Reg::R13));
    asm.push(Insn::Addi(Reg::R1, 16));
    asm.call_ext("libc_strlen");
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.push(Insn::Mov(Reg::R2, Reg::R13));
    asm.push(Insn::Addi(Reg::R2, 16));
    asm.call_ext("libc_write");
    emit_write_lit(&mut asm, Reg::R11, "rd_nl", 1);
    asm.jmp("rd_serve_loop");
    asm.label("rd_get_missing");
    emit_write_lit(&mut asm, Reg::R11, "rd_nil", b"$-1\n".len() as u64);
    asm.jmp("rd_serve_loop");

    asm.func("rd_cmd_set");
    asm.lea_ext(Reg::R1, "rd_req_buf", 4);
    asm.call("rd_load_key");
    asm.push(Insn::Mov(Reg::R12, Reg::R0)); // value pointer
    asm.call("rd_find");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Ne, "rd_set_store");
    asm.call("rd_find_empty");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Ne, "rd_set_store");
    emit_write_lit(&mut asm, Reg::R11, "rd_efull", b"-ERR full\n".len() as u64);
    asm.jmp("rd_serve_loop");
    asm.label("rd_set_store");
    asm.push(Insn::Mov(Reg::R13, Reg::R0)); // slot
    asm.push(Insn::Mov(Reg::R1, Reg::R13));
    asm.lea_ext(Reg::R2, "rd_keybuf", 0);
    asm.push(Insn::Movi(Reg::R3, 16));
    asm.call_ext("libc_memcpy");
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R8, Reg::R0));
    asm.push(Insn::Cmpi(Reg::R8, 47));
    asm.jcc(Cond::Be, "rd_set_len_ok");
    asm.push(Insn::Movi(Reg::R8, 47));
    asm.label("rd_set_len_ok");
    asm.push(Insn::Mov(Reg::R1, Reg::R13));
    asm.push(Insn::Addi(Reg::R1, 16));
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 48));
    asm.call_ext("libc_memset");
    asm.push(Insn::Mov(Reg::R1, Reg::R13));
    asm.push(Insn::Addi(Reg::R1, 16));
    asm.push(Insn::Mov(Reg::R2, Reg::R12));
    asm.push(Insn::Mov(Reg::R3, Reg::R8));
    asm.call_ext("libc_memcpy");
    emit_write_lit(&mut asm, Reg::R11, "rd_ok", b"+OK\n".len() as u64);
    asm.jmp("rd_serve_loop");

    asm.func("rd_cmd_del");
    asm.lea_ext(Reg::R1, "rd_req_buf", 4);
    asm.call("rd_load_key");
    asm.call("rd_find");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "rd_del_missing");
    asm.push(Insn::Mov(Reg::R1, Reg::R0));
    asm.push(Insn::Movi(Reg::R2, 0));
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.call_ext("libc_memset");
    emit_write_lit(&mut asm, Reg::R11, "rd_ok", b"+OK\n".len() as u64);
    asm.jmp("rd_serve_loop");
    asm.label("rd_del_missing");
    emit_write_lit(&mut asm, Reg::R11, "rd_nil", b"$-1\n".len() as u64);
    asm.jmp("rd_serve_loop");

    // SETRANGE off v — vulnerable: the offset is never bounds-checked.
    asm.func("rd_cmd_setrange");
    asm.lea_ext(Reg::R12, "rd_req_buf", 9);
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.call_ext("libc_atoi");
    asm.push(Insn::Mov(Reg::R13, Reg::R0)); // offset
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R8, Reg::R12));
    asm.push(Insn::Add(Reg::R8, Reg::R0));
    asm.push(Insn::Addi(Reg::R8, 1)); // value pointer
    asm.push(Insn::Mov(Reg::R1, Reg::R8));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R9, Reg::R0)); // value length
    asm.lea_ext(Reg::R4, "rd_vuln_ptr", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R4, Reg::R4, 0));
    asm.push(Insn::Add(Reg::R4, Reg::R13));
    asm.push(Insn::Mov(Reg::R1, Reg::R4));
    asm.push(Insn::Mov(Reg::R2, Reg::R8));
    asm.push(Insn::Mov(Reg::R3, Reg::R9));
    asm.call_ext("libc_memcpy");
    emit_write_lit(&mut asm, Reg::R11, "rd_ok", b"+OK\n".len() as u64);
    asm.jmp("rd_serve_loop");

    // STRALGO a b — vulnerable: the length check truncates to 6 bits.
    asm.func("rd_cmd_stralgo");
    asm.lea_ext(Reg::R12, "rd_req_buf", 8);
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R13, Reg::R0)); // len(a)
    asm.push(Insn::Mov(Reg::R8, Reg::R12));
    asm.push(Insn::Add(Reg::R8, Reg::R13));
    asm.push(Insn::Addi(Reg::R8, 1));
    asm.push(Insn::Mov(Reg::R1, Reg::R8));
    asm.call("rd_token");
    asm.push(Insn::Add(Reg::R13, Reg::R0)); // sum = len(a) + len(b)
    // check = sum & 0x3F — the integer-overflow model.
    asm.push(Insn::Mov(Reg::R4, Reg::R13));
    asm.push(Insn::Movi(Reg::R5, 0x3F));
    asm.push(Insn::And(Reg::R4, Reg::R5));
    asm.push(Insn::Cmpi(Reg::R4, 32));
    asm.jcc(Cond::A, "rd_stralgo_err");
    asm.lea_ext(Reg::R4, "rd_vuln_ptr", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R4, Reg::R4, 0));
    asm.push(Insn::Movi(Reg::R5, 4056));
    asm.push(Insn::Add(Reg::R4, Reg::R5));
    asm.push(Insn::Mov(Reg::R1, Reg::R4));
    asm.push(Insn::Movi(Reg::R2, b'x' as u64));
    asm.push(Insn::Mov(Reg::R3, Reg::R13)); // the REAL sum, not the check
    asm.call_ext("libc_memset");
    emit_write_lit(&mut asm, Reg::R11, "rd_lcs", b"+LCS\n".len() as u64);
    asm.jmp("rd_serve_loop");
    asm.label("rd_stralgo_err");
    emit_write_lit(&mut asm, Reg::R11, "rd_elong", b"-ERR too long\n".len() as u64);
    asm.jmp("rd_serve_loop");

    // CONFIG v — vulnerable: fixed 24-byte area, no length check.
    asm.func("rd_cmd_config");
    asm.lea_ext(Reg::R12, "rd_req_buf", 7);
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.call("rd_token");
    asm.push(Insn::Mov(Reg::R13, Reg::R0));
    asm.lea_ext(Reg::R4, "rd_vuln_ptr", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R4, Reg::R4, 0));
    asm.push(Insn::Movi(Reg::R5, 4072));
    asm.push(Insn::Add(Reg::R4, Reg::R5));
    asm.push(Insn::Mov(Reg::R1, Reg::R4));
    asm.push(Insn::Mov(Reg::R2, Reg::R12));
    asm.push(Insn::Mov(Reg::R3, Reg::R13));
    asm.call_ext("libc_memcpy");
    emit_write_lit(&mut asm, Reg::R11, "rd_ok", b"+OK\n".len() as u64);
    asm.jmp("rd_serve_loop");

    // ===== never-used modules ============================================
    emit_busy_family(&mut asm, "rd_cluster", 12, 8);
    emit_busy_family(&mut asm, "rd_replica", 10, 8);
    emit_busy_family(&mut asm, "rd_script", 10, 8);

    // ===== data ===========================================================
    let mut builder = ModuleBuilder::new(MODULE, ObjectKind::Executable);
    builder.text(asm.finish().expect("redis assembles"));
    builder.rodata("rd_conf_path", CONFIG_PATH.as_bytes());
    for (index, (literal, _)) in COMMAND_HANDLERS.iter().enumerate() {
        builder.rodata(&format!("rd_c{index}"), literal.as_bytes());
    }
    builder.rodata("rd_pong", b"+PONG\n");
    builder.rodata("rd_ok", b"+OK\n");
    builder.rodata("rd_nil", b"$-1\n");
    builder.rodata("rd_nl", b"\n");
    builder.rodata("rd_lcs", b"+LCS\n");
    builder.rodata("rd_eunk", ERR_UNKNOWN);
    builder.rodata("rd_eblk", ERR_BLOCKED);
    builder.rodata("rd_efull", b"-ERR full\n");
    builder.rodata("rd_elong", b"-ERR too long\n");
    builder.bss("rd_conf_buf", 256);
    builder.bss("rd_req_buf", 256);
    builder.bss("rd_keybuf", 16);
    builder.bss("rd_table", 512);
    builder.bss("rd_vuln_ptr", 8);
    builder.bss("rd_port", 8);
    builder.entry("_start");
    builder.link(&[libc]).expect("redis links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libc::guest_libc;
    use dynacut_vm::{Kernel, LoadSpec, Signal};

    fn boot() -> (Kernel, dynacut_vm::Pid) {
        let libc = guest_libc();
        let exe = image(&libc);
        let mut kernel = Kernel::new();
        kernel.add_file(CONFIG_PATH, &config_file());
        let pid = kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
        kernel
            .run_until_event(EVENT_READY, 50_000_000)
            .expect("boots");
        (kernel, pid)
    }

    #[test]
    fn ping_get_set_del_round_trip() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        assert_eq!(
            kernel.client_request(conn, b"PING\n", 2_000_000).unwrap(),
            b"+PONG\n"
        );
        assert_eq!(
            kernel.client_request(conn, b"GET k1\n", 2_000_000).unwrap(),
            b"$-1\n"
        );
        assert_eq!(
            kernel
                .client_request(conn, b"SET k1 hello\n", 2_000_000)
                .unwrap(),
            b"+OK\n"
        );
        assert_eq!(
            kernel.client_request(conn, b"GET k1\n", 2_000_000).unwrap(),
            b"hello\n"
        );
        assert_eq!(
            kernel
                .client_request(conn, b"SET k1 world\n", 2_000_000)
                .unwrap(),
            b"+OK\n",
            "overwrite existing key"
        );
        assert_eq!(
            kernel.client_request(conn, b"GET k1\n", 2_000_000).unwrap(),
            b"world\n"
        );
        assert_eq!(
            kernel.client_request(conn, b"DEL k1\n", 2_000_000).unwrap(),
            b"+OK\n"
        );
        assert_eq!(
            kernel.client_request(conn, b"GET k1\n", 2_000_000).unwrap(),
            b"$-1\n"
        );
    }

    #[test]
    fn multiple_keys_coexist() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        for i in 0..4 {
            let cmd = format!("SET key{i} value{i}\n");
            assert_eq!(
                kernel
                    .client_request(conn, cmd.as_bytes(), 2_000_000)
                    .unwrap(),
                b"+OK\n"
            );
        }
        for i in (0..4).rev() {
            let cmd = format!("GET key{i}\n");
            let expect = format!("value{i}\n");
            assert_eq!(
                kernel
                    .client_request(conn, cmd.as_bytes(), 2_000_000)
                    .unwrap(),
                expect.as_bytes()
            );
        }
    }

    #[test]
    fn unknown_command_is_rejected() {
        let (mut kernel, _) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        assert_eq!(
            kernel
                .client_request(conn, b"FLUSHALL\n", 2_000_000)
                .unwrap(),
            ERR_UNKNOWN
        );
    }

    #[test]
    fn benign_vulnerable_commands_work() {
        let (mut kernel, pid) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        assert_eq!(
            kernel
                .client_request(conn, b"SETRANGE 8 abc\n", 2_000_000)
                .unwrap(),
            b"+OK\n"
        );
        assert_eq!(
            kernel
                .client_request(conn, b"STRALGO abcd efgh\n", 2_000_000)
                .unwrap(),
            b"+LCS\n"
        );
        assert_eq!(
            kernel
                .client_request(conn, b"CONFIG maxmem=128\n", 2_000_000)
                .unwrap(),
            b"+OK\n"
        );
        assert!(kernel.exit_status(pid).is_none(), "server alive");
    }

    #[test]
    fn stralgo_integer_overflow_crashes_vanilla_server() {
        let (mut kernel, pid) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        // 32 + 32 = 64 ≡ 0 (mod 64): passes the truncated check, memsets
        // 64 bytes at page offset 4056 → page overrun → SIGSEGV.
        let a = "a".repeat(32);
        let b = "b".repeat(32);
        let attack = format!("STRALGO {a} {b}\n");
        let reply = kernel
            .client_request(conn, attack.as_bytes(), 5_000_000)
            .unwrap();
        assert!(reply.is_empty(), "no reply: server crashed");
        let status = kernel.exit_status(pid).expect("server dead");
        assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
    }

    #[test]
    fn setrange_oob_offset_crashes_vanilla_server() {
        let (mut kernel, pid) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        let reply = kernel
            .client_request(conn, b"SETRANGE 5000 xyz\n", 5_000_000)
            .unwrap();
        assert!(reply.is_empty());
        let status = kernel.exit_status(pid).expect("server dead");
        assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
    }

    #[test]
    fn config_overflow_crashes_vanilla_server() {
        let (mut kernel, pid) = boot();
        let conn = kernel.client_connect(PORT).unwrap();
        let long_value = "v".repeat(64);
        let attack = format!("CONFIG {long_value}\n");
        let reply = kernel
            .client_request(conn, attack.as_bytes(), 5_000_000)
            .unwrap();
        assert!(reply.is_empty());
        let status = kernel.exit_status(pid).expect("server dead");
        assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
    }

    #[test]
    fn command_handlers_are_locatable_features() {
        let libc = guest_libc();
        let exe = image(&libc);
        for (_, handler) in COMMAND_HANDLERS {
            assert!(!exe.blocks_of_function(handler).is_empty(), "{handler}");
        }
        assert!(exe.symbols.contains_key(ERROR_HANDLER));
    }
}
