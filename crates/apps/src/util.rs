//! Shared assembly-emission helpers for the guest applications.

use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};

/// Emits `write(conn_fd_reg, <literal>, len)` through libc. The literal
/// must have been (or will be) defined as a rodata symbol.
pub(crate) fn emit_write_lit(asm: &mut Assembler, conn_reg: Reg, symbol: &str, len: u64) {
    asm.push(Insn::Mov(Reg::R1, conn_reg));
    asm.lea_ext(Reg::R2, symbol, 0);
    asm.push(Insn::Movi(Reg::R3, len));
    asm.call_ext("libc_write");
}

/// Emits the socket/bind/listen prologue, leaving the listener fd in
/// `dst`.
pub(crate) fn emit_listener_setup(asm: &mut Assembler, port: u16, dst: Reg) {
    asm.call_ext("libc_socket");
    asm.push(Insn::Mov(dst, Reg::R0));
    asm.push(Insn::Mov(Reg::R1, dst));
    asm.push(Insn::Movi(Reg::R2, u64::from(port)));
    asm.call_ext("libc_bind");
    asm.push(Insn::Mov(Reg::R1, dst));
    asm.call_ext("libc_listen");
}

/// Emits `emit_event(code)`.
pub(crate) fn emit_event(asm: &mut Assembler, code: u64) {
    asm.push(Insn::Movi(Reg::R1, code));
    asm.call_ext("libc_emit_event");
}

/// Emits a busy-work function of roughly `blocks` basic blocks (a chain
/// of fall-through compare/branch blocks ending in `ret`). Used to give
/// the guests realistic code mass: initialization modules that run once,
/// and cold feature modules that never run (the gray blocks of paper
/// Figure 2).
pub(crate) fn emit_busy_func(asm: &mut Assembler, name: &str, blocks: usize) {
    asm.func(name);
    asm.push(Insn::Movi(Reg::R8, 1));
    let end = format!("{name}$end");
    for index in 0..blocks.saturating_sub(1) {
        asm.push(Insn::Addi(Reg::R8, index as i32 + 1));
        asm.push(Insn::Muli(Reg::R8, 3));
        // Never taken: r8 grows strictly positive.
        asm.push(Insn::Cmpi(Reg::R8, 0));
        asm.jcc(Cond::Eq, &end);
    }
    asm.label(&end);
    asm.push(Insn::Ret);
}

/// Emits `count` busy functions named `prefix_00 …` and returns their
/// names.
pub(crate) fn emit_busy_family(
    asm: &mut Assembler,
    prefix: &str,
    count: usize,
    blocks_each: usize,
) -> Vec<String> {
    (0..count)
        .map(|index| {
            let name = format!("{prefix}_{index:02}");
            emit_busy_func(asm, &name, blocks_each);
            name
        })
        .collect()
}

/// Emits calls to each named function in order.
pub(crate) fn emit_calls(asm: &mut Assembler, names: &[String]) {
    for name in names {
        asm.call(name);
    }
}

/// Emits code that mmaps `pages` anonymous RW pages and writes one byte
/// into each, so they show up as populated pages in a checkpoint (this is
/// what gives each workload its characteristic image size, Figure 7).
/// Leaves the mapping base in `dst`.
pub(crate) fn emit_touch_heap(asm: &mut Assembler, pages: u64, dst: Reg) {
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Movi(Reg::R2, pages * 4096));
    asm.push(Insn::Movi(Reg::R3, 0b011));
    asm.call_ext("libc_mmap");
    asm.push(Insn::Mov(dst, Reg::R0));
    // Touch one byte per page.
    asm.push(Insn::Mov(Reg::R8, dst));
    asm.push(Insn::Movi(Reg::R9, pages));
    let loop_label = format!("touch$L{pages}${}", asm.len());
    let done_label = format!("touch$D{pages}${}", asm.len());
    asm.label(&loop_label);
    asm.push(Insn::Cmpi(Reg::R9, 0));
    asm.jcc(Cond::Eq, &done_label);
    asm.push(Insn::Movi(Reg::R7, 0xAB));
    asm.push(Insn::St(Width::B1, Reg::R8, 0, Reg::R7));
    asm.push(Insn::Movi(Reg::R7, 4096));
    asm.push(Insn::Add(Reg::R8, Reg::R7));
    asm.push(Insn::Addi(Reg::R9, -1));
    asm.jmp(&loop_label);
    asm.label(&done_label);
}

/// Emits a `strncmp(req_buf, <literal>, len) == 0 → jcc target` dispatch
/// test.
pub(crate) fn emit_method_test(
    asm: &mut Assembler,
    buf_symbol: &str,
    literal_symbol: &str,
    len: u64,
    target: &str,
) {
    asm.lea_ext(Reg::R1, buf_symbol, 0);
    asm.lea_ext(Reg::R2, literal_symbol, 0);
    asm.push(Insn::Movi(Reg::R3, len));
    asm.call_ext("libc_strncmp");
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_isa::decode_all;

    #[test]
    fn busy_func_has_requested_block_count() {
        let mut asm = Assembler::new();
        emit_busy_func(&mut asm, "filler", 10);
        let text = asm.finish().unwrap();
        // Blocks: 9 chain blocks + final ret block.
        assert_eq!(text.blocks.len(), 10);
        assert!(decode_all(&text.bytes).is_ok());
    }

    #[test]
    fn busy_family_names_are_unique() {
        let mut asm = Assembler::new();
        let names = emit_busy_family(&mut asm, "mod", 5, 4);
        assert_eq!(names.len(), 5);
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(asm.finish().is_ok());
    }
}
