//! Edge-case behaviour of the guest servers: capacity limits, fragmented
//! and oversized requests, connection churn.

use dynacut_apps::{libc::guest_libc, lighttpd, nginx, redis, EVENT_READY};
use dynacut_vm::{Kernel, LoadSpec, Pid};

fn boot_redis() -> (Kernel, Pid) {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let pid = kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    (kernel, pid)
}

#[test]
fn redis_table_capacity_is_enforced() {
    let (mut kernel, pid) = boot_redis();
    let conn = kernel.client_connect(redis::PORT).unwrap();
    // Eight slots fill; the ninth key is rejected.
    for index in 0..8 {
        let cmd = format!("SET key{index} v\n");
        assert_eq!(
            kernel.client_request(conn, cmd.as_bytes(), 5_000_000).unwrap(),
            b"+OK\n",
            "slot {index}"
        );
    }
    assert_eq!(
        kernel
            .client_request(conn, b"SET overflow v\n", 5_000_000)
            .unwrap(),
        b"-ERR full\n"
    );
    // Deleting frees a slot for reuse.
    assert_eq!(
        kernel.client_request(conn, b"DEL key3\n", 5_000_000).unwrap(),
        b"+OK\n"
    );
    assert_eq!(
        kernel
            .client_request(conn, b"SET reused value\n", 5_000_000)
            .unwrap(),
        b"+OK\n"
    );
    assert_eq!(
        kernel.client_request(conn, b"GET reused\n", 5_000_000).unwrap(),
        b"value\n"
    );
    assert!(kernel.exit_status(pid).is_none());
}

#[test]
fn redis_long_keys_and_values_are_truncated_not_fatal() {
    let (mut kernel, pid) = boot_redis();
    let conn = kernel.client_connect(redis::PORT).unwrap();
    let long_key = "k".repeat(40);
    let long_value = "v".repeat(100);
    let cmd = format!("SET {long_key} {long_value}\n");
    assert_eq!(
        kernel.client_request(conn, cmd.as_bytes(), 5_000_000).unwrap(),
        b"+OK\n"
    );
    let get = format!("GET {long_key}\n");
    let reply = kernel.client_request(conn, get.as_bytes(), 5_000_000).unwrap();
    // Value capped at the slot size (47 chars + newline).
    assert_eq!(reply.len(), 48);
    assert!(reply.starts_with(b"vvvv"));
    assert!(kernel.exit_status(pid).is_none());
}

#[test]
fn fragmented_requests_are_served_once_complete() {
    // The client writes the request in three fragments; the server's
    // first read picks up whatever has arrived. Sending fragments with
    // no kernel run in between coalesces them, like TCP.
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    kernel.client_send(conn, b"GET ").unwrap();
    kernel.client_send(conn, b"/index").unwrap();
    kernel.client_send(conn, b".html\n").unwrap();
    kernel.run_for(500_000);
    assert_eq!(kernel.client_recv(conn).unwrap(), nginx::RESP_200);
}

#[test]
fn rapid_connection_churn_is_handled() {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let pid = kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    for round in 0..20 {
        let conn = kernel.client_connect(lighttpd::PORT).unwrap();
        let reply = kernel
            .client_request(conn, b"GET /churn\n", 5_000_000)
            .unwrap();
        assert_eq!(reply, nginx::RESP_200, "round {round}");
        kernel.client_close(conn).unwrap();
    }
    assert!(kernel.exit_status(pid).is_none());
}

#[test]
fn empty_and_garbage_requests_do_not_kill_servers() {
    let (mut kernel, pid) = boot_redis();
    let conn = kernel.client_connect(redis::PORT).unwrap();
    for garbage in [&b"\n"[..], b"    \n", b"\x00\x01\x02\n", b"GETGETGET\n"] {
        let reply = kernel.client_request(conn, garbage, 5_000_000).unwrap();
        assert!(!reply.is_empty(), "got an error reply for {garbage:?}");
    }
    assert!(kernel.exit_status(pid).is_none());
}

#[test]
fn two_clients_interleave_on_nginx() {
    // The single worker serves one connection at a time; a second client
    // is served after the first closes.
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    kernel.spawn(&LoadSpec::with_libs(exe, vec![libc])).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();

    let first = kernel.client_connect(nginx::PORT).unwrap();
    let second = kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        kernel.client_request(first, b"GET /a\n", 5_000_000).unwrap(),
        nginx::RESP_200
    );
    // While the worker sits on `first`, `second` waits in the backlog.
    kernel.client_send(second, b"HEAD /b\n").unwrap();
    kernel.run_for(200_000);
    assert!(kernel.client_recv(second).unwrap().is_empty());
    // Closing the first connection lets the worker accept the second.
    kernel.client_close(first).unwrap();
    kernel.run_for(500_000);
    assert_eq!(kernel.client_recv(second).unwrap(), nginx::RESP_200_HEAD);
}
