//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p dynacut-bench --bin figures -- all
//! cargo run --release -p dynacut-bench --bin figures -- fig6 fig8
//! ```

use dynacut_bench::{experiments, flight};

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig2|fig4|fig6|fig7|fig8|fig8-incremental|fig9|fig10|table1|plt|ablation|flight|fleet|interp|restore|rollout|sched|all> [more...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut targets: Vec<&str> = args.iter().map(String::as_str).collect();
    if targets.contains(&"all") {
        targets = vec![
            "fig2",
            "fig4",
            "fig6",
            "fig7",
            "fig8",
            "fig8-incremental",
            "fig9",
            "fig10",
            "table1",
            "plt",
            "ablation",
            "flight",
            "fleet",
            "interp",
            "restore",
            "rollout",
            "sched",
        ];
    }
    for (index, target) in targets.iter().enumerate() {
        if index > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        match *target {
            "fig2" => experiments::fig2::print(),
            "fig4" => experiments::fig4::print(),
            "fig6" => experiments::fig6::print(),
            "fig7" => experiments::fig7::print(),
            "fig8" => experiments::fig8::print(),
            "fig8-incremental" => experiments::fig8_incremental::print(),
            "fig9" => experiments::fig9::print(),
            "fig10" => experiments::fig10::print(),
            "table1" => experiments::table1::print(),
            "plt" => experiments::plt::print(),
            "ablation" => experiments::ablation::print(),
            "flight" => flight::print(),
            "fleet" => experiments::fleet::print(),
            "interp" => experiments::interp::print(),
            "restore" => experiments::restore::print(),
            "rollout" => experiments::rollout::print(),
            "sched" => experiments::sched::print(),
            other => {
                eprintln!("unknown target `{other}`");
                usage();
            }
        }
    }
}
