//! # dynacut-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4):
//!
//! | Experiment | Paper artefact | Module |
//! |---|---|---|
//! | [`fig2`] | Fig. 2 — basic-block liveness maps (605.mcf, Lighttpd) | `experiments::fig2` |
//! | [`fig4`] | Fig. 4 — tracediff feature discovery (Redis SET) | `experiments::fig4` |
//! | [`fig6`] | Fig. 6 — feature-removal overhead breakdown | `experiments::fig6` |
//! | [`fig7`] | Fig. 7 — init-code-removal overhead + size table | `experiments::fig7` |
//! | [`fig8`] | Fig. 8 — Redis throughput timeline around disable/re-enable | `experiments::fig8` |
//! | [`fig9`] | Fig. 9 — executed vs removed block counts | `experiments::fig9` |
//! | [`fig10`] | Fig. 10 — live-block % over time vs RAZOR/Chisel | `experiments::fig10` |
//! | [`table1`] | Table 1 — Redis CVE mitigation | `experiments::table1` |
//! | [`plt`] | §4.2 — PLT-entry removal and BROP surface | `experiments::plt` |
//! | `fleet` | Fleet engine — N-replica customize, dedup + freeze windows | `experiments::fleet` |
//!
//! Run them all with `cargo run -p dynacut-bench --bin figures -- all`.
//!
//! Absolute timings depend on the host; the *shapes* the paper claims
//! (orderings, proportionality, dip-and-recover) are asserted in this
//! crate's tests.

pub mod experiments;
pub mod flight;
pub mod report;
pub mod workloads;

pub use experiments::{fig10, fig2, fig4, fig6, fig7, fig8, fig9, plt, table1};
