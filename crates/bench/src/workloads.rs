//! Booting the guest workloads and driving them with client traffic.

use dynacut_apps::{libc::guest_libc, lighttpd, nginx, redis, spec, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_obj::Image;
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, LoadSpec, Pid};
use std::sync::Arc;

/// A booted guest application plus everything the harness needs to
/// customize it.
pub struct Workload {
    /// The kernel the application runs in.
    pub kernel: Kernel,
    /// Application pids (master first for Nginx).
    pub pids: Vec<Pid>,
    /// The application binary.
    pub exe: Arc<Image>,
    /// Registry with the binary and its libraries.
    pub registry: ModuleRegistry,
    /// Installed tracer, if requested.
    pub tracer: Option<Tracer>,
    /// Application port (0 for SPEC programs).
    pub port: u16,
}

/// Which server to boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Server {
    /// The multi-process web server.
    Nginx,
    /// The single-process web server.
    Lighttpd,
    /// The key-value store.
    Redis,
}

impl Server {
    /// Application module name.
    pub fn module(self) -> &'static str {
        match self {
            Server::Nginx => nginx::MODULE,
            Server::Lighttpd => lighttpd::MODULE,
            Server::Redis => redis::MODULE,
        }
    }

    /// Listening port.
    pub fn port(self) -> u16 {
        match self {
            Server::Nginx => nginx::PORT,
            Server::Lighttpd => lighttpd::PORT,
            Server::Redis => redis::PORT,
        }
    }
}

/// Boots a server, optionally under the coverage tracer, and runs it to
/// the end of its initialization phase (the `EVENT_READY` marker).
pub fn boot_server(server: Server, with_tracer: bool) -> Workload {
    let libc = guest_libc();
    let (exe, config_path, config): (Image, &str, Vec<u8>) = match server {
        Server::Nginx => (nginx::image(&libc), nginx::CONFIG_PATH, nginx::config_file()),
        Server::Lighttpd => (
            lighttpd::image(&libc),
            lighttpd::CONFIG_PATH,
            lighttpd::config_file(),
        ),
        Server::Redis => (redis::image(&libc), redis::CONFIG_PATH, redis::config_file()),
    };
    let mut kernel = Kernel::new();
    kernel.add_file(config_path, &config);
    let tracer = with_tracer.then(|| Tracer::install(&mut kernel));
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let first = kernel.spawn(&spec).expect("spawn");
    if let Some(tracer) = &tracer {
        tracer.track(&kernel, first).expect("track");
    }
    kernel
        .run_until_event(EVENT_READY, 500_000_000)
        .expect("server initializes");
    let mut pids = kernel.pids();
    pids.retain(|&pid| kernel.exit_status(pid).is_none());
    // Track any forked workers too.
    if let Some(tracer) = &tracer {
        for &pid in &pids {
            let _ = tracer.track(&kernel, pid);
        }
    }
    Workload {
        kernel,
        pids,
        exe,
        registry,
        tracer,
        port: server.port(),
    }
}

/// A fleet of identical server replicas sharing one kernel: the target
/// of [`dynacut::DynaCut::customize_fleet`].
pub struct FleetWorkload {
    /// The kernel every replica runs in.
    pub kernel: Kernel,
    /// One process group per replica (single-pid groups for Redis).
    pub groups: Vec<Vec<Pid>>,
    /// The shared application binary.
    pub exe: Arc<Image>,
    /// Registry with the binary and its libraries.
    pub registry: ModuleRegistry,
    /// The shared listening port.
    pub port: u16,
}

impl FleetWorkload {
    /// Every replica pid, flattened.
    pub fn pids(&self) -> Vec<Pid> {
        self.groups.iter().flatten().copied().collect()
    }

    /// Sends one request into the shared listener backlog and returns
    /// the reply (empty on timeout). Whichever unfrozen replica accepts
    /// first serves it.
    pub fn request(&mut self, bytes: &[u8]) -> Vec<u8> {
        let conn = self
            .kernel
            .client_connect(self.port)
            .expect("fleet listening");
        let reply = self
            .kernel
            .client_request(conn, bytes, 10_000_000)
            .expect("request");
        let _ = self.kernel.client_close(conn);
        reply
    }
}

/// Boots `replicas` identical Redis replicas into one kernel. All bind
/// the same port — the simulated stack models an `SO_REUSEPORT`-style
/// shared backlog, so any runnable replica accepts — and each runs to
/// its `EVENT_READY` marker before the next is spawned. Just-booted
/// replicas of the same binary have near-identical page contents, which
/// is what the content-addressed checkpoint store dedups across.
pub fn boot_fleet(replicas: usize) -> FleetWorkload {
    assert!(replicas > 0, "fleet needs at least one replica");
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let mut groups = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let pid = kernel.spawn(&spec).expect("spawn replica");
        // Waiting per replica keeps the ready markers unambiguous (one
        // run_until_event call per emission).
        kernel
            .run_until_event(EVENT_READY, 500_000_000)
            .expect("replica initializes");
        groups.push(vec![pid]);
    }
    FleetWorkload {
        kernel,
        groups,
        exe,
        registry,
        port: redis::PORT,
    }
}

/// Boots one SPEC analogue under the tracer and runs its init phase.
pub fn boot_spec(program: &spec::SpecProgram) -> Workload {
    let libc = guest_libc();
    let exe = program.image(&libc);
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let load = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&load.exe));
    for lib in &load.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&load.exe);
    let pid = kernel.spawn(&load).expect("spawn");
    tracer.track(&kernel, pid).expect("track");
    kernel
        .run_until_event(EVENT_READY, 2_000_000_000)
        .expect("spec program initializes");
    Workload {
        kernel,
        pids: vec![pid],
        exe,
        registry,
        tracer: Some(tracer),
        port: 0,
    }
}

impl Workload {
    /// Sends one request and returns the reply (empty on timeout).
    pub fn request(&mut self, bytes: &[u8]) -> Vec<u8> {
        let conn = self
            .kernel
            .client_connect(self.port)
            .expect("server listening");
        let reply = self
            .kernel
            .client_request(conn, bytes, 10_000_000)
            .expect("request");
        let _ = self.kernel.client_close(conn);
        reply
    }

    /// Exercises the "wanted" workload on a web server: a batch of GET and
    /// HEAD requests. Each request uses a **fresh connection** so the
    /// accept and connection-close code paths are part of the training
    /// coverage — the paper's over-elimination caveat (§3.2.3) applies
    /// verbatim if they are not.
    pub fn exercise_http_read_workload(&mut self, requests: usize) {
        for index in 0..requests {
            let request = if index % 2 == 0 {
                format!("GET /page{index}\n")
            } else {
                format!("HEAD /page{index}\n")
            };
            let reply = self.request(request.as_bytes());
            assert!(!reply.is_empty(), "server answered");
        }
    }

    /// Exercises every HTTP method the server supports (the "wanted
    /// features = everything" training set used by the init-code-removal
    /// experiments, where only *temporally* dead code should go).
    pub fn exercise_http_full_workload(&mut self, rounds: usize) {
        let nginx_only = self.port == dynacut_apps::nginx::PORT;
        for round in 0..rounds {
            let mut requests: Vec<String> = vec![
                format!("GET /r{round}\n"),
                format!("HEAD /r{round}\n"),
                format!("PUT /r{round} body"),
                format!("DELETE /r{round}"),
                "BREW /\n".to_owned(), // exercises the 405 path
            ];
            if nginx_only {
                requests.push(format!("MKCOL /d{round}"));
                requests.push("PROPFIND /\n".to_owned());
            }
            for request in requests {
                let reply = self.request(request.as_bytes());
                assert!(!reply.is_empty(), "server answered {request:?}");
            }
        }
    }

    /// Exercises Redis with GET/SET traffic (fresh connection per
    /// request, as above).
    pub fn exercise_redis_workload(&mut self, requests: usize) {
        for index in 0..requests {
            let request = match index % 3 {
                0 => format!("SET key{} v{}\n", index % 8, index),
                1 => format!("GET key{}\n", index % 8),
                _ => "PING\n".to_owned(),
            };
            let reply = self.request(request.as_bytes());
            assert!(!reply.is_empty());
        }
    }
}
