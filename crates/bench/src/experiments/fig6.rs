//! Figure 6: DynaCut's overhead for dynamically customizing code
//! features — the checkpoint / disable-code / insert-sighandler / restore
//! breakdown for Lighttpd, Nginx and Redis, averaged over 10 repetitions.

use crate::report::{stats, Stats};
use crate::workloads::{boot_server, Server};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use std::time::Duration;

/// Repetitions per application (the paper uses 10).
pub const REPETITIONS: usize = 10;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Application name.
    pub app: String,
    /// Features disabled.
    pub features: Vec<String>,
    /// Checkpoint phase.
    pub checkpoint: Stats,
    /// Code-disabling phase.
    pub disable_code: Stats,
    /// Handler-injection phase.
    pub insert_sighandler: Stats,
    /// Restore phase.
    pub restore: Stats,
    /// End-to-end totals.
    pub total: Stats,
    /// Serialized checkpoint size.
    pub image_bytes: usize,
}

fn features_for(server: Server, exe: &dynacut_obj::Image) -> Vec<Feature> {
    match server {
        // "we chose the PUT and DELETE requests in Nginx and Lighttpd".
        Server::Nginx => vec![
            Feature::from_function("PUT", exe, "ngx_put_handler")
                .unwrap()
                .redirect_to_function(exe, dynacut_apps::nginx::ERROR_HANDLER)
                .unwrap(),
            Feature::from_function("DELETE", exe, "ngx_delete_handler")
                .unwrap()
                .redirect_to_function(exe, dynacut_apps::nginx::ERROR_HANDLER)
                .unwrap(),
        ],
        Server::Lighttpd => vec![
            Feature::from_function("PUT", exe, "lt_put_handler")
                .unwrap()
                .redirect_to_function(exe, dynacut_apps::lighttpd::ERROR_HANDLER)
                .unwrap(),
            Feature::from_function("DELETE", exe, "lt_delete_handler")
                .unwrap()
                .redirect_to_function(exe, dynacut_apps::lighttpd::ERROR_HANDLER)
                .unwrap(),
        ],
        // "chose the SET command as the unintended request in Redis".
        Server::Redis => vec![Feature::from_function("SET", exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(exe, dynacut_apps::redis::ERROR_HANDLER)
            .unwrap()],
    }
}

/// Runs one repetition and returns the per-phase durations plus the image
/// size.
fn one_rep(server: Server) -> (Duration, Duration, Duration, Duration, usize) {
    let mut workload = boot_server(server, false);
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let mut plan = RewritePlan::new()
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    for feature in features_for(server, &workload.exe) {
        plan = plan.disable(feature);
    }
    let report = dynacut
        .customize(&mut workload.kernel, &workload.pids, &plan)
        .expect("customize succeeds");
    (
        report.timings.checkpoint,
        report.timings.disable_code,
        report.timings.insert_sighandler,
        report.timings.restore,
        report.image_bytes,
    )
}

/// Runs the full experiment.
pub fn run() -> Vec<Fig6Row> {
    [Server::Lighttpd, Server::Nginx, Server::Redis]
        .into_iter()
        .map(|server| {
            let mut checkpoint = Vec::new();
            let mut disable = Vec::new();
            let mut handler = Vec::new();
            let mut restore = Vec::new();
            let mut totals = Vec::new();
            let mut image_bytes = 0;
            for _ in 0..REPETITIONS {
                let (c, d, h, r, bytes) = one_rep(server);
                totals.push(c + d + h + r);
                checkpoint.push(c);
                disable.push(d);
                handler.push(h);
                restore.push(r);
                image_bytes = bytes;
            }
            Fig6Row {
                app: server.module().to_owned(),
                features: features_for(
                    server,
                    &boot_server(server, false).exe,
                )
                .iter()
                .map(|f| f.name.clone())
                .collect(),
                checkpoint: stats(&checkpoint),
                disable_code: stats(&disable),
                insert_sighandler: stats(&handler),
                restore: stats(&restore),
                total: stats(&totals),
                image_bytes,
            }
        })
        .collect()
}

/// Prints the figure as a table.
pub fn print() {
    println!("== Figure 6: feature-removal overhead ({REPETITIONS} reps, mean ± σ) ==\n");
    let rows = run();
    let mut table = crate::report::Table::new(&[
        "app",
        "features",
        "checkpoint",
        "disable w/ int3",
        "insert sighandler",
        "restore",
        "total",
        "image size",
    ]);
    for row in &rows {
        table.row(&[
            row.app.clone(),
            row.features.join("+"),
            format!(
                "{} ±{}",
                crate::report::fmt_duration(row.checkpoint.mean),
                crate::report::fmt_duration(row.checkpoint.stddev)
            ),
            crate::report::fmt_duration(row.disable_code.mean),
            crate::report::fmt_duration(row.insert_sighandler.mean),
            crate::report::fmt_duration(row.restore.mean),
            crate::report::fmt_duration(row.total.mean),
            crate::report::fmt_bytes(row.image_bytes as u64),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper shape: per-app totals are similar (cost ≈ constant in feature count);");
    println!("nginx checkpoints two processes, so its checkpoint phase is the largest.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_removal_costs_have_paper_shape() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        let by_name = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
        let nginx = by_name("nginx");
        let lighttpd = by_name("lighttpd");
        let redis = by_name("redis");
        // Nginx dumps two processes: its checkpoint time and image exceed
        // Lighttpd's (paper: 0.56 s vs 0.274 s driven by checkpointing).
        assert!(nginx.image_bytes > lighttpd.image_bytes);
        assert!(nginx.checkpoint.mean > lighttpd.checkpoint.mean);
        // Redis has the largest single-process image (4.1 MB in paper).
        assert!(redis.image_bytes > lighttpd.image_bytes);
        // Disable-code is cheap relative to checkpoint+restore: the paper
        // attributes the cost to dump/restore, not the byte edit.
        for row in &rows {
            assert!(row.disable_code.mean < row.checkpoint.mean + row.restore.mean);
            assert!(row.total.mean.as_nanos() > 0);
        }
    }
}
