//! Figure 8 (incremental variant): the rewrite freeze window measured in
//! page bytes moved while the guest is frozen — full dumps vs the
//! two-phase incremental pre-dump — over repeated disable/enable cycles
//! against Redis.
//!
//! Downtime is charged to the kernel clock in proportion to the bytes
//! copied inside the freeze ([`freeze_window_ns`]), so the incremental
//! series also shows up as shorter guest-visible stalls.

use crate::report::{fmt_bytes, Table};
use crate::workloads::{boot_server, Server, Workload};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::redis;

/// Disable/enable cycles per series (SET toggled each cycle).
pub const CYCLES: usize = 6;
/// Fixed freeze overhead (signal delivery, register/sigaction/TCP-repair
/// capture) in simulated nanoseconds.
pub const FREEZE_BASE_NS: u64 = 50_000;
/// Modeled copy cost per KiB moved while frozen.
pub const COPY_NS_PER_KIB: u64 = 400;

/// Guest-visible freeze window for a cycle that copied
/// `frozen_page_bytes` under the freeze.
pub fn freeze_window_ns(frozen_page_bytes: usize) -> u64 {
    FREEZE_BASE_NS + (frozen_page_bytes as u64 / 1024) * COPY_NS_PER_KIB
}

/// Per-cycle measurements of one series.
#[derive(Debug, Clone, Copy)]
pub struct CycleStats {
    /// Cycle index.
    pub cycle: usize,
    /// `"disable SET"` or `"re-enable SET"`.
    pub action: &'static str,
    /// Page bytes copied while frozen.
    pub frozen_page_bytes: usize,
    /// Page bytes the pre-dump moved while the guest still ran.
    pub prewritten_page_bytes: usize,
    /// Page bytes this checkpoint occupies in the store (full image for
    /// the full series and the chain root, dirty delta afterwards).
    pub stored_page_bytes: usize,
}

/// Both series of the figure.
#[derive(Debug, Clone)]
pub struct Fig8IncrementalSeries {
    /// Full dump every cycle (the default pipeline).
    pub full: Vec<CycleStats>,
    /// Pre-dump + delta store ([`DynaCut::with_incremental`]).
    pub incremental: Vec<CycleStats>,
}

impl Fig8IncrementalSeries {
    /// Total store footprint of a series in page bytes.
    pub fn total_stored(series: &[CycleStats]) -> usize {
        series.iter().map(|s| s.stored_page_bytes).sum()
    }

    /// Worst freeze window of a series.
    pub fn worst_freeze_ns(series: &[CycleStats]) -> u64 {
        series
            .iter()
            .map(|s| freeze_window_ns(s.frozen_page_bytes))
            .max()
            .unwrap_or(0)
    }
}

fn run_series(incremental: bool) -> Vec<CycleStats> {
    let mut workload = boot_server(Server::Redis, false);
    let mut dynacut = DynaCut::new(workload.registry.clone());
    if incremental {
        dynacut = dynacut.with_incremental();
    }
    let set_feature = |workload: &Workload| {
        Feature::from_function("SET", &workload.exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(&workload.exe, redis::ERROR_HANDLER)
            .unwrap()
    };

    let mut series = Vec::with_capacity(CYCLES);
    for cycle in 0..CYCLES {
        // Client traffic between cycles dirties a handful of heap/stack
        // pages — the residue an incremental checkpoint has to move.
        workload.exercise_redis_workload(12);

        let disable = cycle % 2 == 0;
        let feature = set_feature(&workload);
        let plan = if disable {
            RewritePlan::new().disable(feature)
        } else {
            RewritePlan::new().enable(feature)
        }
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
        let pids = workload.kernel.pids();
        let report = dynacut
            .customize(&mut workload.kernel, &pids, &plan)
            .expect("customize");
        // Charge the modeled freeze window to the guest clock.
        workload
            .kernel
            .advance_clock(freeze_window_ns(report.frozen_page_bytes));

        series.push(CycleStats {
            cycle,
            action: if disable { "disable SET" } else { "re-enable SET" },
            frozen_page_bytes: report.frozen_page_bytes,
            prewritten_page_bytes: report.prewritten_page_bytes,
            stored_page_bytes: report
                .stored_page_bytes
                .unwrap_or(report.frozen_page_bytes),
        });
    }
    series
}

/// Runs both series.
pub fn run() -> Fig8IncrementalSeries {
    Fig8IncrementalSeries {
        full: run_series(false),
        incremental: run_series(true),
    }
}

/// Prints the per-cycle comparison and the store-footprint totals.
pub fn print() {
    println!("== Figure 8 (incremental): freeze-window bytes, full vs pre-dump + deltas ==\n");
    let series = run();
    let mut table = Table::new(&[
        "cycle",
        "action",
        "full: frozen",
        "incr: frozen",
        "incr: pre-copied",
        "full window",
        "incr window",
    ]);
    for (full, incr) in series.full.iter().zip(&series.incremental) {
        table.row(&[
            full.cycle.to_string(),
            full.action.to_string(),
            fmt_bytes(full.frozen_page_bytes as u64),
            fmt_bytes(incr.frozen_page_bytes as u64),
            fmt_bytes(incr.prewritten_page_bytes as u64),
            crate::report::fmt_duration(std::time::Duration::from_nanos(freeze_window_ns(
                full.frozen_page_bytes,
            ))),
            crate::report::fmt_duration(std::time::Duration::from_nanos(freeze_window_ns(
                incr.frozen_page_bytes,
            ))),
        ]);
    }
    print!("{}", table.render());
    let full_stored = Fig8IncrementalSeries::total_stored(&series.full);
    let incr_stored = Fig8IncrementalSeries::total_stored(&series.incremental);
    println!(
        "\nstore footprint over {CYCLES} cycles: full images {} vs chain (1 full + {} deltas) {} ({:.1}x smaller)",
        fmt_bytes(full_stored as u64),
        CYCLES - 1,
        fmt_bytes(incr_stored as u64),
        full_stored as f64 / incr_stored.max(1) as f64,
    );
    println!(
        "worst freeze window: full {} vs incremental {}",
        crate::report::fmt_duration(std::time::Duration::from_nanos(
            Fig8IncrementalSeries::worst_freeze_ns(&series.full)
        )),
        crate::report::fmt_duration(std::time::Duration::from_nanos(
            Fig8IncrementalSeries::worst_freeze_ns(&series.incremental)
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance property of the incremental pipeline: after a small
    /// rewrite, the incremental checkpoint moves strictly fewer page
    /// bytes than a full dump — both inside the freeze window and into
    /// the store.
    #[test]
    fn incremental_moves_strictly_fewer_bytes_than_full() {
        let series = run();
        assert_eq!(series.full.len(), CYCLES);
        assert_eq!(series.incremental.len(), CYCLES);

        for (full, incr) in series.full.iter().zip(&series.incremental) {
            // The full series copies the entire payload under the freeze;
            // the pre-dump leaves at most the dirty residue there.
            assert!(full.frozen_page_bytes > 0, "cycle {}", full.cycle);
            assert!(
                incr.frozen_page_bytes < full.frozen_page_bytes,
                "cycle {}: frozen {} !< {}",
                full.cycle,
                incr.frozen_page_bytes,
                full.frozen_page_bytes
            );
            assert!(incr.prewritten_page_bytes > 0, "cycle {}", full.cycle);
        }
        // Every cycle after the chain root stores a dirty delta, strictly
        // smaller than the full image stored by the default pipeline.
        for (full, incr) in series.full.iter().zip(&series.incremental).skip(1) {
            assert!(
                incr.stored_page_bytes < full.stored_page_bytes,
                "cycle {}: stored {} !< {}",
                full.cycle,
                incr.stored_page_bytes,
                full.stored_page_bytes
            );
        }
        assert!(
            Fig8IncrementalSeries::total_stored(&series.incremental)
                < Fig8IncrementalSeries::total_stored(&series.full)
        );
        assert!(
            Fig8IncrementalSeries::worst_freeze_ns(&series.incremental)
                < Fig8IncrementalSeries::worst_freeze_ns(&series.full)
        );
    }
}
