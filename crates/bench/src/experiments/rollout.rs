//! The rollout experiment: deploy one rewrite across an N-replica Redis
//! fleet the production way — **canary → soak → promote** — with
//! [`DynaCut::rollout`], and measure what shared-image promotion buys:
//!
//! * **O(1 canary cycle + N fast restores)** — the whole fleet pays for
//!   exactly one dump/rewrite/restore (the canary's); every other
//!   replica is retargeted from the interned image, so the journal
//!   shows one `ProcessDumped` no matter the fleet size;
//! * **zero-copy promotion** — every promoted page is a shared frame
//!   out of the content-addressed store, so the promotion wave copies
//!   zero page bytes and the per-replica freeze window stays flat;
//! * **all-or-nothing demotion** — a verifier report during the soak
//!   rolls the canary back through the transaction machinery, and the
//!   fleet's clock-masked state fingerprint round-trips bit-identically.
//!
//! Emits `results/rollout.json` (`dynacut-rollout-v1`), schema-gated by
//! CI: one dump, zero promotion bytes, a journalled promotion, and
//! demotion fingerprint parity.

use crate::report::{fmt_bytes, Table};
use crate::workloads::{boot_fleet, FleetWorkload};
use dynacut::{
    Downtime, DynaCut, EventKind, FaultPolicy, Feature, RewritePlan, RolloutDecision, RolloutPlan,
    RolloutReport, VERIFIER_EVENT_BIT,
};

/// Replicas in the headline rollout.
pub const FLEET_SIZE: usize = 8;

/// Replicas in the demotion round-trip run.
pub const DEMOTE_FLEET_SIZE: usize = 4;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-rollout-v1";

/// Keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "fleet_size",
    "soak_slices",
    "canary_cycle_ns",
    "canary_frozen_page_bytes",
    "process_dumps",
    "canary_promoted",
    "promotion_copied_bytes",
    "max_promoted_window_ns",
    "sum_promoted_window_ns",
    "promoted",
    "demotion_fleet_size",
    "demotion_soak_slices",
    "demotion_verifier_reports",
    "demotion_fingerprints_match",
];

/// One promoted replica group's cost.
#[derive(Debug, Clone)]
pub struct PromotedRow {
    /// First pid of the group (single-pid groups for Redis).
    pub pid: u32,
    /// Freeze-to-commit wall window for this group, nanoseconds.
    pub freeze_window_ns: u64,
    /// Page bytes the promotion physically copied (gated to 0).
    pub copied_bytes: u64,
}

/// The whole figure: one promote run and one demote round-trip.
#[derive(Debug, Clone)]
pub struct RolloutFigure {
    /// Replica count of the promote run.
    pub fleet_size: usize,
    /// Serve slices the canary soaked clean.
    pub soak_slices: u64,
    /// The canary's cycle cost — the only full customize the fleet paid.
    pub canary_cycle_ns: u64,
    /// Page bytes moved inside the canary's freeze window.
    pub canary_frozen_page_bytes: usize,
    /// `ProcessDumped` journal entries during the whole rollout. The
    /// O(1)-cost claim, deterministically: always 1.
    pub process_dumps: usize,
    /// A `CanaryPromoted` event was journalled.
    pub canary_promoted: bool,
    /// Page bytes the whole promotion wave copied (gated to 0).
    pub promotion_copied_bytes: u64,
    /// Per-promoted-group rows, promotion order.
    pub promoted: Vec<PromotedRow>,
    /// Replica count of the demote run.
    pub demotion_fleet_size: usize,
    /// Slices the demote run soaked before the report decided.
    pub demotion_soak_slices: u64,
    /// Verifier reports that triggered the demotion.
    pub demotion_verifier_reports: usize,
    /// The fleet's clock-masked fingerprint after the demotion equals
    /// the pre-attempt snapshot (gated to true).
    pub demotion_fingerprints_match: bool,
}

/// The verifier-policy plan a rollout requires: "misclassify" SETRANGE
/// as undesired, so any SETRANGE during the soak would self-heal and
/// report (the promote run sends none).
fn verify_plan(fleet: &FleetWorkload) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &fleet.exe, "rd_cmd_setrange").unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None)
}

fn rollout_plan() -> RolloutPlan {
    RolloutPlan {
        soak_slices: 4,
        serve_slice_ns: 200_000,
    }
}

/// Boots the fleet, doses it with benign traffic, and rolls the rewrite
/// out. Returns the workload next to the engine's report plus the
/// journal-derived dump count and promotion marker.
pub fn execute(fleet_size: usize) -> (FleetWorkload, RolloutReport, usize, bool) {
    let mut fleet = boot_fleet(fleet_size);
    // Benign traffic dirties a few pages on whichever replicas serve it
    // — the regime the canary's pre-dump and the promotion dedup claim
    // are about. No SETRANGE: the soak must be clean.
    for index in 0..12 {
        let request = match index % 3 {
            0 => format!("SET key{index} v{index}\n"),
            1 => format!("GET key{index}\n"),
            _ => "PING\n".to_owned(),
        };
        let reply = fleet.request(request.as_bytes());
        assert!(!reply.is_empty(), "fleet serves before the rollout");
    }
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let plan = verify_plan(&fleet);
    let groups = fleet.groups.clone();
    let seq0 = fleet.kernel.flight().next_seq();
    let report = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan())
        .expect("rollout");
    let dumps = fleet
        .kernel
        .flight()
        .since(seq0)
        .filter(|e| matches!(e.kind, EventKind::ProcessDumped { .. }))
        .count();
    let promoted_event = fleet
        .kernel
        .flight()
        .since(seq0)
        .any(|e| matches!(e.kind, EventKind::CanaryPromoted { .. }));
    (fleet, report, dumps, promoted_event)
}

/// Runs the demotion round-trip: snapshot the fleet's clock-masked
/// fingerprint, plant a synthetic verifier report, roll out, and check
/// the demotion restored the snapshot. Returns the report and whether
/// the fingerprints matched.
pub fn execute_demotion(fleet_size: usize) -> (RolloutReport, bool) {
    let mut fleet = boot_fleet(fleet_size);
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let plan = verify_plan(&fleet);
    let groups = fleet.groups.clone();
    let pristine = fleet.kernel.state_fingerprint_timeless();
    fleet
        .kernel
        .inject_event(groups[0][0], VERIFIER_EVENT_BIT | 0xBAD);
    let report = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan())
        .expect("a report demotes, it does not error");
    assert_eq!(report.decision, RolloutDecision::Demoted, "soak saw the report");
    let matched = fleet.kernel.state_fingerprint_timeless() == pristine;
    (report, matched)
}

/// Runs both halves of the experiment and shapes the figure.
pub fn run(fleet_size: usize, demote_fleet_size: usize) -> RolloutFigure {
    let (_fleet, report, dumps, promoted_event) = execute(fleet_size);
    let (demotion, matched) = execute_demotion(demote_fleet_size);
    figure(fleet_size, &report, dumps, promoted_event, demote_fleet_size, &demotion, matched)
}

#[allow(clippy::too_many_arguments)]
fn figure(
    fleet_size: usize,
    report: &RolloutReport,
    dumps: usize,
    promoted_event: bool,
    demotion_fleet_size: usize,
    demotion: &RolloutReport,
    fingerprints_match: bool,
) -> RolloutFigure {
    RolloutFigure {
        fleet_size,
        soak_slices: report.soak_slices,
        canary_cycle_ns: report.canary_report.phase_total().as_nanos() as u64,
        canary_frozen_page_bytes: report.canary_report.frozen_page_bytes,
        process_dumps: dumps,
        canary_promoted: promoted_event,
        promotion_copied_bytes: report.promotion_copied_bytes,
        promoted: report
            .promoted
            .iter()
            .map(|replica| PromotedRow {
                pid: replica.pids.first().map_or(0, |pid| pid.0),
                freeze_window_ns: replica.freeze_window.as_nanos() as u64,
                copied_bytes: replica.copied_bytes,
            })
            .collect(),
        demotion_fleet_size,
        demotion_soak_slices: demotion.soak_slices,
        demotion_verifier_reports: demotion.verifier_reports.len(),
        demotion_fingerprints_match: fingerprints_match,
    }
}

/// Serialises the figure as the `dynacut-rollout-v1` JSON document.
pub fn to_json(figure: &RolloutFigure) -> String {
    let promoted: Vec<String> = figure
        .promoted
        .iter()
        .map(|row| {
            format!(
                "    {{\"pid\": {}, \"freeze_window_ns\": {}, \"copied_bytes\": {}}}",
                row.pid, row.freeze_window_ns, row.copied_bytes
            )
        })
        .collect();
    let max_window = figure
        .promoted
        .iter()
        .map(|row| row.freeze_window_ns)
        .max()
        .unwrap_or(0);
    let sum_window: u64 = figure.promoted.iter().map(|row| row.freeze_window_ns).sum();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"fleet_size\": {fleet_size},\n",
            "  \"soak_slices\": {soak},\n",
            "  \"canary_cycle_ns\": {canary_ns},\n",
            "  \"canary_frozen_page_bytes\": {canary_frozen},\n",
            "  \"process_dumps\": {dumps},\n",
            "  \"canary_promoted\": {promoted_event},\n",
            "  \"promotion_copied_bytes\": {copied},\n",
            "  \"max_promoted_window_ns\": {max_window},\n",
            "  \"sum_promoted_window_ns\": {sum_window},\n",
            "  \"promoted\": [\n{promoted}\n  ],\n",
            "  \"demotion_fleet_size\": {demote_size},\n",
            "  \"demotion_soak_slices\": {demote_soak},\n",
            "  \"demotion_verifier_reports\": {demote_reports},\n",
            "  \"demotion_fingerprints_match\": {fingerprints}\n",
            "}}\n"
        ),
        schema = SCHEMA,
        fleet_size = figure.fleet_size,
        soak = figure.soak_slices,
        canary_ns = figure.canary_cycle_ns,
        canary_frozen = figure.canary_frozen_page_bytes,
        dumps = figure.process_dumps,
        promoted_event = figure.canary_promoted,
        copied = figure.promotion_copied_bytes,
        max_window = max_window,
        sum_window = sum_window,
        promoted = promoted.join(",\n"),
        demote_size = figure.demotion_fleet_size,
        demote_soak = figure.demotion_soak_slices,
        demote_reports = figure.demotion_verifier_reports,
        fingerprints = figure.demotion_fingerprints_match,
    )
}

/// Checks the invariants CI relies on: every required key present, one
/// promoted row per non-canary replica, exactly **one** process dump
/// for the whole rollout, a journalled promotion, **zero** promotion
/// page bytes (whole wave and per replica), and demotion fingerprint
/// parity.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &RolloutFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.promoted.len() + 1 != figure.fleet_size {
        return Err(format!(
            "{} promoted rows for a fleet of {}",
            figure.promoted.len(),
            figure.fleet_size
        ));
    }
    if figure.process_dumps != 1 {
        return Err(format!(
            "the fleet paid {} dumps; a rollout pays exactly the canary's",
            figure.process_dumps
        ));
    }
    if !figure.canary_promoted {
        return Err("no CanaryPromoted event journalled".to_owned());
    }
    if figure.promotion_copied_bytes != 0 {
        return Err(format!(
            "promotion copied {} page bytes; shared-image promotion must copy none",
            figure.promotion_copied_bytes
        ));
    }
    for row in &figure.promoted {
        if row.copied_bytes != 0 {
            return Err(format!(
                "pid {} copied {} page bytes during its promotion window",
                row.pid, row.copied_bytes
            ));
        }
    }
    if figure.canary_cycle_ns == 0 {
        return Err("canary cycle measured zero cost".to_owned());
    }
    if figure.demotion_verifier_reports == 0 {
        return Err("demotion run saw no verifier report".to_owned());
    }
    if !figure.demotion_fingerprints_match {
        return Err(
            "demotion did not restore the fleet's clock-masked fingerprint".to_owned(),
        );
    }
    Ok(())
}

/// Prints the rollout tables, writes `results/rollout.json`, and panics
/// if the document violates the schema (the CI gate).
pub fn print() {
    println!(
        "== Rollout: canary → soak → promote over {FLEET_SIZE} Redis replicas, \
         shared-image promotion ==\n"
    );
    let figure = run(FLEET_SIZE, DEMOTE_FLEET_SIZE);
    let mut table = Table::new(&["promoted pid", "freeze window", "page bytes copied"]);
    for row in &figure.promoted {
        table.row(&[
            row.pid.to_string(),
            crate::report::fmt_duration(std::time::Duration::from_nanos(row.freeze_window_ns)),
            fmt_bytes(row.copied_bytes),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ncanary cycle: {:?} ({} moved frozen) — the only dump the fleet paid ({} journalled)",
        std::time::Duration::from_nanos(figure.canary_cycle_ns),
        fmt_bytes(figure.canary_frozen_page_bytes as u64),
        figure.process_dumps,
    );
    println!(
        "promotion: {} replicas, {} page bytes copied, soak {} slices clean",
        figure.promoted.len(),
        figure.promotion_copied_bytes,
        figure.soak_slices,
    );
    println!(
        "demotion round-trip ({} replicas): {} report(s) at slice {}, fingerprint parity: {}",
        figure.demotion_fleet_size,
        figure.demotion_verifier_reports,
        figure.demotion_soak_slices,
        figure.demotion_fingerprints_match,
    );
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("rollout JSON failed schema validation: {violation}");
    }
    let path = "results/rollout.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claims, at a CI-friendly size: one dump for the
    /// whole fleet, zero promotion page bytes, demotion parity — and
    /// the serialized JSON passes its own gate.
    #[test]
    fn rollout_figure_validates_at_small_scale() {
        let figure = run(4, 3);
        assert_eq!(figure.process_dumps, 1, "one canary dump for the fleet");
        assert_eq!(figure.promotion_copied_bytes, 0, "zero-copy promotion");
        assert_eq!(figure.promoted.len(), 3);
        assert!(figure.canary_promoted);
        assert!(figure.demotion_fingerprints_match);
        let json = to_json(&figure);
        validate(&json, &figure).expect("schema gate holds");
        assert!(json.contains("\"schema\": \"dynacut-rollout-v1\""));
    }

    /// A tampered figure fails the gate: every headline claim is
    /// actually checked, not just serialized.
    #[test]
    fn validate_rejects_violations() {
        let mut figure = run(3, 2);
        let json = to_json(&figure);
        validate(&json, &figure).unwrap();
        figure.promotion_copied_bytes = 4096;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("copied"));
        figure.promotion_copied_bytes = 0;
        figure.process_dumps = 3;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("dumps"));
        figure.process_dumps = 1;
        figure.demotion_fingerprints_match = false;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("fingerprint"));
        assert!(validate("{}", &figure).unwrap_err().contains("missing"));
    }
}
