//! Figure 8: Redis server throughput under DynaCut — a GET-loop client,
//! with the `SET` command disabled mid-run and re-enabled later. The
//! throughput dips only during the rewrite window and recovers fully.

use crate::workloads::{boot_server, Server, Workload};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::redis;

/// One simulated "second" of the plotted timeline, in kernel nanoseconds.
/// (The DCVM clock is deterministic; one plotted second is one simulated
/// millisecond so the whole 70-point series stays cheap.)
pub const TICK_NS: u64 = 1_000_000;
/// Timeline length in ticks.
pub const TICKS: usize = 70;
/// Tick at which `SET` is disabled.
pub const DISABLE_AT: usize = 18;
/// Tick at which `SET` is re-enabled.
pub const REENABLE_AT: usize = 48;

/// One timeline sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Tick index (plotted seconds).
    pub tick: usize,
    /// Completed GET requests during the tick.
    pub requests: u64,
    /// Worst per-request latency observed in the tick (sim ns); 0 when no
    /// request completed.
    pub max_latency_ns: u64,
}

/// The two series of the figure.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Throughput with DynaCut applied at [`DISABLE_AT`] / [`REENABLE_AT`].
    pub with_dynacut: Vec<Sample>,
    /// Baseline throughput of an untouched server.
    pub without_dynacut: Vec<Sample>,
}

impl Fig8Series {
    /// Steady-state throughput (mean of the last 10 baseline ticks).
    pub fn steady_state(&self) -> f64 {
        let tail = &self.without_dynacut[TICKS - 10..];
        tail.iter().map(|s| s.requests as f64).sum::<f64>() / tail.len() as f64
    }

    /// Steady-state per-request latency of the baseline (max over the
    /// last 10 ticks).
    pub fn steady_latency_ns(&self) -> u64 {
        self.without_dynacut[TICKS - 10..]
            .iter()
            .map(|s| s.max_latency_ns)
            .max()
            .unwrap_or(0)
    }

    /// The worst latency the customized run saw right after a rewrite
    /// window — the first request to complete absorbs the freeze.
    pub fn rewrite_latency_spike_ns(&self) -> u64 {
        self.with_dynacut[DISABLE_AT..=DISABLE_AT + 1]
            .iter()
            .chain(&self.with_dynacut[REENABLE_AT..=REENABLE_AT + 1])
            .map(|s| s.max_latency_ns)
            .max()
            .unwrap_or(0)
    }
}

fn run_timeline(customize: bool) -> Vec<Sample> {
    let mut workload = boot_server(Server::Redis, false);
    let conn = workload
        .kernel
        .client_connect(redis::PORT)
        .expect("connect");
    // Seed a key for the GET loop.
    workload
        .kernel
        .client_request(conn, b"SET bench val\n", 10_000_000)
        .expect("seed");

    let mut dynacut = DynaCut::new(workload.registry.clone());
    let set_feature = |workload: &Workload| {
        Feature::from_function("SET", &workload.exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(&workload.exe, redis::ERROR_HANDLER)
            .unwrap()
    };

    let mut samples = Vec::with_capacity(TICKS);
    let t0 = workload.kernel.clock_ns();
    for tick in 0..TICKS {
        let deadline = t0 + (tick as u64 + 1) * TICK_NS;
        let mut completed = 0u64;
        let mut max_latency = 0u64;
        if customize && (tick == DISABLE_AT || tick == REENABLE_AT) {
            // A request is already in flight when the rewrite begins: the
            // client's bytes queue in the repaired TCP connection across
            // the freeze window and are answered after restore. Its
            // latency absorbs the whole window — the paper's ≈1 s spike.
            let sent_at = workload.kernel.clock_ns();
            workload
                .kernel
                .client_send(conn, b"GET bench\n")
                .expect("send during freeze");
            let plan = if tick == DISABLE_AT {
                RewritePlan::new()
                    .disable(set_feature(&workload))
                    .with_fault_policy(FaultPolicy::Redirect)
                    .with_downtime(Downtime::Fixed(TICK_NS))
            } else {
                RewritePlan::new()
                    .enable(set_feature(&workload))
                    .with_fault_policy(FaultPolicy::Redirect)
                    .with_downtime(Downtime::Fixed(TICK_NS))
            };
            let pids = workload.kernel.pids();
            dynacut
                .customize(&mut workload.kernel, &pids, &plan)
                .expect("customize");
            // Drain the in-flight reply.
            loop {
                workload.kernel.run_for(5_000);
                let reply = workload.kernel.client_recv(conn).expect("recv");
                if !reply.is_empty() {
                    completed += 1;
                    max_latency = workload.kernel.clock_ns() - sent_at;
                    break;
                }
            }
        }
        // Drive GETs until the tick's deadline passes.
        while workload.kernel.clock_ns() < deadline {
            let budget = deadline - workload.kernel.clock_ns();
            let sent_at = workload.kernel.clock_ns();
            let reply = workload
                .kernel
                .client_request(conn, b"GET bench\n", budget)
                .expect("request");
            if reply.is_empty() {
                break; // tick expired mid-request
            }
            completed += 1;
            max_latency = max_latency.max(workload.kernel.clock_ns() - sent_at);
        }
        samples.push(Sample {
            tick,
            requests: completed,
            max_latency_ns: max_latency,
        });
    }
    samples
}

/// Runs both series.
pub fn run() -> Fig8Series {
    Fig8Series {
        with_dynacut: run_timeline(true),
        without_dynacut: run_timeline(false),
    }
}

/// Prints the timeline as aligned columns plus a sparkline.
pub fn print() {
    println!("== Figure 8: Redis throughput timeline (GET loop) ==\n");
    let series = run();
    println!(
        "disable SET at t={DISABLE_AT}s, re-enable at t={REENABLE_AT}s; steady state ≈ {:.0} req/tick\n",
        series.steady_state()
    );
    println!("t(s)  w/ DynaCut  w/o DynaCut");
    for (with, without) in series.with_dynacut.iter().zip(&series.without_dynacut) {
        let marker = match with.tick {
            t if t == DISABLE_AT => "  <- disable SET",
            t if t == REENABLE_AT => "  <- re-enable SET",
            _ => "",
        };
        println!(
            "{:>4}  {:>10}  {:>11}{}",
            with.tick, with.requests, without.requests, marker
        );
    }
    let peak = series
        .without_dynacut
        .iter()
        .map(|s| s.requests)
        .max()
        .unwrap_or(1)
        .max(1);
    let spark: String = series
        .with_dynacut
        .iter()
        .map(|s| {
            let level = (s.requests * 7 / peak) as usize;
            ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'][level.min(7)]
        })
        .collect();
    println!("\nw/ DynaCut: {spark}");
    println!(
        "latency: steady {} per request; worst during rewrite windows {} (the in-flight\nrequest rides out the freeze over the repaired TCP connection)",
        crate::report::fmt_duration(std::time::Duration::from_nanos(series.steady_latency_ns())),
        crate::report::fmt_duration(std::time::Duration::from_nanos(
            series.rewrite_latency_spike_ns()
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_dips_only_in_rewrite_windows_and_recovers() {
        let series = run();
        let steady = series.steady_state();
        assert!(steady > 10.0, "meaningful baseline throughput: {steady}");

        let with = &series.with_dynacut;
        // Dip at the disable tick: the freeze consumes the tick.
        assert!(
            (with[DISABLE_AT].requests as f64) < 0.5 * steady,
            "disable dip: {} vs steady {steady}",
            with[DISABLE_AT].requests
        );
        assert!(
            (with[REENABLE_AT].requests as f64) < 0.5 * steady,
            "re-enable dip"
        );
        // Full recovery between and after the windows (no steady-state
        // overhead — the paper's key claim for process rewriting vs DBI).
        for probe in [DISABLE_AT + 3, REENABLE_AT - 3, REENABLE_AT + 3, TICKS - 1] {
            let got = with[probe].requests as f64;
            assert!(
                got > 0.8 * steady,
                "tick {probe}: {got} should match steady {steady}"
            );
        }
        // The baseline never dips.
        for sample in &series.without_dynacut[1..] {
            assert!((sample.requests as f64) > 0.8 * steady);
        }
        // Latency: the in-flight request during each rewrite window
        // absorbs roughly the whole freeze (≥ half a tick), while steady
        // per-request latency is orders of magnitude smaller.
        let steady_latency = series.steady_latency_ns();
        let spike = series.rewrite_latency_spike_ns();
        assert!(spike >= TICK_NS / 2, "spike {spike} covers the freeze");
        assert!(
            spike > 20 * steady_latency.max(1),
            "spike {spike} ≫ steady {steady_latency}"
        );
    }
}
