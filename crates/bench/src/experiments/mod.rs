//! One module per paper artefact. Each exposes a `run()` returning
//! structured results and a `print()` that renders the paper-style table
//! or series to stdout.

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig8_incremental;
pub mod fig9;
pub mod fleet;
pub mod interp;
pub mod plt;
pub mod restore;
pub mod rollout;
pub mod sched;
pub mod table1;
