//! Figure 4: diff-based feature-related basic block discovery — the
//! `tracediff.py` output for the Redis analogue, annotated with the
//! functions the discovered blocks belong to.

use crate::workloads::{boot_server, Server};
use dynacut_analysis::{annotate_functions, feature_blocks, tracediff_report, CovGraph, FunctionCoverage};
use dynacut_apps::redis;

/// Results of the discovery run.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The Figure-4-style per-block report.
    pub report: String,
    /// Per-function aggregation of the discovered feature blocks.
    pub functions: Vec<FunctionCoverage>,
    /// Blocks discovered in the application module.
    pub app_blocks: usize,
    /// Blocks the diff found in libc before filtering (the paper filters
    /// library blocks out).
    pub libc_blocks_filtered: usize,
}

/// Runs the discovery: wanted = GET/PING traffic, undesired = SET
/// traffic; the diff pinpoints the `SET` handler.
pub fn run() -> Fig4Result {
    let mut workload = boot_server(Server::Redis, true);
    let tracer = workload.tracer.clone().expect("tracer installed");
    tracer.nudge(); // discard initialization coverage

    // Wanted requests.
    for request in [&b"GET k\n"[..], b"PING\n", b"GET other\n", b"DEL k\n"] {
        let reply = workload.request(request);
        assert!(!reply.is_empty());
    }
    let wanted = CovGraph::from_log(&tracer.nudge());

    // Undesired requests (the SET feature).
    for request in [&b"SET k v\n"[..], b"SET k2 v2\n"] {
        let reply = workload.request(request);
        assert!(!reply.is_empty());
    }
    let undesired = CovGraph::from_log(&tracer.snapshot());

    let raw_diff = feature_blocks(&undesired, &wanted);
    let libc_blocks_filtered = raw_diff.module_blocks("libc").len();
    let app_diff = raw_diff.retain_modules(&[redis::MODULE]);

    Fig4Result {
        report: tracediff_report(&app_diff, &workload.exe, redis::MODULE),
        functions: annotate_functions(&app_diff, &workload.exe, redis::MODULE),
        app_blocks: app_diff.len(),
        libc_blocks_filtered,
    }
}

/// Prints the figure.
pub fn print() {
    println!("== Figure 4: diff-based feature-related block discovery (Redis SET) ==\n");
    let result = run();
    print!("{}", result.report);
    println!(
        "\n({} libc blocks appeared in the raw diff and were filtered out,",
        result.libc_blocks_filtered
    );
    println!("as tracediff.py filters blocks that appear in program libraries)\n");
    println!("per-function aggregation:");
    for fc in &result.functions {
        println!(
            "  {:<24} {:>2}/{:<2} blocks ({:.0}%)",
            fc.function,
            fc.covered_blocks,
            fc.total_blocks,
            100.0 * fc.fraction()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_pinpoints_the_set_handler() {
        let result = run();
        assert!(result.app_blocks > 0, "feature blocks discovered");
        // The SET handler dominates the discovery.
        let set_fn = result
            .functions
            .iter()
            .find(|fc| fc.function == "rd_cmd_set")
            .expect("rd_cmd_set discovered");
        assert!(set_fn.covered_blocks > 0);
        // And nothing from the wanted features leaked in.
        for forbidden in ["rd_cmd_get", "rd_cmd_ping", "rd_cmd_del"] {
            assert!(
                !result.functions.iter().any(|fc| fc.function == forbidden),
                "{forbidden} must not appear in the undesired diff"
            );
        }
        // The report names the handler.
        assert!(result.report.contains("rd_cmd_set"));
    }
}
