//! The interpreter experiment: guest throughput (MIPS) under three
//! dispatch modes — no cache, the PR 5 decoded-block cache, and the
//! superblock-chaining cache (DESIGN §11) — on the Redis and Nginx
//! workloads.
//!
//! Each server is booted three times and driven with **identical**
//! traffic: a steady-state request batch timed on the host clock, then
//! a full customize cycle whose freshly planted traps must fire on the
//! very next request, then a post-cycle warm batch. The superblocked
//! run must clear [`MIN_SPEEDUP`]× the uncached run and
//! [`MIN_SUPERBLOCK_SPEEDUP`]× the plain-cache run in steady state, the
//! customize commit must *carry* the cache (version swaps observed, not
//! a cold re-decode storm), and all three kernels must land on the same
//! `state_fingerprint()` with the same retirement count — the cache is
//! a pure interpreter accelerator, invisible to the guest.
//!
//! Emits `results/interp.json` (`dynacut-interp-v2`), schema-gated by
//! CI: MIPS > 0, superblocks built, version swaps after the cycle,
//! warm-hit ratio positive, fingerprints bit-identical.

use crate::report::Table;
use crate::workloads::{boot_server, Server, Workload};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{nginx, redis};
use std::time::Instant;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-interp-v2";

/// Steady-state requests per measured batch in the headline run.
pub const STEADY_REQUESTS: usize = 600;

/// The acceptance floor on the superblocked-over-uncached speedup.
pub const MIN_SPEEDUP: f64 = 2.0;

/// The acceptance floor on the superblocked-over-plain-cache speedup.
pub const MIN_SUPERBLOCK_SPEEDUP: f64 = 1.5;

/// Timed trials per pass; the reported MIPS is the best trial, which
/// filters host scheduling noise out of the speedup ratios.
pub const TRIALS: usize = 3;

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "steady_requests",
    "servers",
    "server",
    "uncached_mips",
    "cached_mips",
    "superblocked_mips",
    "speedup",
    "superblock_speedup",
    "insns_measured",
    "cache_hits",
    "cache_misses",
    "cache_invalidations",
    "superblocks",
    "version_swaps",
    "warm_hits",
    "warm_misses",
    "warm_hit_ratio",
    "fingerprints_match",
];

/// How a pass dispatches guest instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Straight decode-and-execute, no cache (the reference).
    Uncached,
    /// The PR 5 decoded-block cache, superblock chaining disabled.
    Cached,
    /// The full pipeline: block cache plus hot-path superblocks.
    Superblocked,
}

/// One boot-drive-customize-warm pass over a server under one [`Mode`].
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// Guest instructions retired per host second, in millions.
    pub mips: f64,
    /// Instructions retired inside the timed batch.
    pub insns_measured: u64,
    /// Host wall time of the timed batch.
    pub wall_ns: u64,
    /// Block-cache hit count over the whole run.
    pub hits: u64,
    /// Block-cache miss count over the whole run.
    pub misses: u64,
    /// Block-cache invalidation count over the whole run.
    pub invalidations: u64,
    /// Superblocks promoted from hot entries over the whole run.
    pub superblocks: u64,
    /// Entries re-keyed to the new rewrite epoch after the customize
    /// commit (the carried cache coming back without a re-decode).
    pub version_swaps: u64,
    /// Cache hits inside the post-cycle warm batch.
    pub warm_hits: u64,
    /// Cache misses inside the post-cycle warm batch.
    pub warm_misses: u64,
    /// `state_fingerprint()` after the cycle, traps and warm batch.
    pub fingerprint: String,
}

impl ServerRun {
    /// Hit fraction of the post-cycle warm batch — how much of the
    /// carried cache survived the customize commit.
    pub fn warm_hit_ratio(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

/// The three passes over one server.
#[derive(Debug, Clone)]
pub struct ServerRow {
    /// Server module name ("redis" / "nginx").
    pub server: &'static str,
    /// The reference pass with the cache disabled.
    pub uncached: ServerRun,
    /// The plain decoded-block cache, superblocks off.
    pub cached: ServerRun,
    /// The full superblock-chaining pipeline.
    pub superblocked: ServerRun,
}

impl ServerRow {
    /// Steady-state MIPS ratio, superblocked over uncached.
    pub fn speedup(&self) -> f64 {
        self.superblocked.mips / self.uncached.mips
    }

    /// Steady-state MIPS ratio, superblocked over the plain cache —
    /// what the chaining itself buys.
    pub fn superblock_speedup(&self) -> f64 {
        self.superblocked.mips / self.cached.mips
    }

    /// Whether all three passes ended on the same kernel fingerprint.
    pub fn fingerprints_match(&self) -> bool {
        self.cached.fingerprint == self.uncached.fingerprint
            && self.superblocked.fingerprint == self.uncached.fingerprint
    }
}

/// The whole figure: one row per server.
#[derive(Debug, Clone)]
pub struct InterpFigure {
    /// Steady-state batch size the rows were measured with.
    pub steady_requests: usize,
    /// Per-server measurements.
    pub rows: Vec<ServerRow>,
}

fn drive(workload: &mut Workload, server: Server, requests: usize) {
    match server {
        Server::Redis => workload.exercise_redis_workload(requests),
        _ => workload.exercise_http_read_workload(requests),
    }
}

/// Runs the post-measurement customize cycle — disable one hot command
/// handler with the redirect policy — and pushes traffic through the
/// planted traps so the run exercises rewrite-precise invalidation and
/// the version-swap path (the commit carries the warm cache under a
/// bumped epoch instead of flushing it).
fn customize_and_trap(workload: &mut Workload, server: Server) {
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let (handler, error_handler) = match server {
        Server::Redis => ("rd_cmd_set", redis::ERROR_HANDLER),
        _ => ("ngx_put_handler", nginx::ERROR_HANDLER),
    };
    let feature = Feature::from_function(handler, &workload.exe, handler)
        .expect("handler exists")
        .redirect_to_function(&workload.exe, error_handler)
        .expect("error handler exists");
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = workload.pids.clone();
    dynacut
        .customize(&mut workload.kernel, &pids, &plan)
        .expect("customize");
    for round in 0..4 {
        match server {
            Server::Redis => {
                let reply = workload.request(format!("SET key{round} v\n").as_bytes());
                assert_eq!(reply, redis::ERR_BLOCKED, "planted trap redirects SET");
                let reply = workload.request(b"PING\n");
                assert!(!reply.is_empty(), "server alive after trap");
            }
            _ => {
                let reply = workload.request(format!("PUT /t{round} data").as_bytes());
                assert_eq!(reply, nginx::RESP_403, "planted trap redirects PUT");
                let reply = workload.request(format!("GET /t{round}\n").as_bytes());
                assert_eq!(reply, nginx::RESP_200, "server alive after trap");
            }
        }
    }
}

/// Post-cycle warm traffic that avoids the disabled handler, so its
/// hit ratio measures how much of the carried cache is still live.
fn drive_warm(workload: &mut Workload, server: Server, requests: usize) {
    for index in 0..requests {
        let reply = match server {
            Server::Redis => {
                if index % 2 == 0 {
                    workload.request(format!("GET key{}\n", index % 8).as_bytes())
                } else {
                    workload.request(b"PING\n")
                }
            }
            _ => workload.request(format!("GET /warm{index}\n").as_bytes()),
        };
        assert!(!reply.is_empty(), "server alive in the warm batch");
    }
}

/// Boots `server` under `mode`, measures a steady-state batch, runs the
/// customize cycle with trap traffic, measures the post-cycle warm
/// batch, and fingerprints the kernel.
fn measure(server: Server, mode: Mode, requests: usize) -> ServerRun {
    let mut workload = boot_server(server, false);
    match mode {
        Mode::Uncached => workload.kernel.set_block_cache_enabled(false),
        Mode::Cached => workload.kernel.set_superblocks_enabled(false),
        Mode::Superblocked => {}
    }
    let counter = |workload: &Workload, name: &str| workload.kernel.flight().metrics().counter(name);
    // Boot ran with the default (fully enabled) cache either way; count
    // cache activity only from this point, once the toggles are in
    // effect.
    let hits_base = counter(&workload, "block_cache.hits");
    let misses_base = counter(&workload, "block_cache.misses");
    let invals_base = counter(&workload, "block_cache.invalidations");
    let supers_base = counter(&workload, "block_cache.superblocks");
    // Warmup: populate page tables, listener state and (if enabled) the
    // block cache, so the timed batches are steady state.
    drive(&mut workload, server, requests / 4 + 8);
    // Guest execution is deterministic; host wall time is not. Take the
    // best of [`TRIALS`] identical batches so the MIPS ratios compare
    // interpreter dispatch modes, not host scheduling jitter.
    let mut mips = 0.0_f64;
    let mut insns_measured = 0;
    let mut wall_ns = 0;
    for _ in 0..TRIALS {
        let insns_before = counter(&workload, "insns_retired");
        let start = Instant::now();
        drive(&mut workload, server, requests);
        let trial_wall = (start.elapsed().as_nanos() as u64).max(1);
        let trial_insns = counter(&workload, "insns_retired") - insns_before;
        mips = mips.max(trial_insns as f64 * 1_000.0 / trial_wall as f64);
        insns_measured += trial_insns;
        wall_ns += trial_wall;
    }
    // Version swaps count from the commit onwards: the carried cache
    // re-keys on its first post-cycle dispatch, which starts inside the
    // trap traffic.
    let swaps_base = counter(&workload, "block_cache.version_swaps");
    customize_and_trap(&mut workload, server);
    let warm_hits_base = counter(&workload, "block_cache.hits");
    let warm_misses_base = counter(&workload, "block_cache.misses");
    drive_warm(&mut workload, server, requests / 8 + 8);
    let metrics = workload.kernel.flight().metrics();
    ServerRun {
        mips,
        insns_measured,
        wall_ns,
        hits: metrics.counter("block_cache.hits") - hits_base,
        misses: metrics.counter("block_cache.misses") - misses_base,
        invalidations: metrics.counter("block_cache.invalidations") - invals_base,
        superblocks: metrics.counter("block_cache.superblocks") - supers_base,
        version_swaps: metrics.counter("block_cache.version_swaps") - swaps_base,
        warm_hits: metrics.counter("block_cache.hits") - warm_hits_base,
        warm_misses: metrics.counter("block_cache.misses") - warm_misses_base,
        fingerprint: workload.kernel.state_fingerprint(),
    }
}

/// Measures one server under all three modes with identical traffic.
pub fn run_server(server: Server, requests: usize) -> ServerRow {
    ServerRow {
        server: server.module(),
        uncached: measure(server, Mode::Uncached, requests),
        cached: measure(server, Mode::Cached, requests),
        superblocked: measure(server, Mode::Superblocked, requests),
    }
}

/// Runs the whole figure: Redis and Nginx, three modes each.
pub fn run(requests: usize) -> InterpFigure {
    InterpFigure {
        steady_requests: requests,
        rows: vec![
            run_server(Server::Redis, requests),
            run_server(Server::Nginx, requests),
        ],
    }
}

/// Serialises the figure as the `dynacut-interp-v2` JSON document.
pub fn to_json(figure: &InterpFigure) -> String {
    let rows: Vec<String> = figure
        .rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"server\": \"{server}\",\n",
                    "      \"uncached_mips\": {unc:.4},\n",
                    "      \"cached_mips\": {cac:.4},\n",
                    "      \"superblocked_mips\": {sup:.4},\n",
                    "      \"speedup\": {speedup:.4},\n",
                    "      \"superblock_speedup\": {sb_speedup:.4},\n",
                    "      \"insns_measured\": {insns},\n",
                    "      \"uncached_wall_ns\": {unc_wall},\n",
                    "      \"cached_wall_ns\": {cac_wall},\n",
                    "      \"superblocked_wall_ns\": {sup_wall},\n",
                    "      \"cache_hits\": {hits},\n",
                    "      \"cache_misses\": {misses},\n",
                    "      \"cache_invalidations\": {invals},\n",
                    "      \"superblocks\": {supers},\n",
                    "      \"version_swaps\": {swaps},\n",
                    "      \"warm_hits\": {warm_hits},\n",
                    "      \"warm_misses\": {warm_misses},\n",
                    "      \"warm_hit_ratio\": {warm_ratio:.4},\n",
                    "      \"fingerprints_match\": {fp}\n",
                    "    }}"
                ),
                server = row.server,
                unc = row.uncached.mips,
                cac = row.cached.mips,
                sup = row.superblocked.mips,
                speedup = row.speedup(),
                sb_speedup = row.superblock_speedup(),
                insns = row.superblocked.insns_measured,
                unc_wall = row.uncached.wall_ns,
                cac_wall = row.cached.wall_ns,
                sup_wall = row.superblocked.wall_ns,
                hits = row.superblocked.hits,
                misses = row.superblocked.misses,
                invals = row.superblocked.invalidations,
                supers = row.superblocked.superblocks,
                swaps = row.superblocked.version_swaps,
                warm_hits = row.superblocked.warm_hits,
                warm_misses = row.superblocked.warm_misses,
                warm_ratio = row.superblocked.warm_hit_ratio(),
                fp = row.fingerprints_match(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"steady_requests\": {requests},\n",
            "  \"servers\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        schema = SCHEMA,
        requests = figure.steady_requests,
        rows = rows.join(",\n"),
    )
}

/// Checks the invariants CI relies on: every required key appears, the
/// cache really ran (hits, superblocks), throughput is positive and
/// monotone across the three modes' ordering guarantees, all passes
/// retired the **same** instruction count over the timed batch and
/// ended bit-identical, the customize commit carried the cache (version
/// swaps observed, warm batch hits), and the headline speedups clear
/// [`MIN_SPEEDUP`] and [`MIN_SUPERBLOCK_SPEEDUP`].
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &InterpFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.rows.is_empty() {
        return Err("no server rows".to_owned());
    }
    for row in &figure.rows {
        let server = row.server;
        if row.uncached.mips <= 0.0 || row.cached.mips <= 0.0 || row.superblocked.mips <= 0.0 {
            return Err(format!("{server}: non-positive MIPS"));
        }
        if row.superblocked.mips < row.uncached.mips {
            return Err(format!(
                "{server}: superblocked {:.2} MIPS slower than uncached {:.2}",
                row.superblocked.mips, row.uncached.mips
            ));
        }
        if row.speedup() < MIN_SPEEDUP {
            return Err(format!(
                "{server}: speedup {:.2}x below the {MIN_SPEEDUP}x floor",
                row.speedup()
            ));
        }
        if row.superblock_speedup() < MIN_SUPERBLOCK_SPEEDUP {
            return Err(format!(
                "{server}: superblock speedup {:.2}x below the \
                 {MIN_SUPERBLOCK_SPEEDUP}x floor",
                row.superblock_speedup()
            ));
        }
        if row.cached.insns_measured != row.uncached.insns_measured
            || row.superblocked.insns_measured != row.uncached.insns_measured
        {
            return Err(format!(
                "{server}: retirement drift across modes ({} / {} / {})",
                row.uncached.insns_measured,
                row.cached.insns_measured,
                row.superblocked.insns_measured
            ));
        }
        if row.superblocked.hits == 0 || row.cached.hits == 0 {
            return Err(format!("{server}: cache never hit"));
        }
        if row.uncached.hits != 0 {
            return Err(format!("{server}: disabled cache reported hits"));
        }
        if row.superblocked.superblocks == 0 {
            return Err(format!("{server}: no superblocks were promoted"));
        }
        if row.cached.superblocks != 0 {
            return Err(format!(
                "{server}: superblocks promoted with chaining disabled"
            ));
        }
        if row.superblocked.version_swaps == 0 {
            return Err(format!(
                "{server}: customize commit did not version-swap the cache"
            ));
        }
        if row.superblocked.warm_hit_ratio() <= 0.0 {
            return Err(format!(
                "{server}: post-cycle warm batch never hit the carried cache"
            ));
        }
        if !row.fingerprints_match() {
            return Err(format!("{server}: fingerprints diverge"));
        }
    }
    Ok(())
}

/// Prints the MIPS table, writes `results/interp.json`, and panics if
/// the document violates the schema (the CI gate).
pub fn print() {
    println!(
        "== Interp: dispatch modes, guest MIPS uncached/cached/superblocked (steady state) ==\n"
    );
    let figure = run(STEADY_REQUESTS);
    let mut table = Table::new(&[
        "server",
        "uncached MIPS",
        "cached MIPS",
        "superblocked MIPS",
        "speedup",
        "sb speedup",
        "superblocks",
        "version swaps",
        "warm hit %",
        "bit-identical",
    ]);
    for row in &figure.rows {
        table.row(&[
            row.server.to_owned(),
            format!("{:.2}", row.uncached.mips),
            format!("{:.2}", row.cached.mips),
            format!("{:.2}", row.superblocked.mips),
            format!("{:.2}x", row.speedup()),
            format!("{:.2}x", row.superblock_speedup()),
            row.superblocked.superblocks.to_string(),
            row.superblocked.version_swaps.to_string(),
            format!("{:.1}", row.superblocked.warm_hit_ratio() * 100.0),
            row.fingerprints_match().to_string(),
        ]);
    }
    print!("{}", table.render());
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("interp JSON failed schema validation: {violation}");
    }
    let path = "results/interp.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_row(speedup: f64) -> ServerRow {
        let base = ServerRun {
            mips: 10.0,
            insns_measured: 1_000,
            wall_ns: 100_000,
            hits: 0,
            misses: 40,
            invalidations: 1,
            superblocks: 0,
            version_swaps: 0,
            warm_hits: 0,
            warm_misses: 10,
            fingerprint: "fp".to_owned(),
        };
        ServerRow {
            server: "redis",
            uncached: base.clone(),
            cached: ServerRun {
                mips: 10.0 * speedup / 2.0,
                hits: 400,
                version_swaps: 3,
                warm_hits: 50,
                ..base.clone()
            },
            superblocked: ServerRun {
                mips: 10.0 * speedup,
                hits: 500,
                superblocks: 7,
                version_swaps: 5,
                warm_hits: 80,
                warm_misses: 4,
                ..base
            },
        }
    }

    #[test]
    fn schema_is_valid_and_tampering_is_caught() {
        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        let json = to_json(&figure);
        validate(&json, &figure).expect("schema valid");

        figure.rows[0].superblocked.mips = figure.rows[0].uncached.mips * 1.5;
        assert!(
            validate(&to_json(&figure), &figure)
                .unwrap_err()
                .contains("floor"),
            "sub-2x headline speedup is rejected"
        );

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].cached.mips = figure.rows[0].superblocked.mips / 1.1;
        assert!(
            validate(&to_json(&figure), &figure)
                .unwrap_err()
                .contains("superblock speedup"),
            "sub-1.5x chaining speedup is rejected"
        );

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].superblocked.fingerprint = "other".to_owned();
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("fingerprints"));

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].superblocked.insns_measured += 1;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("drift"));

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].superblocked.superblocks = 0;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("superblocks"));

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].superblocked.version_swaps = 0;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("version-swap"));

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(4.0)],
        };
        figure.rows[0].superblocked.warm_hits = 0;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("warm batch"));
    }

    /// A small real pass: identical retirement, matching fingerprints,
    /// live cache, promoted superblocks and a version-swapped commit.
    /// (The speedup floors are asserted by the release-mode `figures
    /// interp` run in CI, not in debug unit tests.)
    #[test]
    fn small_redis_pass_is_bit_identical_with_a_live_cache() {
        let row = run_server(Server::Redis, 40);
        assert!(row.fingerprints_match(), "fingerprints diverge");
        assert_eq!(row.cached.insns_measured, row.uncached.insns_measured);
        assert_eq!(row.superblocked.insns_measured, row.uncached.insns_measured);
        assert!(row.cached.hits > 0, "plain cache never hit");
        assert!(row.superblocked.hits > 0, "superblocked cache never hit");
        assert_eq!(row.uncached.hits, 0);
        assert_eq!(row.cached.superblocks, 0, "chaining was disabled");
        assert!(row.superblocked.superblocks > 0, "no superblocks promoted");
        assert!(
            row.superblocked.version_swaps > 0,
            "commit flushed instead of version-swapping"
        );
        assert!(
            row.superblocked.warm_hit_ratio() > 0.0,
            "post-cycle warm batch never hit"
        );
        assert!(row.superblocked.mips > 0.0 && row.uncached.mips > 0.0);
    }
}
