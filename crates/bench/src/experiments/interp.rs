//! The interpreter experiment: guest throughput (MIPS) with the
//! decoded-block translation cache off vs on (DESIGN §11), on the Redis
//! and Nginx workloads.
//!
//! Each server is booted twice and driven with **identical** traffic —
//! a steady-state request batch timed on the host clock, then a full
//! customize cycle whose freshly planted traps must fire on the very
//! next request. The cached run must be at least [`MIN_SPEEDUP`]× the
//! uncached run in steady state, and the two kernels must land on the
//! same `state_fingerprint()` with the same retirement count — the
//! cache is a pure interpreter accelerator, invisible to the guest.
//!
//! Emits `results/interp.json` (`dynacut-interp-v1`), schema-gated by
//! CI: MIPS > 0, cached ≥ uncached, fingerprints bit-identical.

use crate::report::Table;
use crate::workloads::{boot_server, Server, Workload};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{nginx, redis};
use std::time::Instant;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-interp-v1";

/// Steady-state requests per measured batch in the headline run.
pub const STEADY_REQUESTS: usize = 600;

/// The acceptance floor on the steady-state speedup.
pub const MIN_SPEEDUP: f64 = 2.0;

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "steady_requests",
    "servers",
    "server",
    "uncached_mips",
    "cached_mips",
    "speedup",
    "insns_measured",
    "cache_hits",
    "cache_misses",
    "cache_invalidations",
    "fingerprints_match",
];

/// One boot-drive-customize pass over a server, cache on or off.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// Guest instructions retired per host second, in millions.
    pub mips: f64,
    /// Instructions retired inside the timed batch.
    pub insns_measured: u64,
    /// Host wall time of the timed batch.
    pub wall_ns: u64,
    /// Block-cache hit count over the whole run.
    pub hits: u64,
    /// Block-cache miss count over the whole run.
    pub misses: u64,
    /// Block-cache invalidation count over the whole run.
    pub invalidations: u64,
    /// `state_fingerprint()` after the customize cycle and trap traffic.
    pub fingerprint: String,
}

/// Cached and uncached passes over one server.
#[derive(Debug, Clone)]
pub struct ServerRow {
    /// Server module name ("redis" / "nginx").
    pub server: &'static str,
    /// The reference pass with the cache disabled.
    pub uncached: ServerRun,
    /// The accelerated pass with the cache enabled.
    pub cached: ServerRun,
}

impl ServerRow {
    /// Steady-state MIPS ratio, cached over uncached.
    pub fn speedup(&self) -> f64 {
        self.cached.mips / self.uncached.mips
    }

    /// Whether the two passes ended on the same kernel fingerprint.
    pub fn fingerprints_match(&self) -> bool {
        self.cached.fingerprint == self.uncached.fingerprint
    }
}

/// The whole figure: one row per server.
#[derive(Debug, Clone)]
pub struct InterpFigure {
    /// Steady-state batch size the rows were measured with.
    pub steady_requests: usize,
    /// Per-server measurements.
    pub rows: Vec<ServerRow>,
}

fn drive(workload: &mut Workload, server: Server, requests: usize) {
    match server {
        Server::Redis => workload.exercise_redis_workload(requests),
        _ => workload.exercise_http_read_workload(requests),
    }
}

/// Runs the post-measurement customize cycle — disable one hot command
/// handler with the redirect policy — and pushes traffic through the
/// planted traps so the run exercises rewrite-precise invalidation.
fn customize_and_trap(workload: &mut Workload, server: Server) {
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let (handler, error_handler) = match server {
        Server::Redis => ("rd_cmd_set", redis::ERROR_HANDLER),
        _ => ("ngx_put_handler", nginx::ERROR_HANDLER),
    };
    let feature = Feature::from_function(handler, &workload.exe, handler)
        .expect("handler exists")
        .redirect_to_function(&workload.exe, error_handler)
        .expect("error handler exists");
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = workload.pids.clone();
    dynacut
        .customize(&mut workload.kernel, &pids, &plan)
        .expect("customize");
    for round in 0..4 {
        match server {
            Server::Redis => {
                let reply = workload.request(format!("SET key{round} v\n").as_bytes());
                assert_eq!(reply, redis::ERR_BLOCKED, "planted trap redirects SET");
                let reply = workload.request(b"PING\n");
                assert!(!reply.is_empty(), "server alive after trap");
            }
            _ => {
                let reply = workload.request(format!("PUT /t{round} data").as_bytes());
                assert_eq!(reply, nginx::RESP_403, "planted trap redirects PUT");
                let reply = workload.request(format!("GET /t{round}\n").as_bytes());
                assert_eq!(reply, nginx::RESP_200, "server alive after trap");
            }
        }
    }
}

/// Boots `server`, measures a steady-state batch, then runs the
/// customize cycle with trap traffic and fingerprints the kernel.
fn measure(server: Server, cache_enabled: bool, requests: usize) -> ServerRun {
    let mut workload = boot_server(server, false);
    workload.kernel.set_block_cache_enabled(cache_enabled);
    // Boot ran with the default (enabled) cache either way; count cache
    // activity only from this point, once the toggle is in effect.
    let hits_base = workload.kernel.flight().metrics().counter("block_cache.hits");
    let misses_base = workload.kernel.flight().metrics().counter("block_cache.misses");
    let invals_base = workload
        .kernel
        .flight()
        .metrics()
        .counter("block_cache.invalidations");
    // Warmup: populate page tables, listener state and (if enabled) the
    // block cache, so the timed batch is steady state.
    drive(&mut workload, server, requests / 4 + 8);
    let insns_before = workload.kernel.flight().metrics().counter("insns_retired");
    let start = Instant::now();
    drive(&mut workload, server, requests);
    let wall_ns = (start.elapsed().as_nanos() as u64).max(1);
    let insns_measured = workload.kernel.flight().metrics().counter("insns_retired") - insns_before;
    customize_and_trap(&mut workload, server);
    let metrics = workload.kernel.flight().metrics();
    ServerRun {
        mips: insns_measured as f64 * 1_000.0 / wall_ns as f64,
        insns_measured,
        wall_ns,
        hits: metrics.counter("block_cache.hits") - hits_base,
        misses: metrics.counter("block_cache.misses") - misses_base,
        invalidations: metrics.counter("block_cache.invalidations") - invals_base,
        fingerprint: workload.kernel.state_fingerprint(),
    }
}

/// Measures one server cache-off then cache-on with identical traffic.
pub fn run_server(server: Server, requests: usize) -> ServerRow {
    ServerRow {
        server: server.module(),
        uncached: measure(server, false, requests),
        cached: measure(server, true, requests),
    }
}

/// Runs the whole figure: Redis and Nginx, off/on.
pub fn run(requests: usize) -> InterpFigure {
    InterpFigure {
        steady_requests: requests,
        rows: vec![
            run_server(Server::Redis, requests),
            run_server(Server::Nginx, requests),
        ],
    }
}

/// Serialises the figure as the `dynacut-interp-v1` JSON document.
pub fn to_json(figure: &InterpFigure) -> String {
    let rows: Vec<String> = figure
        .rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"server\": \"{server}\",\n",
                    "      \"uncached_mips\": {unc:.4},\n",
                    "      \"cached_mips\": {cac:.4},\n",
                    "      \"speedup\": {speedup:.4},\n",
                    "      \"insns_measured\": {insns},\n",
                    "      \"uncached_wall_ns\": {unc_wall},\n",
                    "      \"cached_wall_ns\": {cac_wall},\n",
                    "      \"cache_hits\": {hits},\n",
                    "      \"cache_misses\": {misses},\n",
                    "      \"cache_invalidations\": {invals},\n",
                    "      \"fingerprints_match\": {fp}\n",
                    "    }}"
                ),
                server = row.server,
                unc = row.uncached.mips,
                cac = row.cached.mips,
                speedup = row.speedup(),
                insns = row.cached.insns_measured,
                unc_wall = row.uncached.wall_ns,
                cac_wall = row.cached.wall_ns,
                hits = row.cached.hits,
                misses = row.cached.misses,
                invals = row.cached.invalidations,
                fp = row.fingerprints_match(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"steady_requests\": {requests},\n",
            "  \"servers\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        schema = SCHEMA,
        requests = figure.steady_requests,
        rows = rows.join(",\n"),
    )
}

/// Checks the invariants CI relies on: every required key appears, the
/// cache really ran (hits > 0), throughput is positive and no slower
/// than the reference, the two passes retired the **same** instruction
/// count over the timed batch and ended bit-identical, and the headline
/// speedup clears [`MIN_SPEEDUP`].
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &InterpFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.rows.is_empty() {
        return Err("no server rows".to_owned());
    }
    for row in &figure.rows {
        let server = row.server;
        if row.uncached.mips <= 0.0 || row.cached.mips <= 0.0 {
            return Err(format!("{server}: non-positive MIPS"));
        }
        if row.cached.mips < row.uncached.mips {
            return Err(format!(
                "{server}: cached {:.2} MIPS slower than uncached {:.2}",
                row.cached.mips, row.uncached.mips
            ));
        }
        if row.speedup() < MIN_SPEEDUP {
            return Err(format!(
                "{server}: speedup {:.2}x below the {MIN_SPEEDUP}x floor",
                row.speedup()
            ));
        }
        if row.cached.insns_measured != row.uncached.insns_measured {
            return Err(format!(
                "{server}: cached retired {} insns but uncached {} — drift",
                row.cached.insns_measured, row.uncached.insns_measured
            ));
        }
        if row.cached.hits == 0 {
            return Err(format!("{server}: cache never hit"));
        }
        if row.uncached.hits != 0 {
            return Err(format!("{server}: disabled cache reported hits"));
        }
        if !row.fingerprints_match() {
            return Err(format!("{server}: fingerprints diverge"));
        }
    }
    Ok(())
}

/// Prints the MIPS table, writes `results/interp.json`, and panics if
/// the document violates the schema (the CI gate).
pub fn print() {
    println!("== Interp: decoded-block cache, guest MIPS off/on (steady state) ==\n");
    let figure = run(STEADY_REQUESTS);
    let mut table = Table::new(&[
        "server",
        "uncached MIPS",
        "cached MIPS",
        "speedup",
        "hits",
        "invalidations",
        "bit-identical",
    ]);
    for row in &figure.rows {
        table.row(&[
            row.server.to_owned(),
            format!("{:.2}", row.uncached.mips),
            format!("{:.2}", row.cached.mips),
            format!("{:.2}x", row.speedup()),
            row.cached.hits.to_string(),
            row.cached.invalidations.to_string(),
            row.fingerprints_match().to_string(),
        ]);
    }
    print!("{}", table.render());
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("interp JSON failed schema validation: {violation}");
    }
    let path = "results/interp.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_row(speedup: f64) -> ServerRow {
        let base = ServerRun {
            mips: 10.0,
            insns_measured: 1_000,
            wall_ns: 100_000,
            hits: 0,
            misses: 40,
            invalidations: 1,
            fingerprint: "fp".to_owned(),
        };
        ServerRow {
            server: "redis",
            uncached: base.clone(),
            cached: ServerRun {
                mips: 10.0 * speedup,
                hits: 500,
                ..base
            },
        }
    }

    #[test]
    fn schema_is_valid_and_tampering_is_caught() {
        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(3.0)],
        };
        let json = to_json(&figure);
        validate(&json, &figure).expect("schema valid");

        figure.rows[0].cached.mips = figure.rows[0].uncached.mips * 1.5;
        assert!(
            validate(&to_json(&figure), &figure)
                .unwrap_err()
                .contains("floor"),
            "sub-2x speedup is rejected"
        );

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(3.0)],
        };
        figure.rows[0].cached.fingerprint = "other".to_owned();
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("fingerprints"));

        let mut figure = InterpFigure {
            steady_requests: 10,
            rows: vec![synthetic_row(3.0)],
        };
        figure.rows[0].cached.insns_measured += 1;
        assert!(validate(&to_json(&figure), &figure)
            .unwrap_err()
            .contains("drift"));
    }

    /// A small real pass: identical retirement, matching fingerprints,
    /// live cache. (The 2x speedup floor is asserted by the release-mode
    /// `figures interp` run in CI, not in debug unit tests.)
    #[test]
    fn small_redis_pass_is_bit_identical_with_a_live_cache() {
        let row = run_server(Server::Redis, 40);
        assert!(row.fingerprints_match(), "fingerprints diverge");
        assert_eq!(row.cached.insns_measured, row.uncached.insns_measured);
        assert!(row.cached.hits > 0, "cache never hit");
        assert_eq!(row.uncached.hits, 0);
        assert!(row.cached.mips > 0.0 && row.uncached.mips > 0.0);
    }
}
