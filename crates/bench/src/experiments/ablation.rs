//! Ablations of DynaCut's design choices (DESIGN.md §6):
//!
//! 1. **exec-page dumping** (the paper's criu/mem.c patch) vs stock CRIU:
//!    image-size cost paid so text rewrites survive restore,
//! 2. **block policies**: bytes written / pages unmapped per policy for
//!    the same feature,
//! 3. **downtime accounting**: the guest-visible freeze window under each
//!    mode.

use crate::workloads::{boot_server, Server};
use dynacut::{disable_in_image, BlockPolicy, Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_criu::{dump_many, DumpOptions};

/// Image sizes with and without exec-page dumping, per server.
#[derive(Debug, Clone)]
pub struct DumpAblation {
    /// Server name.
    pub app: String,
    /// Serialized size with DynaCut's exec-page dumping.
    pub dynacut_bytes: usize,
    /// Serialized size with stock-CRIU options.
    pub stock_bytes: usize,
}

/// Per-policy effects of disabling the same feature.
#[derive(Debug, Clone)]
pub struct PolicyAblation {
    /// Policy name.
    pub policy: &'static str,
    /// `int3` bytes written.
    pub bytes_written: u64,
    /// Pages unmapped.
    pub pages_unmapped: u64,
    /// Redirect-table entries produced.
    pub redirect_entries: usize,
}

/// Runs ablation 1.
pub fn dump_ablation() -> Vec<DumpAblation> {
    [Server::Lighttpd, Server::Nginx, Server::Redis]
        .into_iter()
        .map(|server| {
            let measure = |options: DumpOptions| {
                let mut workload = boot_server(server, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                dump_many(&mut workload.kernel, &workload.pids.clone(), &options)
                    .expect("dump")
                    .to_bytes()
                    .len()
            };
            DumpAblation {
                app: server.module().to_owned(),
                dynacut_bytes: measure(DumpOptions::default()),
                stock_bytes: measure(DumpOptions::stock_criu()),
            }
        })
        .collect()
}

/// Runs ablation 2 on the Lighttpd PUT feature.
pub fn policy_ablation() -> Vec<PolicyAblation> {
    [
        ("entry-byte", BlockPolicy::EntryByte),
        ("wipe-blocks", BlockPolicy::WipeBlocks),
        ("unmap-pages", BlockPolicy::UnmapPages),
    ]
    .into_iter()
    .map(|(name, policy)| {
        let mut workload = boot_server(Server::Lighttpd, false);
        let pid = workload.pids[0];
        workload.kernel.freeze(pid).unwrap();
        let mut image =
            dynacut_criu::dump(&mut workload.kernel, pid, &DumpOptions::default()).unwrap();
        // A page-spanning target: all the cold modules.
        let mut blocks = Vec::new();
        for func in &workload.exe.functions {
            if func.name.starts_with("lt_cgi")
                || func.name.starts_with("lt_rewrite")
                || func.name.starts_with("lt_auth")
                || func.name.starts_with("lt_ssi")
                || func.name.starts_with("lt_fastcgi")
            {
                blocks.extend(workload.exe.blocks_of_function(&func.name));
            }
        }
        let feature =
            Feature::new("cold modules", "lighttpd", blocks).redirect_to_offset(0);
        let outcome = disable_in_image(&mut image, &feature, policy).expect("disable");
        PolicyAblation {
            policy: name,
            bytes_written: outcome.bytes_written,
            pages_unmapped: outcome.pages_unmapped,
            redirect_entries: outcome.redirects.len(),
        }
    })
    .collect()
}

/// Runs ablation 3: guest-clock downtime per accounting mode.
pub fn downtime_ablation() -> Vec<(&'static str, u64)> {
    [
        ("none", Downtime::None),
        ("fixed 400ms", Downtime::Fixed(400_000_000)),
        ("measured ×1000", Downtime::MeasuredTimes(1000)),
    ]
    .into_iter()
    .map(|(name, downtime)| {
        let mut workload = boot_server(Server::Redis, false);
        let mut dynacut = DynaCut::new(workload.registry.clone());
        let feature = Feature::from_function("SET", &workload.exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(&workload.exe, dynacut_apps::redis::ERROR_HANDLER)
            .unwrap();
        let before = workload.kernel.clock_ns();
        let plan = RewritePlan::new()
            .disable(feature)
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(downtime);
        dynacut
            .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
            .expect("customize");
        (name, workload.kernel.clock_ns() - before)
    })
    .collect()
}

/// Prints all three ablations.
pub fn print() {
    println!("== Ablations of DynaCut's design choices ==\n");

    println!("1. exec-page dumping (criu/mem.c patch) vs stock CRIU image size:");
    for row in dump_ablation() {
        println!(
            "   {:<9} {:>10} (dynacut)  vs {:>10} (stock)  — +{:.0}% for rewritable text",
            row.app,
            crate::report::fmt_bytes(row.dynacut_bytes as u64),
            crate::report::fmt_bytes(row.stock_bytes as u64),
            100.0 * (row.dynacut_bytes as f64 / row.stock_bytes as f64 - 1.0)
        );
    }

    println!("\n2. block policies on the same (page-spanning) feature:");
    for row in policy_ablation() {
        println!(
            "   {:<11} {:>8} int3 bytes, {:>3} pages unmapped, {:>3} redirect entries",
            row.policy, row.bytes_written, row.pages_unmapped, row.redirect_entries
        );
    }

    println!("\n3. downtime accounting (guest-clock ns charged per customize):");
    for (name, ns) in downtime_ablation() {
        println!(
            "   {:<15} {}",
            name,
            crate::report::fmt_duration(std::time::Duration::from_nanos(ns))
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_page_dumping_costs_image_size() {
        for row in dump_ablation() {
            assert!(
                row.dynacut_bytes > row.stock_bytes,
                "{}: {} vs {}",
                row.app,
                row.dynacut_bytes,
                row.stock_bytes
            );
        }
    }

    #[test]
    fn policies_trade_bytes_for_pages() {
        let rows = policy_ablation();
        let by_name = |name: &str| rows.iter().find(|r| r.policy == name).unwrap();
        let entry = by_name("entry-byte");
        let wipe = by_name("wipe-blocks");
        let unmap = by_name("unmap-pages");
        assert_eq!(entry.bytes_written, 1, "one byte for the entry policy");
        assert!(wipe.bytes_written > 1000, "wipe rewrites whole blocks");
        assert_eq!(entry.pages_unmapped, 0);
        assert_eq!(wipe.pages_unmapped, 0);
        assert!(unmap.pages_unmapped >= 1, "unmap removes whole pages");
        assert!(
            unmap.bytes_written < wipe.bytes_written,
            "unmap only wipes page remainders"
        );
    }

    #[test]
    fn downtime_modes_charge_the_guest_clock_as_configured() {
        let rows = downtime_ablation();
        let by_name = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(by_name("none"), 0);
        assert!(by_name("fixed 400ms") >= 400_000_000);
        let measured = by_name("measured ×1000");
        assert!(measured > 0, "measured mode charges something");
    }
}
