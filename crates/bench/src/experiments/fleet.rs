//! The fleet experiment: customize an N-replica Redis fleet with
//! [`DynaCut::customize_fleet`] and measure what the staged engine and
//! the content-addressed page store buy over the monolithic path:
//!
//! * **per-process freeze windows** that stay flat as the fleet grows —
//!   the engine serializes the freeze windows and every other replica
//!   keeps serving, so each process pays for its own pages only;
//! * **checkpoint dedup** — N just-booted replicas of one binary have
//!   near-identical pages, so the store's content addressing keeps one
//!   physical copy per distinct page and the dedup ratio approaches N.
//!
//! Emits `results/fleet.json` (`dynacut-fleet-v1`), schema-gated by CI:
//! the dedup ratio must be ≥ 1.0 and every process's phase durations
//! must sum to its reported total.

use crate::experiments::fig8_incremental::freeze_window_ns;
use crate::report::{fmt_bytes, Table};
use crate::workloads::{boot_fleet, FleetWorkload};
use dynacut::{
    Downtime, DynaCut, FaultPolicy, Feature, FleetOptions, FleetReport, RewritePlan,
};
use dynacut_apps::redis;

/// Replicas in the headline fleet.
pub const FLEET_SIZE: usize = 8;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-fleet-v1";

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "fleet_size",
    "groups",
    "processes",
    "dedup_ratio",
    "unique_page_bytes",
    "shared_page_bytes",
    "stored_page_bytes",
    "frozen_page_bytes",
    "prewritten_page_bytes",
    "max_freeze_window_ns",
    "sum_freeze_window_ns",
    "procs",
    "phases",
];

/// One process's slice of the fleet run.
#[derive(Debug, Clone)]
pub struct ProcRow {
    /// The process id.
    pub pid: u32,
    /// Sum of the process's phase durations (its cycle's wall cost).
    pub total_ns: u64,
    /// Measured freeze-window share of `total_ns` (freeze through
    /// restore-commit phases).
    pub freeze_window_ns: u64,
    /// Deterministic modeled freeze window from the bytes moved while
    /// frozen ([`freeze_window_ns`]) — host-timing-independent, what the
    /// flat-window assertion checks.
    pub modeled_freeze_ns: u64,
    /// Page bytes copied inside this process's freeze window.
    pub frozen_page_bytes: usize,
    /// Page bytes its pre-dump moved while the replica still served.
    pub prewritten_page_bytes: usize,
    /// Per-phase durations in execution order, nanoseconds.
    pub phases: Vec<(String, u64)>,
}

/// The whole figure: per-process rows plus the engine's fleet totals.
#[derive(Debug, Clone)]
pub struct FleetFigure {
    /// Replica count the run was asked for.
    pub fleet_size: usize,
    /// Per-process measurements, pid order.
    pub procs: Vec<ProcRow>,
    /// The engine's aggregates (groups, dedup, window max/sum).
    pub totals: dynacut::FleetTotals,
}

/// Boots the fleet and customizes it once (disable SET, redirect
/// policy), returning the workload for journal/serving inspection next
/// to the engine's report.
pub fn execute(fleet_size: usize) -> (FleetWorkload, FleetReport) {
    let mut fleet = boot_fleet(fleet_size);
    // A fixed dose of traffic — independent of fleet size — dirties a
    // handful of heap/stack pages on the replicas that serve it, giving
    // the freeze windows a real dirty residue to move. The replicas'
    // text/data pages stay identical, the regime the dedup claim is
    // about.
    for index in 0..12 {
        let request = match index % 3 {
            0 => format!("SET key{index} v{index}\n"),
            1 => format!("GET key{index}\n"),
            _ => "PING\n".to_owned(),
        };
        let reply = fleet.request(request.as_bytes());
        assert!(!reply.is_empty(), "fleet serves before the cycle");
    }
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let feature = Feature::from_function("SET", &fleet.exe, "rd_cmd_set")
        .unwrap()
        .redirect_to_function(&fleet.exe, redis::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let groups = fleet.groups.clone();
    let report = dynacut
        .customize_fleet(
            &mut fleet.kernel,
            &groups,
            &plan,
            &FleetOptions::default(),
        )
        .expect("fleet customize");
    (fleet, report)
}

/// Runs the experiment and shapes the figure.
pub fn run(fleet_size: usize) -> FleetFigure {
    let (_fleet, report) = execute(fleet_size);
    figure(fleet_size, &report)
}

fn figure(fleet_size: usize, report: &FleetReport) -> FleetFigure {
    let procs = report
        .procs
        .iter()
        .map(|(pid, proc_report)| ProcRow {
            pid: pid.0,
            total_ns: proc_report.phase_total().as_nanos() as u64,
            freeze_window_ns: proc_report.freeze_window().as_nanos() as u64,
            modeled_freeze_ns: freeze_window_ns(proc_report.frozen_page_bytes),
            frozen_page_bytes: proc_report.frozen_page_bytes,
            prewritten_page_bytes: proc_report.prewritten_page_bytes,
            phases: proc_report
                .phases
                .iter()
                .map(|(phase, elapsed)| (phase.name().to_owned(), elapsed.as_nanos() as u64))
                .collect(),
        })
        .collect();
    FleetFigure {
        fleet_size,
        procs,
        totals: report.totals.clone(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises the figure as the `dynacut-fleet-v1` JSON document.
pub fn to_json(figure: &FleetFigure) -> String {
    let mut procs = Vec::new();
    for row in &figure.procs {
        let phases: Vec<String> = row
            .phases
            .iter()
            .map(|(name, ns)| format!("        {{\"phase\": \"{}\", \"ns\": {ns}}}", escape(name)))
            .collect();
        procs.push(format!(
            concat!(
                "    {{\n",
                "      \"pid\": {pid},\n",
                "      \"total_ns\": {total},\n",
                "      \"freeze_window_ns\": {window},\n",
                "      \"modeled_freeze_ns\": {modeled},\n",
                "      \"frozen_page_bytes\": {frozen},\n",
                "      \"prewritten_page_bytes\": {prewritten},\n",
                "      \"phases\": [\n{phases}\n      ]\n",
                "    }}"
            ),
            pid = row.pid,
            total = row.total_ns,
            window = row.freeze_window_ns,
            modeled = row.modeled_freeze_ns,
            frozen = row.frozen_page_bytes,
            prewritten = row.prewritten_page_bytes,
            phases = phases.join(",\n"),
        ));
    }
    let totals = &figure.totals;
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"fleet_size\": {fleet_size},\n",
            "  \"groups\": {groups},\n",
            "  \"processes\": {processes},\n",
            "  \"dedup_ratio\": {dedup:.4},\n",
            "  \"unique_page_bytes\": {unique},\n",
            "  \"shared_page_bytes\": {shared},\n",
            "  \"stored_page_bytes\": {stored},\n",
            "  \"frozen_page_bytes\": {frozen},\n",
            "  \"prewritten_page_bytes\": {prewritten},\n",
            "  \"image_bytes\": {image},\n",
            "  \"max_freeze_window_ns\": {max_window},\n",
            "  \"sum_freeze_window_ns\": {sum_window},\n",
            "  \"procs\": [\n{procs}\n  ]\n",
            "}}\n"
        ),
        schema = SCHEMA,
        fleet_size = figure.fleet_size,
        groups = totals.groups,
        processes = totals.processes,
        dedup = totals.dedup_ratio,
        unique = totals.unique_page_bytes,
        shared = totals.shared_page_bytes,
        stored = totals.stored_page_bytes,
        frozen = totals.frozen_page_bytes,
        prewritten = totals.prewritten_page_bytes,
        image = totals.image_bytes,
        max_window = totals.max_freeze_window.as_nanos(),
        sum_window = totals.sum_freeze_window.as_nanos(),
        procs = procs.join(",\n"),
    )
}

/// Checks the schema invariants CI relies on: every required key appears
/// in the document, one row per customized process, the store dedup
/// ratio is sane (≥ 1.0 — content addressing can only shrink), and every
/// process's phase durations sum to its reported cycle total.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &FleetFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.procs.is_empty() {
        return Err("no processes in report".to_owned());
    }
    if figure.procs.len() != figure.totals.processes {
        return Err(format!(
            "{} proc rows but totals.processes = {}",
            figure.procs.len(),
            figure.totals.processes
        ));
    }
    if figure.totals.dedup_ratio < 1.0 {
        return Err(format!(
            "dedup ratio {:.4} < 1.0 — the store grew the data",
            figure.totals.dedup_ratio
        ));
    }
    for row in &figure.procs {
        let sum: u64 = row.phases.iter().map(|(_, ns)| ns).sum();
        if sum != row.total_ns {
            return Err(format!(
                "pid {}: phase durations sum to {sum} but total_ns is {}",
                row.pid, row.total_ns
            ));
        }
        if row.freeze_window_ns > row.total_ns {
            return Err(format!(
                "pid {}: freeze window {} exceeds cycle total {}",
                row.pid, row.freeze_window_ns, row.total_ns
            ));
        }
    }
    Ok(())
}

/// Prints the per-process table and fleet totals, writes
/// `results/fleet.json`, and panics if the document violates the schema
/// (the CI gate).
pub fn print() {
    println!("== Fleet: staged engine over {FLEET_SIZE} Redis replicas, shared page store ==\n");
    let figure = run(FLEET_SIZE);
    let mut table = Table::new(&[
        "pid",
        "frozen",
        "pre-copied",
        "modeled window",
        "cycle share frozen",
    ]);
    for row in &figure.procs {
        table.row(&[
            row.pid.to_string(),
            fmt_bytes(row.frozen_page_bytes as u64),
            fmt_bytes(row.prewritten_page_bytes as u64),
            crate::report::fmt_duration(std::time::Duration::from_nanos(row.modeled_freeze_ns)),
            format!(
                "{:.1}%",
                row.freeze_window_ns as f64 * 100.0 / row.total_ns.max(1) as f64
            ),
        ]);
    }
    print!("{}", table.render());
    let totals = &figure.totals;
    println!(
        "\nstore: {} logical stored as {} unique ({} shared away), dedup {:.2}x",
        fmt_bytes(totals.stored_page_bytes as u64),
        fmt_bytes(totals.unique_page_bytes as u64),
        fmt_bytes(totals.shared_page_bytes as u64),
        totals.dedup_ratio,
    );
    println!(
        "freeze windows: serialized, max per process {:?}, sum over fleet {:?}",
        totals.max_freeze_window, totals.sum_freeze_window,
    );
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("fleet JSON failed schema validation: {violation}");
    }
    let path = "results/fleet.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut::{EventKind, Phase};

    /// The acceptance claims: an 8-replica fleet dedups its checkpoints
    /// better than 4×, and the per-process freeze window (measured
    /// deterministically in page bytes moved while frozen) does not grow
    /// with fleet size.
    #[test]
    fn fleet_of_8_dedups_over_4x_with_flat_freeze_windows() {
        let small = run(2);
        let large = run(FLEET_SIZE);
        assert_eq!(large.procs.len(), FLEET_SIZE);
        assert!(
            large.totals.dedup_ratio > 4.0,
            "dedup ratio {:.2} not > 4x",
            large.totals.dedup_ratio
        );
        // Per-process freeze cost is a function of that process's pages,
        // not of the fleet: the worst window of the 8-fleet must not
        // exceed the worst window of the 2-fleet (10% slack for
        // incidental page-count noise).
        let worst = |figure: &FleetFigure| {
            figure
                .procs
                .iter()
                .map(|row| row.frozen_page_bytes)
                .max()
                .unwrap()
        };
        let (small_worst, large_worst) = (worst(&small), worst(&large));
        assert!(small_worst > 0);
        assert!(
            large_worst <= small_worst + small_worst / 10,
            "per-process frozen bytes grew with fleet size: {large_worst} vs {small_worst}"
        );
        // And the serialized schedule means the fleet-wide aggregate is
        // spread across groups: the max is genuinely per-group, well
        // under the sum a whole-fleet freeze would impose.
        assert!(large.totals.max_freeze_window <= large.totals.sum_freeze_window);
        assert_eq!(large.totals.groups, FLEET_SIZE);
    }

    /// The engine pumps the kernel between freeze windows, so a request
    /// queued into the shared backlog before the fleet cycle starts is
    /// answered by the time it returns — without the test ever running
    /// the kernel itself. Unfrozen replicas served during the cycle.
    #[test]
    fn fleet_serves_queued_traffic_during_the_cycle() {
        let mut fleet = boot_fleet(4);
        let reply = fleet.request(b"PING\n");
        assert!(!reply.is_empty(), "fleet serves before the cycle");

        let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
        let feature = Feature::from_function("SET", &fleet.exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(&fleet.exe, redis::ERROR_HANDLER)
            .unwrap();
        let plan = RewritePlan::new()
            .disable(feature)
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(Downtime::None);

        let conn = fleet.kernel.client_connect(fleet.port).expect("listening");
        fleet.kernel.client_send(conn, b"PING\n").expect("send");

        let groups = fleet.groups.clone();
        dynacut
            .customize_fleet(
                &mut fleet.kernel,
                &groups,
                &plan,
                &FleetOptions::default(),
            )
            .expect("fleet customize");

        let reply = fleet.kernel.client_recv(conn).expect("recv");
        assert!(
            !reply.is_empty(),
            "request queued before the cycle was served during it"
        );
        let _ = fleet.kernel.client_close(conn);

        // And the fleet still serves afterwards, with SET redirected.
        assert!(!fleet.request(b"GET key0\n").is_empty());
        let set_reply = fleet.request(b"SET key0 v\n");
        assert!(!set_reply.is_empty(), "disabled command still answered");
    }

    /// The freeze-serialization invariant, read off the flight journal:
    /// per-pid `StageScheduled(Freeze)` … `StageRetired(RestoreCommit)`
    /// spans never interleave across groups, and every process journals
    /// the full incremental stage sequence.
    #[test]
    fn journal_orders_stage_interleaving_and_serializes_freeze_windows() {
        let (fleet, report) = execute(3);
        assert_eq!(report.procs.len(), 3);

        let mut open: Option<u32> = None;
        let mut windows = 0usize;
        let mut scheduled: std::collections::BTreeMap<u32, Vec<Phase>> = Default::default();
        for event in fleet.kernel.flight().iter() {
            let Some(pid) = event.pid else { continue };
            match event.kind {
                EventKind::StageScheduled { stage } => {
                    scheduled.entry(pid.0).or_default().push(stage);
                    if stage == Phase::Freeze {
                        assert_eq!(
                            open, None,
                            "pid {} froze while pid {:?} held the freeze window",
                            pid.0, open
                        );
                        open = Some(pid.0);
                    }
                }
                EventKind::StageRetired { stage: Phase::RestoreCommit, .. } => {
                    assert_eq!(open, Some(pid.0), "retired a window it never opened");
                    open = None;
                    windows += 1;
                }
                _ => {}
            }
        }
        assert_eq!(open, None, "a freeze window never closed");
        assert_eq!(windows, 3, "one serialized window per group");
        for (pid, stages) in &scheduled {
            assert_eq!(
                stages,
                &vec![
                    Phase::PreDump,
                    Phase::Freeze,
                    Phase::Dump,
                    Phase::ImageEdit,
                    Phase::Inject,
                    Phase::RestorePrepare,
                    Phase::RestoreCommit,
                    Phase::BaselineStore,
                ],
                "pid {pid} scheduled an unexpected stage sequence"
            );
        }
    }

    #[test]
    fn fleet_json_is_schema_valid_and_tampering_is_caught() {
        let mut figure = run(2);
        let json = to_json(&figure);
        validate(&json, &figure).expect("schema valid");
        figure.procs[0].total_ns += 1;
        let json = to_json(&figure);
        assert!(validate(&json, &figure).is_err());
    }
}
