//! §4.2 attack-surface study: PLT-entry removal after initialization and
//! the BROP/ret2plt analysis.
//!
//! The paper: "DynaCut removes 43 out of 56 executed PLT entries in Nginx
//! after the initialization phase is completed. … the PLT entry for the
//! libc fork() function was also disabled, preventing any ret2plt attacks
//! that use the fork() function." Lighttpd: 33 of 57.

use crate::workloads::{boot_server, Server, Workload};
use dynacut_analysis::{plt_usage, CovGraph, PltUsage};

/// PLT study results for one server.
#[derive(Debug, Clone)]
pub struct PltRow {
    /// Server name.
    pub app: String,
    /// Classification of executed PLT entries.
    pub usage: PltUsage,
    /// Whether `libc_fork` is among the post-init-removable entries
    /// (defeats BROP worker respawning and fork-based ret2plt).
    pub fork_removable: bool,
}

fn measure(server: Server) -> PltRow {
    let mut workload: Workload = boot_server(server, true);
    let tracer = workload.tracer.clone().expect("tracer installed");
    let init = CovGraph::from_log(&tracer.nudge());
    match server {
        Server::Redis => workload.exercise_redis_workload(9),
        _ => workload.exercise_http_full_workload(2),
    }
    let serving = CovGraph::from_log(&tracer.snapshot());
    let usage = plt_usage(&workload.exe, server.module(), &init, &serving);
    let fork_removable = usage
        .removable_post_init
        .iter()
        .any(|name| name == "libc_fork");
    PltRow {
        app: server.module().to_owned(),
        usage,
        fork_removable,
    }
}

/// Runs the study for Nginx and Lighttpd.
pub fn run() -> Vec<PltRow> {
    vec![measure(Server::Nginx), measure(Server::Lighttpd)]
}

/// Prints the study.
pub fn print() {
    println!("== §4.2: PLT-entry removal after initialization ==\n");
    for row in run() {
        let (removable, executed) = row.usage.removable_ratio();
        println!(
            "{}: {removable} of {executed} executed PLT entries removable post-init",
            row.app
        );
        println!("  removable: {}", row.usage.removable_post_init.join(", "));
        println!("  still needed: {}", row.usage.still_needed.join(", "));
        if row.app == "nginx" {
            println!(
                "  fork@plt removable: {} → BROP worker-respawn and fork-based ret2plt defeated",
                row.fork_removable
            );
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plt_surface_shrinks_after_init() {
        let rows = run();
        let nginx = rows.iter().find(|r| r.app == "nginx").unwrap();
        let lighttpd = rows.iter().find(|r| r.app == "lighttpd").unwrap();
        for row in &rows {
            let (removable, executed) = row.usage.removable_ratio();
            assert!(executed > 0, "{} executed PLT entries", row.app);
            assert!(removable > 0, "{} has removable entries", row.app);
            // A meaningful share is removable (paper: 43/56 and 33/57).
            assert!(
                removable as f64 >= 0.3 * executed as f64,
                "{}: {removable}/{executed}",
                row.app
            );
        }
        // The fork PLT entry of the master/worker Nginx is init-only:
        // the key BROP defence.
        assert!(nginx.fork_removable, "fork@plt removable in nginx");
        // Single-process Lighttpd never forks at all.
        assert!(!lighttpd
            .usage
            .executed
            .iter()
            .any(|name| name == "libc_fork"));
        // The serving path keeps its I/O entries.
        for needed in ["libc_read", "libc_write", "libc_accept"] {
            assert!(
                nginx.usage.still_needed.iter().any(|n| n == needed),
                "nginx still needs {needed}"
            );
        }
    }
}
