//! Table 1: Redis CVEs mitigatable with DynaCut's feature blocking.
//!
//! Each CVE maps to one of the modelled vulnerable handlers; the harness
//! actually fires each exploit twice — against a vanilla server (which
//! crashes) and against a DynaCut-customized server (which answers
//! `-ERR blocked` and stays up).

use crate::workloads::{boot_server, Server};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::redis;
use dynacut_vm::Signal;

/// One row of the table.
#[derive(Debug, Clone)]
pub struct CveRow {
    /// CVE identifier.
    pub cve: &'static str,
    /// Affected command / handler function.
    pub command: &'static str,
    /// Paper description.
    pub description: &'static str,
    /// The handler function implementing the command.
    pub handler: &'static str,
    /// Exploit request fired at the server.
    pub exploit: String,
    /// Whether the vanilla server crashed with SIGSEGV.
    pub vanilla_crashed: bool,
    /// Whether the customized server survived and answered `-ERR blocked`.
    pub blocked_survived: bool,
}

fn exploits() -> Vec<(&'static str, &'static str, &'static str, &'static str, String)> {
    let a = "a".repeat(32);
    let b = "b".repeat(32);
    let stralgo = format!("STRALGO {a} {b}\n");
    let config = format!("CONFIG {}\n", "v".repeat(64));
    vec![
        (
            "CVE-2021-32625",
            "STRALGO LCS",
            "STRALGO LCS command in Redis versions 6.0+ (integer overflow)",
            "rd_cmd_stralgo",
            stralgo.clone(),
        ),
        (
            "CVE-2021-29477",
            "STRALGO LCS",
            "STRALGO LCS command in Redis versions 6.0+ (integer overflow)",
            "rd_cmd_stralgo",
            stralgo,
        ),
        (
            "CVE-2019-10193",
            "SETRANGE",
            "SETRANGE command (stack-buffer overflow)",
            "rd_cmd_setrange",
            "SETRANGE 5000 xyz\n".to_owned(),
        ),
        (
            "CVE-2019-10192",
            "SETRANGE",
            "SETRANGE command (heap-buffer overflow)",
            "rd_cmd_setrange",
            "SETRANGE 8000 xyz\n".to_owned(),
        ),
        (
            "CVE-2016-8339",
            "CONFIG SET",
            "CONFIG SET command in Redis 3.2.x prior to 3.2.4 (buffer overflow)",
            "rd_cmd_config",
            config,
        ),
    ]
}

fn fire(exploit: &str, block_handler: Option<&str>) -> (Vec<u8>, Option<Signal>) {
    let mut workload = boot_server(Server::Redis, false);
    if let Some(handler) = block_handler {
        let mut dynacut = DynaCut::new(workload.registry.clone());
        let feature = Feature::from_function(handler, &workload.exe, handler)
            .unwrap()
            .redirect_to_function(&workload.exe, redis::ERROR_HANDLER)
            .unwrap();
        let plan = RewritePlan::new()
            .disable(feature)
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(Downtime::None);
        dynacut
            .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
            .expect("block handler");
    }
    let reply = workload.request(exploit.as_bytes());
    let fatal = workload
        .kernel
        .exit_status(workload.pids[0])
        .and_then(|s| s.fatal_signal);
    (reply, fatal)
}

/// Runs every exploit against vanilla and customized servers.
pub fn run() -> Vec<CveRow> {
    exploits()
        .into_iter()
        .map(|(cve, command, description, handler, exploit)| {
            let (_, vanilla_fatal) = fire(&exploit, None);
            let (blocked_reply, blocked_fatal) = fire(&exploit, Some(handler));
            CveRow {
                cve,
                command,
                description,
                handler,
                exploit,
                vanilla_crashed: vanilla_fatal == Some(Signal::Sigsegv),
                blocked_survived: blocked_fatal.is_none()
                    && blocked_reply == redis::ERR_BLOCKED,
            }
        })
        .collect()
}

/// Prints the table.
pub fn print() {
    println!("== Table 1: Redis CVEs mitigated by DynaCut feature blocking ==\n");
    let rows = run();
    let mut table = crate::report::Table::new(&[
        "CVE #",
        "command",
        "vanilla server",
        "with DynaCut",
        "description",
    ]);
    for row in &rows {
        table.row(&[
            row.cve.to_owned(),
            row.command.to_owned(),
            if row.vanilla_crashed {
                "CRASH (SIGSEGV)".to_owned()
            } else {
                "survived?!".to_owned()
            },
            if row.blocked_survived {
                "blocked, alive".to_owned()
            } else {
                "NOT MITIGATED".to_owned()
            },
            row.description.to_owned(),
        ]);
    }
    print!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_cves_crash_vanilla_and_are_mitigated() {
        let rows = run();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.vanilla_crashed, "{} crashes vanilla redis", row.cve);
            assert!(row.blocked_survived, "{} mitigated by DynaCut", row.cve);
        }
    }
}
