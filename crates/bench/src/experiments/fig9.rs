//! Figure 9: number of executed basic blocks, number of initialization
//! blocks removed by DynaCut, and the total-blocks / code-size /
//! init-code-size table — for Lighttpd, Nginx and all seven SPEC
//! programs.

use crate::workloads::{boot_server, boot_spec, Server, Workload};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::spec;

/// One bar pair (plus table column) of the figure.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Program name.
    pub app: String,
    /// Distinct basic blocks executed (deduplicated drcov count, app
    /// module only).
    pub executed: usize,
    /// Initialization-only blocks removed.
    pub removed: usize,
    /// Total blocks in the binary (the paper gets this from angr; we get
    /// it from the linker).
    pub total_blocks: usize,
    /// `.text` size.
    pub code_size: u64,
    /// Bytes of init code removed.
    pub init_code_removed: u64,
}

impl Fig9Row {
    /// Fraction of executed blocks that were removed (the headline
    /// percentages: up to 56 % for Nginx, 46 % Lighttpd, 8.4–41.4 % SPEC).
    pub fn removed_fraction(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.removed as f64 / self.executed as f64
    }
}

fn measure(mut workload: Workload, module: &str) -> Fig9Row {
    let tracer = workload.tracer.clone().expect("tracer installed");
    let init = CovGraph::from_log(&tracer.nudge());
    if workload.port != 0 {
        workload.exercise_http_full_workload(2);
    } else {
        workload.kernel.run_for(2_000_000);
    }
    let serving = CovGraph::from_log(&tracer.snapshot());
    let executed = init.union(&serving).retain_modules(&[module]);
    let removed = init_only_blocks(&init, &serving).retain_modules(&[module]);
    Fig9Row {
        app: module.to_owned(),
        executed: executed.len(),
        removed: removed.len(),
        total_blocks: workload.exe.total_blocks(),
        code_size: workload.exe.text_size(),
        init_code_removed: removed.covered_bytes(),
    }
}

/// Programs in the paper's Figure 9 order.
pub fn programs() -> Vec<&'static str> {
    vec![
        "lighttpd",
        "nginx",
        "600.perlbench_s",
        "605.mcf_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
    ]
}

/// Runs the full experiment.
pub fn run() -> Vec<Fig9Row> {
    programs()
        .into_iter()
        .map(|name| match name {
            "lighttpd" => measure(boot_server(Server::Lighttpd, true), "lighttpd"),
            "nginx" => measure(boot_server(Server::Nginx, true), "nginx"),
            other => {
                let program = spec::by_name(other).expect("known benchmark");
                measure(boot_spec(&program), other)
            }
        })
        .collect()
}

/// Prints the figure as a table.
pub fn print() {
    println!("== Figure 9: executed vs removed basic blocks ==\n");
    let rows = run();
    let mut table = crate::report::Table::new(&[
        "app",
        "BBs executed",
        "BBs removed",
        "removed %",
        "total BB #",
        "code size",
        "init code rm",
    ]);
    for row in &rows {
        table.row(&[
            row.app.clone(),
            row.executed.to_string(),
            row.removed.to_string(),
            format!("{:.1}%", 100.0 * row.removed_fraction()),
            row.total_blocks.to_string(),
            crate::report::fmt_bytes(row.code_size),
            crate::report::fmt_bytes(row.init_code_removed),
        ]);
    }
    print!("{}", table.render());
    let spec_rows: Vec<&Fig9Row> = rows.iter().filter(|r| r.app.contains('.')).collect();
    let avg: f64 =
        spec_rows.iter().map(|r| r.removed_fraction()).sum::<f64>() / spec_rows.len() as f64;
    println!("\nSPEC average removed fraction: {:.1}% (paper: 22.3%)", 100.0 * avg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_fractions_have_paper_shape() {
        let rows = run();
        let by_name = |name: &str| rows.iter().find(|r| r.app == name).unwrap();

        // Servers remove a large share of executed blocks (paper: Nginx up
        // to 56 %, Lighttpd ≈46 %): both > 35 % here.
        assert!(by_name("nginx").removed_fraction() > 0.35);
        assert!(by_name("lighttpd").removed_fraction() > 0.35);

        // perlbench is the highest SPEC remover (paper: 41.4 %), and every
        // SPEC fraction stays in the paper's 8.4–41.4 % band (±0.05 of
        // slack for the scaled-down block counts).
        let spec_rows: Vec<&Fig9Row> = rows.iter().filter(|r| r.app.contains('.')).collect();
        let perl = by_name("600.perlbench_s").removed_fraction();
        for row in &spec_rows {
            assert!(perl >= row.removed_fraction(), "{}", row.app);
            assert!(
                (0.034..=0.464).contains(&row.removed_fraction()),
                "{}: {}",
                row.app,
                row.removed_fraction()
            );
        }
        // SPEC average close to the paper's 22.3 %.
        let avg: f64 = spec_rows.iter().map(|r| r.removed_fraction()).sum::<f64>()
            / spec_rows.len() as f64;
        assert!((0.15..=0.32).contains(&avg), "average {avg}");

        // Total-block ordering: xalancbmk > perlbench > omnetpp > x264 >
        // leela > deepsjeng > mcf.
        let total = |name: &str| by_name(name).total_blocks;
        assert!(total("623.xalancbmk_s") > total("600.perlbench_s"));
        assert!(total("600.perlbench_s") > total("620.omnetpp_s"));
        assert!(total("620.omnetpp_s") > total("625.x264_s"));
        assert!(total("625.x264_s") > total("641.leela_s"));
        assert!(total("641.leela_s") > total("631.deepsjeng_s"));
        assert!(total("631.deepsjeng_s") > total("605.mcf_s"));
    }
}
