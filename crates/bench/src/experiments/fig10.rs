//! Figure 10: number of live basic blocks over time — DynaCut's
//! phase-aware timeline against the static RAZOR and Chisel baselines, on
//! the Lighttpd admin-upload scenario.
//!
//! Timeline (12 slots): boot/init (0–1) → read-only serving (2–7) → the
//! administrator enables HTTP PUT/DELETE for an upload window (8–9) →
//! read-only again (10–11) → terminate.

use crate::workloads::{boot_server, Server, Workload};
use dynacut::baselines::{chisel_debloat, razor_debloat};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::lighttpd;
use dynacut_isa::{BasicBlock, TRAP_OPCODE};

/// Number of timeline slots.
pub const SLOTS: usize = 12;
/// Slot after which initialization code is shed.
pub const INIT_END: usize = 2;
/// Upload window (PUT/DELETE enabled).
pub const PUT_WINDOW: std::ops::Range<usize> = 8..10;

/// The three series of the figure, as live-block fractions per slot.
#[derive(Debug, Clone)]
pub struct Fig10Series {
    /// DynaCut's measured live fraction per slot.
    pub dynacut: Vec<f64>,
    /// RAZOR's constant live fraction.
    pub razor: f64,
    /// Chisel's constant live fraction.
    pub chisel: f64,
}

impl Fig10Series {
    /// DynaCut's maximum live fraction after initialization ends — the
    /// paper's "less than 17 % of code blocks visible in memory".
    pub fn dynacut_post_init_max(&self) -> f64 {
        self.dynacut[INIT_END..]
            .iter()
            .fold(0.0f64, |acc, &v| acc.max(v))
    }
}

/// Counts the application blocks still "live" in the worker's memory: the
/// block's page is mapped and its entry byte is not a trap.
fn live_fraction(workload: &Workload) -> f64 {
    let pid = *workload.pids.last().expect("server pid");
    let proc = workload.kernel.process(pid).expect("alive");
    let module = proc
        .modules
        .iter()
        .find(|m| m.image.name == lighttpd::MODULE)
        .expect("app module");
    let base = module.base;
    let image = &module.image;
    let mut live = 0usize;
    for block in &image.blocks {
        let addr = base + block.addr;
        if proc.mem.vma_at(addr).is_none() {
            continue;
        }
        let mut byte = [0u8; 1];
        proc.mem.read_unchecked(addr, &mut byte);
        if byte[0] != TRAP_OPCODE {
            live += 1;
        }
    }
    live as f64 / image.blocks.len() as f64
}

fn feature(workload: &Workload, name: &str, function: &str) -> Feature {
    Feature::from_function(name, &workload.exe, function)
        .unwrap()
        .redirect_to_function(&workload.exe, lighttpd::ERROR_HANDLER)
        .unwrap()
        // The upload window re-enables the feature later; carry its PLT
        // stubs so the unused-code shedding can't strand them.
        .with_plt_dependencies(&workload.exe)
}

/// Runs the scenario and returns the three series.
pub fn run() -> Fig10Series {
    let mut workload = boot_server(Server::Lighttpd, true);
    let tracer = workload.tracer.clone().expect("tracer installed");
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let mut series = Vec::with_capacity(SLOTS);

    // Slots 0–1: vanilla process, everything visible.
    series.push(live_fraction(&workload));
    series.push(live_fraction(&workload));

    // --- end of init: shed init-only code AND never-needed features ----
    let init_cov = CovGraph::from_log(&tracer.nudge());
    workload.exercise_http_read_workload(6);
    let serving_cov = CovGraph::from_log(&tracer.snapshot());
    let init_only = init_only_blocks(&init_cov, &serving_cov).retain_modules(&[lighttpd::MODULE]);
    let init_blocks: Vec<BasicBlock> = init_only
        .module_blocks(lighttpd::MODULE)
        .into_iter()
        .map(|(o, s)| BasicBlock::new(o, s))
        .collect();
    // Never-executed application blocks (the gray mass) are also shed —
    // DynaCut maintains "a minimal available code feature set". The code
    // dispatcher and the default error path stay: DynaCut cuts the
    // dispatcher's *edges* to features, never the dispatcher itself
    // (paper §3: "DynaCut simply needs to locate the code dispatcher and
    // cut the control flow edge to undesired features").
    let executed = init_cov.union(&serving_cov);
    let mut keep = workload.exe.blocks_of_function(lighttpd::ERROR_HANDLER);
    keep.extend(workload.exe.blocks_of_function("lt_http_dispatch"));
    let unused: Vec<BasicBlock> = workload
        .exe
        .blocks
        .iter()
        .copied()
        .filter(|b| {
            !keep.contains(b)
                && !executed.contains(&dynacut_analysis::BlockKey {
                    module: lighttpd::MODULE.to_owned(),
                    offset: b.addr,
                    size: b.size,
                })
        })
        .collect();
    let put = feature(&workload, "PUT", "lt_put_handler");
    let delete = feature(&workload, "DELETE", "lt_delete_handler");
    let plan = RewritePlan::new()
        .remove_init_blocks(lighttpd::MODULE, init_blocks)
        .remove_init_blocks(lighttpd::MODULE, unused)
        .disable(put.clone())
        .disable(delete.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
        .expect("shed init + features");

    // Slots 2–7: read-only serving.
    for _ in INIT_END..PUT_WINDOW.start {
        workload.exercise_http_read_workload(2);
        series.push(live_fraction(&workload));
    }

    // Slot 8: the administrator enables PUT/DELETE for uploads.
    let plan = RewritePlan::new()
        .enable(put.clone())
        .enable(delete.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = workload.kernel.pids();
    dynacut
        .customize(&mut workload.kernel, &pids, &plan)
        .expect("enable PUT window");
    for _ in PUT_WINDOW {
        let reply = workload.request(b"PUT /upload data");
        assert_eq!(reply, dynacut_apps::nginx::RESP_201, "upload works");
        series.push(live_fraction(&workload));
    }

    // Slots 10–11: window closed again.
    let plan = RewritePlan::new()
        .disable(put)
        .disable(delete)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = workload.kernel.pids();
    dynacut
        .customize(&mut workload.kernel, &pids, &plan)
        .expect("close PUT window");
    for _ in PUT_WINDOW.end..SLOTS {
        workload.exercise_http_read_workload(2);
        series.push(live_fraction(&workload));
    }

    // --- the static baselines, trained on the full workload ------------
    let training = init_cov.union(&serving_cov);
    let razor = razor_debloat(&workload.exe, lighttpd::MODULE, &training).live_fraction();
    let chisel = chisel_debloat(&workload.exe, lighttpd::MODULE, &training).live_fraction();

    Fig10Series {
        dynacut: series,
        razor,
        chisel,
    }
}

/// Prints the figure as a table plus bar rendering.
pub fn print() {
    println!("== Figure 10: live basic blocks over time (Lighttpd) ==\n");
    let series = run();
    println!("slot  DynaCut  RAZOR   CHISEL  phase");
    for (slot, &live) in series.dynacut.iter().enumerate() {
        let phase = match slot {
            0..=1 => "initialization",
            8..=9 => "PUT/DELETE window",
            _ => "read-only serving",
        };
        println!(
            "{slot:>4}  {:>6.1}%  {:>5.1}%  {:>5.1}%  {phase}",
            100.0 * live,
            100.0 * series.razor,
            100.0 * series.chisel
        );
    }
    println!(
        "\nDynaCut post-init max: {:.1}% live (paper: <17%); RAZOR removes {:.1}%, Chisel {:.1}% (paper: 53.1% / 66%)",
        100.0 * series.dynacut_post_init_max(),
        100.0 * (1.0 - series.razor),
        100.0 * (1.0 - series.chisel)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynacut_timeline_beats_static_baselines() {
        let series = run();
        assert_eq!(series.dynacut.len(), SLOTS);
        // Slots 0–1: vanilla, everything live.
        assert!(series.dynacut[0] > 0.95);
        // After init shedding, DynaCut keeps less live code than both
        // static baselines at every slot (the paper's <17 % vs their
        // 46.9 % / 34 % kept).
        for (slot, &live) in series.dynacut.iter().enumerate().skip(INIT_END) {
            assert!(
                live < series.razor && live < series.chisel,
                "slot {slot}: {live} vs razor {} chisel {}",
                series.razor,
                series.chisel
            );
        }
        // The paper's headline: well under 20 % visible post-init.
        assert!(
            series.dynacut_post_init_max() < 0.20,
            "post-init max {}",
            series.dynacut_post_init_max()
        );
        // The PUT window is visible: more live code than the neighbouring
        // read-only slots.
        assert!(series.dynacut[8] > series.dynacut[7]);
        assert!(series.dynacut[8] > series.dynacut[10]);
        // RAZOR keeps more than Chisel (it removes less).
        assert!(series.razor > series.chisel);
    }
}
