//! Figure 7: DynaCut's overhead for removing initialization code from
//! process images — checkpoint/restore vs code-update time, with the
//! text-size and image-size table, for Lighttpd, Nginx and six SPEC
//! programs (the paper's Figure 7 omits `631.deepsjeng_s`).

use crate::workloads::{boot_server, boot_spec, Server, Workload};
use dynacut::{Downtime, DynaCut, RewritePlan};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::spec;
use dynacut_isa::BasicBlock;
use std::time::Duration;

/// One bar (plus table column) of the figure.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Program name.
    pub app: String,
    /// Checkpoint + restore time.
    pub checkpoint_restore: Duration,
    /// Image code-update time (replacing all init-block instructions).
    pub code_update: Duration,
    /// `.text` size of the binary.
    pub code_size: u64,
    /// Serialized checkpoint size.
    pub image_size: usize,
    /// Init-only basic blocks removed.
    pub blocks_removed: usize,
    /// Bytes of init code removed.
    pub init_bytes_removed: u64,
}

fn init_blocks_of(workload: &mut Workload, module: &str) -> Vec<BasicBlock> {
    let tracer = workload.tracer.clone().expect("tracer installed");
    let init = CovGraph::from_log(&tracer.nudge());
    // Post-init phase: run the serving/computing phase briefly.
    if workload.port != 0 {
        workload.exercise_http_full_workload(2);
    } else {
        // SPEC: run a slice of the main loop.
        workload.kernel.run_for(2_000_000);
    }
    let serving = CovGraph::from_log(&tracer.snapshot());
    init_only_blocks(&init, &serving)
        .retain_modules(&[module])
        .module_blocks(module)
        .into_iter()
        .map(|(offset, size)| BasicBlock::new(offset, size))
        .collect()
}

fn measure(mut workload: Workload, module: &str) -> Fig7Row {
    let blocks = init_blocks_of(&mut workload, module);
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let plan = RewritePlan::new()
        .remove_init_blocks(module, blocks.clone())
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut workload.kernel, &workload.pids, &plan)
        .expect("customize succeeds");
    Fig7Row {
        app: module.to_owned(),
        checkpoint_restore: report.timings.checkpoint + report.timings.restore,
        code_update: report.timings.disable_code + report.timings.insert_sighandler,
        code_size: workload.exe.text_size(),
        image_size: report.image_bytes,
        blocks_removed: blocks.len(),
        init_bytes_removed: blocks.iter().map(|b| u64::from(b.size)).sum(),
    }
}

/// Programs in the paper's Figure 7, in its order.
pub fn programs() -> Vec<&'static str> {
    vec![
        "lighttpd",
        "nginx",
        "600.perlbench_s",
        "605.mcf_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "641.leela_s",
    ]
}

/// Runs the full experiment.
pub fn run() -> Vec<Fig7Row> {
    programs()
        .into_iter()
        .map(|name| match name {
            "lighttpd" => measure(boot_server(Server::Lighttpd, true), "lighttpd"),
            "nginx" => measure(boot_server(Server::Nginx, true), "nginx"),
            other => {
                let program = spec::by_name(other).expect("known benchmark");
                measure(boot_spec(&program), other)
            }
        })
        .collect()
}

/// Prints the figure as a table.
pub fn print() {
    println!("== Figure 7: initialization-code-removal overhead ==\n");
    let rows = run();
    let mut table = crate::report::Table::new(&[
        "app",
        "checkpoint/restore",
        "code update",
        "code size",
        "image size",
        "init BBs removed",
        "init code removed",
    ]);
    for row in &rows {
        table.row(&[
            row.app.clone(),
            crate::report::fmt_duration(row.checkpoint_restore),
            crate::report::fmt_duration(row.code_update),
            crate::report::fmt_bytes(row.code_size),
            crate::report::fmt_bytes(row.image_size as u64),
            row.blocks_removed.to_string(),
            crate::report::fmt_bytes(row.init_bytes_removed),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper shape: total time scales with image size and with the number of");
    println!("init blocks removed; perlbench (deep init point) has the most blocks and");
    println!("takes the longest among the SPEC programs; mcf is negligible.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_removal_costs_have_paper_shape() {
        let rows = run();
        let by_name = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
        // Everyone removed a meaningful number of init blocks.
        for row in &rows {
            assert!(row.blocks_removed > 0, "{} removed none", row.app);
        }
        // perlbench removes the most init blocks among SPEC programs
        // (paper: 10,808, ~60% more than xalancbmk's 6,497).
        let perl = by_name("600.perlbench_s");
        let xalan = by_name("623.xalancbmk_s");
        let mcf = by_name("605.mcf_s");
        assert!(perl.blocks_removed > xalan.blocks_removed);
        assert!(
            perl.blocks_removed as f64 >= 1.3 * xalan.blocks_removed as f64,
            "perl {} vs xalan {}",
            perl.blocks_removed,
            xalan.blocks_removed
        );
        // mcf is the smallest benchmark by code size and removes the
        // fewest blocks; leela's checkpoint is the smallest image (the
        // paper's 9.7 MB vs mcf's 28 MB).
        for row in &rows {
            if row.app != "605.mcf_s" && row.app.contains('.') {
                assert!(mcf.code_size <= row.code_size, "{}", row.app);
                assert!(mcf.blocks_removed <= row.blocks_removed, "{}", row.app);
            }
        }
        let leela = by_name("641.leela_s");
        for row in &rows {
            if row.app.contains('.') {
                assert!(leela.image_size <= row.image_size, "{}", row.app);
            }
        }
        // Image sizes order: omnetpp largest (paper: 214 MB).
        let omnetpp = by_name("620.omnetpp_s");
        for row in &rows {
            assert!(omnetpp.image_size >= row.image_size, "{}", row.app);
        }
    }
}
