//! The restore experiment: zero-copy CoW restore vs copying restore on
//! the same N-replica Redis fleet (DESIGN §12).
//!
//! Both modes run the identical deterministic workload (boot N
//! replicas, serve a fixed dose of traffic, disable SET fleet-wide), so
//! the comparison is exact:
//!
//! * **copying restore** physically moves every restored page, once per
//!   replica — its cost scales with resident set × replicas;
//! * **zero-copy restore** hands out shared frames from the
//!   content-addressed store and physically copies only first-sight
//!   pages — its cost scales with *distinct rewritten pages* and stays
//!   flat as the fleet grows.
//!
//! Emits `results/restore.json` (`dynacut-restore-v1`), gated by CI on
//! deterministic byte counts, never host timing: the copying restore
//! must move ≥ 5× the bytes at the headline fleet size, the two modes'
//! kernels must be fingerprint-identical, and the store must end every
//! run with zero leaked page refs. Restore-phase wall times ride along
//! informationally.

use crate::report::{fmt_bytes, Table};
use crate::workloads::boot_fleet;
use dynacut::{
    Downtime, DynaCut, FaultPolicy, Feature, FleetOptions, Phase, RewritePlan,
};
use dynacut_apps::redis;

/// Replicas in the headline comparison.
pub const FLEET_SIZE: usize = 8;

/// Replicas in the scaling reference point.
pub const SMALL_FLEET: usize = 2;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-restore-v1";

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "fleet_size",
    "small_fleet_size",
    "zero_copy",
    "copying",
    "zero_copy_small",
    "copying_small",
    "copied_bytes_ratio",
    "fingerprints_match",
    "refcount_leaked_bytes",
];

/// One restore mode's measurements over one fleet size.
#[derive(Debug, Clone)]
pub struct RestoreRun {
    /// Replica count of this run.
    pub fleet_size: usize,
    /// Whether the engine ran its default zero-copy restore.
    pub zero_copy: bool,
    /// Page bytes the restore phases physically copied, fleet-wide —
    /// the deterministic cost the gates compare.
    pub restore_copied_bytes: usize,
    /// Page bytes copied inside freeze windows (dump side), for scale.
    pub frozen_page_bytes: usize,
    /// Restore-phase (prepare + commit) wall time summed over the
    /// fleet, nanoseconds. Informational: host timing, not gated.
    pub restore_wall_ns: u64,
    /// `|logical − stored|` page bytes in the session's store after the
    /// run: any live page ref not owned by a stored checkpoint is a
    /// leak. Must be zero.
    pub refcount_leaked_bytes: usize,
    /// Full kernel fingerprint after the run, for cross-mode parity.
    pub fingerprint: String,
}

/// The whole figure: both modes at both fleet sizes plus the derived
/// gate values.
#[derive(Debug, Clone)]
pub struct RestoreFigure {
    /// Zero-copy at [`FLEET_SIZE`].
    pub zero_copy: RestoreRun,
    /// Copying at [`FLEET_SIZE`].
    pub copying: RestoreRun,
    /// Zero-copy at [`SMALL_FLEET`].
    pub zero_copy_small: RestoreRun,
    /// Copying at [`SMALL_FLEET`].
    pub copying_small: RestoreRun,
    /// `copying.restore_copied_bytes / zero_copy.restore_copied_bytes`.
    pub copied_bytes_ratio: f64,
    /// Whether the two headline kernels fingerprint-match.
    pub fingerprints_match: bool,
}

/// Boots a fleet, serves the fixed traffic dose, customizes it once
/// (disable SET, redirect policy) under the requested restore mode, and
/// reads the deterministic byte accounting off the report and the
/// session store.
pub fn measure(fleet_size: usize, zero_copy: bool) -> RestoreRun {
    let mut fleet = boot_fleet(fleet_size);
    for index in 0..12 {
        let request = match index % 3 {
            0 => format!("SET key{index} v{index}\n"),
            1 => format!("GET key{index}\n"),
            _ => "PING\n".to_owned(),
        };
        let reply = fleet.request(request.as_bytes());
        assert!(!reply.is_empty(), "fleet serves before the cycle");
    }
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    if !zero_copy {
        dynacut = dynacut.with_copying_restore();
    }
    let feature = Feature::from_function("SET", &fleet.exe, "rd_cmd_set")
        .unwrap()
        .redirect_to_function(&fleet.exe, redis::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let groups = fleet.groups.clone();
    let report = dynacut
        .customize_fleet(&mut fleet.kernel, &groups, &plan, &FleetOptions::default())
        .expect("fleet customize");
    let restore_wall_ns = report
        .procs
        .values()
        .flat_map(|proc_report| proc_report.phases.iter())
        .filter(|(phase, _)| matches!(phase, Phase::RestorePrepare | Phase::RestoreCommit))
        .map(|(_, elapsed)| elapsed.as_nanos() as u64)
        .sum();
    let store = dynacut.store();
    RestoreRun {
        fleet_size,
        zero_copy,
        restore_copied_bytes: report.totals.restore_copied_bytes,
        frozen_page_bytes: report.totals.frozen_page_bytes,
        restore_wall_ns,
        refcount_leaked_bytes: store
            .logical_pages_bytes()
            .abs_diff(store.stored_pages_bytes()),
        fingerprint: fleet.kernel.state_fingerprint(),
    }
}

/// Runs all four configurations and derives the gate values.
pub fn run() -> RestoreFigure {
    let zero_copy = measure(FLEET_SIZE, true);
    let copying = measure(FLEET_SIZE, false);
    let zero_copy_small = measure(SMALL_FLEET, true);
    let copying_small = measure(SMALL_FLEET, false);
    let copied_bytes_ratio =
        copying.restore_copied_bytes as f64 / zero_copy.restore_copied_bytes.max(1) as f64;
    let fingerprints_match = zero_copy.fingerprint == copying.fingerprint;
    RestoreFigure {
        zero_copy,
        copying,
        zero_copy_small,
        copying_small,
        copied_bytes_ratio,
        fingerprints_match,
    }
}

fn run_json(key: &str, run: &RestoreRun) -> String {
    format!(
        concat!(
            "  \"{key}\": {{\n",
            "    \"fleet_size\": {fleet_size},\n",
            "    \"zero_copy\": {zero_copy},\n",
            "    \"restore_copied_bytes\": {copied},\n",
            "    \"frozen_page_bytes\": {frozen},\n",
            "    \"restore_wall_ns\": {wall},\n",
            "    \"refcount_leaked_bytes\": {leaked}\n",
            "  }}"
        ),
        key = key,
        fleet_size = run.fleet_size,
        zero_copy = run.zero_copy,
        copied = run.restore_copied_bytes,
        frozen = run.frozen_page_bytes,
        wall = run.restore_wall_ns,
        leaked = run.refcount_leaked_bytes,
    )
}

/// Serialises the figure as the `dynacut-restore-v1` JSON document.
pub fn to_json(figure: &RestoreFigure) -> String {
    let leaked = figure.zero_copy.refcount_leaked_bytes
        + figure.copying.refcount_leaked_bytes
        + figure.zero_copy_small.refcount_leaked_bytes
        + figure.copying_small.refcount_leaked_bytes;
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"fleet_size\": {fleet_size},\n",
            "  \"small_fleet_size\": {small},\n",
            "{zero_copy},\n",
            "{copying},\n",
            "{zero_copy_small},\n",
            "{copying_small},\n",
            "  \"copied_bytes_ratio\": {ratio:.4},\n",
            "  \"fingerprints_match\": {fingerprints},\n",
            "  \"refcount_leaked_bytes\": {leaked}\n",
            "}}\n"
        ),
        schema = SCHEMA,
        fleet_size = FLEET_SIZE,
        small = SMALL_FLEET,
        zero_copy = run_json("zero_copy", &figure.zero_copy),
        copying = run_json("copying", &figure.copying),
        zero_copy_small = run_json("zero_copy_small", &figure.zero_copy_small),
        copying_small = run_json("copying_small", &figure.copying_small),
        ratio = figure.copied_bytes_ratio,
        fingerprints = figure.fingerprints_match,
        leaked = leaked,
    )
}

/// Checks the gates CI relies on — all deterministic byte counts:
///
/// * every required key appears in the document,
/// * the headline copying restore moved ≥ 5× the bytes the zero-copy
///   restore did (the acceptance ratio),
/// * the two headline kernels are fingerprint-identical,
/// * no run leaked a single page ref,
/// * restore cost scales with rewritten pages, not resident set: the
///   zero-copy cost stays within 2× from 2 to 8 replicas while the
///   copying cost at least triples.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &RestoreFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.copied_bytes_ratio < 5.0 {
        return Err(format!(
            "copying/zero-copy byte ratio {:.2} < 5x at {} replicas",
            figure.copied_bytes_ratio, FLEET_SIZE
        ));
    }
    if !figure.fingerprints_match {
        return Err("restore modes diverged: kernels not fingerprint-identical".to_owned());
    }
    for run in [
        &figure.zero_copy,
        &figure.copying,
        &figure.zero_copy_small,
        &figure.copying_small,
    ] {
        if run.refcount_leaked_bytes != 0 {
            return Err(format!(
                "{} bytes of leaked page refs ({} replicas, zero_copy={})",
                run.refcount_leaked_bytes, run.fleet_size, run.zero_copy
            ));
        }
        if run.restore_copied_bytes == 0 {
            return Err(format!(
                "no restore bytes accounted ({} replicas, zero_copy={})",
                run.fleet_size, run.zero_copy
            ));
        }
    }
    if figure.zero_copy.restore_copied_bytes > 2 * figure.zero_copy_small.restore_copied_bytes {
        return Err(format!(
            "zero-copy restore cost grew with the fleet: {} bytes at {} \
             replicas vs {} at {}",
            figure.zero_copy.restore_copied_bytes,
            FLEET_SIZE,
            figure.zero_copy_small.restore_copied_bytes,
            SMALL_FLEET
        ));
    }
    if figure.copying.restore_copied_bytes < 3 * figure.copying_small.restore_copied_bytes {
        return Err(format!(
            "copying restore cost failed to scale with the fleet: {} bytes \
             at {} replicas vs {} at {}",
            figure.copying.restore_copied_bytes,
            FLEET_SIZE,
            figure.copying_small.restore_copied_bytes,
            SMALL_FLEET
        ));
    }
    Ok(())
}

/// Prints the mode × size table, writes `results/restore.json`, and
/// panics if the document violates the gates (the CI check).
pub fn print() {
    println!(
        "== Restore: zero-copy CoW vs copying restore, {FLEET_SIZE}-replica Redis fleet ==\n"
    );
    let figure = run();
    let mut table = Table::new(&["mode", "replicas", "restore copied", "frozen", "restore wall"]);
    for run in [
        &figure.zero_copy_small,
        &figure.zero_copy,
        &figure.copying_small,
        &figure.copying,
    ] {
        table.row(&[
            if run.zero_copy { "zero-copy" } else { "copying" }.to_owned(),
            run.fleet_size.to_string(),
            fmt_bytes(run.restore_copied_bytes as u64),
            fmt_bytes(run.frozen_page_bytes as u64),
            crate::report::fmt_duration(std::time::Duration::from_nanos(run.restore_wall_ns)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ncopying moved {:.1}x the bytes at {} replicas; fingerprints match: {}",
        figure.copied_bytes_ratio, FLEET_SIZE, figure.fingerprints_match,
    );
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("restore JSON failed gate validation: {violation}");
    }
    let path = "results/restore.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claims, end to end: ≥ 5× fewer bytes moved at 8
    /// replicas, fingerprint parity across modes, zero leaked refs,
    /// flat zero-copy scaling — and the validator catches tampering.
    #[test]
    fn restore_figure_meets_the_acceptance_gates() {
        let figure = run();
        let json = to_json(&figure);
        validate(&json, &figure).unwrap_or_else(|violation| panic!("gate failed: {violation}"));
        assert!(
            figure.copied_bytes_ratio >= 5.0,
            "ratio {:.2}",
            figure.copied_bytes_ratio
        );
        assert!(figure.fingerprints_match);

        let mut tampered = figure.clone();
        tampered.fingerprints_match = false;
        assert!(validate(&to_json(&tampered), &tampered).is_err());
        let mut tampered = figure.clone();
        tampered.zero_copy.refcount_leaked_bytes = 4096;
        assert!(validate(&to_json(&tampered), &tampered).is_err());
        let mut tampered = figure;
        tampered.copied_bytes_ratio = 1.5;
        assert!(validate(&to_json(&tampered), &tampered).is_err());
    }
}
