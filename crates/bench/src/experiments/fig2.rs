//! Figure 2: visualization of process memory footprints — executed,
//! unused and initialization-only basic blocks for `605.mcf_s` and
//! Lighttpd.

use crate::workloads::{boot_server, boot_spec, Server, Workload};
use dynacut_analysis::{init_only_blocks, BlockKey, CovGraph};
use dynacut_apps::spec;

/// Liveness classification of one binary's basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct LivenessMap {
    /// Program name.
    pub name: String,
    /// Total blocks in the binary.
    pub total: usize,
    /// Blocks never executed (gray in the paper's figure).
    pub unused: usize,
    /// Blocks executed only during initialization (red).
    pub init_only: usize,
    /// Blocks executed while serving/computing (blue).
    pub serving: usize,
    /// One character per block in address order: `.` unused, `I` init,
    /// `#` serving.
    pub ascii: String,
}

impl LivenessMap {
    /// Fraction of blocks never executed.
    pub fn unused_fraction(&self) -> f64 {
        self.unused as f64 / self.total as f64
    }

    /// Fraction of *executed* blocks that are initialization-only.
    pub fn init_fraction_of_executed(&self) -> f64 {
        let executed = self.init_only + self.serving;
        if executed == 0 {
            return 0.0;
        }
        self.init_only as f64 / executed as f64
    }
}

fn classify(workload: &Workload, module: &str, init: &CovGraph, serving: &CovGraph) -> LivenessMap {
    let image = &workload.exe;
    let init_only = init_only_blocks(init, serving);
    let mut unused = 0;
    let mut init_count = 0;
    let mut serving_count = 0;
    let mut ascii = String::with_capacity(image.blocks.len());
    for block in &image.blocks {
        let key = BlockKey {
            module: module.to_owned(),
            offset: block.addr,
            size: block.size,
        };
        if serving.contains(&key) {
            serving_count += 1;
            ascii.push('#');
        } else if init_only.contains(&key) || init.contains(&key) {
            init_count += 1;
            ascii.push('I');
        } else {
            unused += 1;
            ascii.push('.');
        }
    }
    LivenessMap {
        name: module.to_owned(),
        total: image.blocks.len(),
        unused,
        init_only: init_count,
        serving: serving_count,
        ascii,
    }
}

/// Runs the experiment: traces `605.mcf_s` to completion and Lighttpd
/// through a read-serving phase, and classifies every block.
pub fn run() -> Vec<LivenessMap> {
    let mut maps = Vec::new();

    // 605.mcf_s: init phase then the compute loop to completion.
    let program = spec::by_name("605.mcf_s").expect("known benchmark");
    let mut workload = boot_spec(&program);
    let tracer = workload.tracer.clone().expect("tracer installed");
    let init = CovGraph::from_log(&tracer.nudge());
    let pid = workload.pids[0];
    workload.kernel.run_until_exit(pid, 2_000_000_000);
    let serving = CovGraph::from_log(&tracer.snapshot());
    maps.push(classify(&workload, "605.mcf_s", &init, &serving));

    // Lighttpd: init phase, then a read workload.
    let mut workload = boot_server(Server::Lighttpd, true);
    let tracer = workload.tracer.clone().expect("tracer installed");
    let init = CovGraph::from_log(&tracer.nudge());
    workload.exercise_http_read_workload(10);
    let serving = CovGraph::from_log(&tracer.snapshot());
    maps.push(classify(&workload, "lighttpd", &init, &serving));

    maps
}

/// Prints the figure as block counts plus an ASCII footprint map.
pub fn print() {
    println!("== Figure 2: basic-block liveness maps ==");
    for map in run() {
        println!(
            "\n{}: {} blocks — unused {} ({:.0}%), init-only {}, serving {}",
            map.name,
            map.total,
            map.unused,
            100.0 * map.unused_fraction(),
            map.init_only,
            map.serving
        );
        // Wrap the map at 96 chars per line.
        for chunk in map.ascii.as_bytes().chunks(96) {
            println!("  {}", String::from_utf8_lossy(chunk));
        }
    }
    println!("\nlegend: '.' never executed (gray)  'I' init-only (red)  '#' serving (blue)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_maps_show_significant_unused_code() {
        let maps = run();
        assert_eq!(maps.len(), 2);
        let lighttpd = maps.iter().find(|m| m.name == "lighttpd").unwrap();
        // "a significant percentage of basic blocks has never been
        // executed" (paper §2).
        assert!(
            lighttpd.unused_fraction() > 0.3,
            "lighttpd unused fraction {}",
            lighttpd.unused_fraction()
        );
        assert!(lighttpd.init_only > 0, "init-only blocks exist");
        assert!(lighttpd.serving > 0, "serving blocks exist");
        // mcf has almost no unused code (tiny program, everything runs).
        let mcf = maps.iter().find(|m| m.name == "605.mcf_s").unwrap();
        assert!(mcf.unused_fraction() < lighttpd.unused_fraction());
        assert_eq!(mcf.ascii.len(), mcf.total);
    }
}
