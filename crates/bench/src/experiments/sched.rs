//! The scheduler experiment: serving tail latency under the preemptive
//! MLFQ versus the cooperative round-robin oracle while customize-class
//! guest work churns in the background.
//!
//! Each run boots an N-replica Redis fleet, turns a small slice of it
//! into compute-bound "crunchers" by feeding them long pipelined
//! command blobs, and tags those replicas [`SchedClass::Background`] —
//! the class the customize engine pins on cycle-driven guest work. A
//! sequence of fresh-connection `PING` probes then measures serving
//! latency on the deterministic guest clock:
//!
//! * **MLFQ** — the woken acceptor dispatches at level 0 ahead of the
//!   background crunchers, so the probe's p99 stays flat as the fleet
//!   (and its cruncher share) grows, and the wait-object registry means
//!   a wake costs one list pop, not an O(N) scan;
//! * **round-robin** — every probe waits out a full slice per runnable
//!   cruncher (and the accept wake is a thundering herd over every
//!   parked replica), so the p99 grows with the fleet.
//!
//! Emits `results/sched.json` (`dynacut-sched-v1`), schema-gated by CI:
//! the MLFQ p99 must stay within 2x from the smallest to the largest
//! fleet, the round-robin p99 must degrade by at least 2x over the same
//! span, and MLFQ wakeups must stay flat across fleet sizes — O(1) per
//! probe, never scaling with N the way the oracle's scans do.

use crate::report::{fmt_duration, Table};
use crate::workloads::boot_fleet;
use dynacut_vm::{Pid, SchedClass, SchedPolicy};
use std::time::Duration;

/// Fleet sizes the headline figure sweeps.
pub const FLEET_SIZES: &[usize] = &[100, 250, 1000];

/// Serving probes per (size, policy) cell.
pub const PROBES: usize = 40;

/// Pump chunk while probing: bounds the guest-clock quantisation of a
/// measured latency to a couple of chunks.
pub const PROBE_PUMP_NS: u64 = 500;

/// Pipelined commands per cruncher blob — enough dispatch work that no
/// cruncher drains before the probe sequence ends.
const CRUNCH_CMDS: usize = 20_000;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-sched-v1";

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "probes",
    "rows",
    "fleet_size",
    "crunchers",
    "mlfq_p50_ns",
    "mlfq_p99_ns",
    "rr_p50_ns",
    "rr_p99_ns",
    "wakeups",
    "quanta",
];

/// Compute-bound replicas for a fleet of `fleet_size`: a fixed share,
/// so the background load scales with the fleet the way a fleet-wide
/// customize cycle's guest work does.
pub fn crunchers_for(fleet_size: usize) -> usize {
    (fleet_size / 50).max(2)
}

/// One policy's latency cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyCell {
    /// Median probe latency, guest nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile probe latency, guest nanoseconds.
    pub p99_ns: u64,
    /// `sched.wakeups` over the probe window (0 under round-robin —
    /// the oracle has no registry to count).
    pub wakeups: u64,
    /// `sched.quanta` over the probe window (0 under round-robin).
    pub quanta: u64,
}

/// One fleet size's MLFQ-versus-round-robin comparison.
#[derive(Debug, Clone, Copy)]
pub struct SizeRow {
    /// Replica count.
    pub fleet_size: usize,
    /// Compute-bound replicas among them.
    pub crunchers: usize,
    /// The preemptive scheduler's cell.
    pub mlfq: PolicyCell,
    /// The cooperative oracle's cell.
    pub rr: PolicyCell,
}

/// The whole figure.
#[derive(Debug, Clone)]
pub struct SchedFigure {
    /// Probes per cell.
    pub probes: usize,
    /// One row per fleet size, ascending.
    pub rows: Vec<SizeRow>,
}

/// Boots a fresh fleet, loads its crunchers, and measures one policy
/// cell. A fresh fleet per cell keeps the two policies' background
/// load identical — reusing one fleet would hand the second policy
/// half-drained blobs.
pub fn measure(fleet_size: usize, policy: SchedPolicy) -> PolicyCell {
    let mut fleet = boot_fleet(fleet_size);
    fleet.kernel.set_scheduler(policy);
    fleet.kernel.set_pump_chunk_ns(PROBE_PUMP_NS);

    // Feed the crunchers: each pipelined blob keeps one replica
    // dispatching commands for far longer than the probe sequence
    // lasts. Pumping between feeds lets each accept land before the
    // next connection arrives, so the blobs spread over distinct
    // replicas.
    let blob = "PING\n".repeat(CRUNCH_CMDS);
    for _ in 0..crunchers_for(fleet_size) {
        let conn = fleet.kernel.client_connect(fleet.port).expect("listening");
        fleet.kernel.client_send(conn, blob.as_bytes()).expect("send");
        fleet.kernel.run_for(2_000);
    }
    // Tag the crunching replicas Background — exactly the class the
    // customize engine pins on cycle-driven guest work. The oracle
    // ignores the class; the tag is applied either way so the two
    // cells run the same configuration.
    let busy: Vec<Pid> = fleet
        .kernel
        .pids()
        .into_iter()
        .filter(|&pid| {
            fleet
                .kernel
                .process(pid)
                .map(|proc| proc.is_runnable())
                .unwrap_or(false)
        })
        .collect();
    assert!(!busy.is_empty(), "cruncher blobs left no replica runnable");
    for &pid in &busy {
        fleet.kernel.set_sched_class(pid, SchedClass::Background);
    }

    let metrics_before = (
        fleet.kernel.flight().metrics().counter("sched.wakeups"),
        fleet.kernel.flight().metrics().counter("sched.quanta"),
    );
    let mut latencies = Vec::with_capacity(PROBES);
    for _ in 0..PROBES {
        let conn = fleet.kernel.client_connect(fleet.port).expect("listening");
        let sent_at = fleet.kernel.clock_ns();
        let reply = fleet
            .kernel
            .client_request(conn, b"PING\n", 5_000_000)
            .expect("probe served");
        assert!(!reply.is_empty(), "probe got a reply");
        latencies.push(fleet.kernel.clock_ns() - sent_at);
        let _ = fleet.kernel.client_close(conn);
        // Think time between probes: the serving replica re-parks in
        // accept before the next probe arrives.
        fleet.kernel.run_for(2_000);
    }
    latencies.sort_unstable();
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    PolicyCell {
        p50_ns: p50,
        p99_ns: p99,
        wakeups: fleet.kernel.flight().metrics().counter("sched.wakeups") - metrics_before.0,
        quanta: fleet.kernel.flight().metrics().counter("sched.quanta") - metrics_before.1,
    }
}

/// Runs the sweep over `sizes` and shapes the figure.
pub fn run(sizes: &[usize]) -> SchedFigure {
    let rows = sizes
        .iter()
        .map(|&fleet_size| SizeRow {
            fleet_size,
            crunchers: crunchers_for(fleet_size),
            mlfq: measure(fleet_size, SchedPolicy::Mlfq),
            rr: measure(fleet_size, SchedPolicy::RoundRobin),
        })
        .collect();
    SchedFigure {
        probes: PROBES,
        rows,
    }
}

/// Serialises the figure as the `dynacut-sched-v1` JSON document.
pub fn to_json(figure: &SchedFigure) -> String {
    let rows: Vec<String> = figure
        .rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"fleet_size\": {size},\n",
                    "      \"crunchers\": {crunchers},\n",
                    "      \"mlfq_p50_ns\": {mp50},\n",
                    "      \"mlfq_p99_ns\": {mp99},\n",
                    "      \"rr_p50_ns\": {rp50},\n",
                    "      \"rr_p99_ns\": {rp99},\n",
                    "      \"wakeups\": {wakeups},\n",
                    "      \"quanta\": {quanta}\n",
                    "    }}"
                ),
                size = row.fleet_size,
                crunchers = row.crunchers,
                mp50 = row.mlfq.p50_ns,
                mp99 = row.mlfq.p99_ns,
                rp50 = row.rr.p50_ns,
                rp99 = row.rr.p99_ns,
                wakeups = row.mlfq.wakeups,
                quanta = row.mlfq.quanta,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"probes\": {probes},\n",
            "  \"rows\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        schema = SCHEMA,
        probes = figure.probes,
        rows = rows.join(",\n"),
    )
}

/// Quantisation floor for the flatness gate: a probe latency is only
/// resolved to a couple of pump chunks plus a dispatch quantum, so two
/// small numbers an epsilon apart must not trip a ratio gate.
const FLATNESS_FLOOR_NS: u64 = 4 * PROBE_PUMP_NS;

/// Checks the claims CI relies on: every required key appears, rows
/// cover ascending fleet sizes, the MLFQ p99 stays within 2x across the
/// sweep (above the quantisation floor), the round-robin p99 degrades
/// by at least 2x over the same span and loses to the MLFQ at the
/// largest size, and MLFQ wakeups stay flat from the smallest to the
/// largest fleet (each probe costs O(1) wake-list pops, so the count
/// must not scale with N), never exceeding the quanta they gate.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, figure: &SchedFigure) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if figure.rows.len() < 2 {
        return Err("need at least two fleet sizes to compare".to_owned());
    }
    if !figure.rows.windows(2).all(|w| w[0].fleet_size < w[1].fleet_size) {
        return Err("rows must sweep ascending fleet sizes".to_owned());
    }
    let (first, last) = (figure.rows[0], *figure.rows.last().unwrap());
    for row in &figure.rows {
        if row.mlfq.p99_ns == 0 || row.rr.p99_ns == 0 {
            return Err(format!("fleet {}: empty latency cell", row.fleet_size));
        }
        if row.mlfq.quanta == 0 {
            return Err(format!("fleet {}: MLFQ burned no quanta", row.fleet_size));
        }
        if row.mlfq.wakeups > row.mlfq.quanta {
            return Err(format!(
                "fleet {}: {} wakeups against {} quanta — the registry is polling",
                row.fleet_size, row.mlfq.wakeups, row.mlfq.quanta
            ));
        }
    }
    if last.mlfq.wakeups > 2 * first.mlfq.wakeups.max(figure.probes as u64) {
        return Err(format!(
            "MLFQ wakeups grew {} -> {} from fleet {} to {} — wakes are \
             scaling with the fleet, not with the probes",
            first.mlfq.wakeups, last.mlfq.wakeups, first.fleet_size, last.fleet_size
        ));
    }
    if last.mlfq.p99_ns > 2 * first.mlfq.p99_ns.max(FLATNESS_FLOOR_NS) {
        return Err(format!(
            "MLFQ p99 grew {} -> {} ns from fleet {} to {} — not flat within 2x",
            first.mlfq.p99_ns, last.mlfq.p99_ns, first.fleet_size, last.fleet_size
        ));
    }
    if last.rr.p99_ns < 2 * first.rr.p99_ns {
        return Err(format!(
            "round-robin p99 only moved {} -> {} ns from fleet {} to {} — \
             expected at least 2x degradation",
            first.rr.p99_ns, last.rr.p99_ns, first.fleet_size, last.fleet_size
        ));
    }
    if last.rr.p99_ns < 2 * last.mlfq.p99_ns {
        return Err(format!(
            "at fleet {} the round-robin p99 ({} ns) is not at least 2x the \
             MLFQ p99 ({} ns)",
            last.fleet_size, last.rr.p99_ns, last.mlfq.p99_ns
        ));
    }
    Ok(())
}

/// Prints the sweep table, writes `results/sched.json`, and panics if
/// the document violates the schema (the CI gate).
pub fn print() {
    println!(
        "== Sched: serving p99 under MLFQ vs round-robin, \
         background-heavy Redis fleets ==\n"
    );
    let figure = run(FLEET_SIZES);
    let mut table = Table::new(&[
        "fleet",
        "crunchers",
        "mlfq p50",
        "mlfq p99",
        "rr p50",
        "rr p99",
        "wakeups/quanta",
    ]);
    for row in &figure.rows {
        table.row(&[
            row.fleet_size.to_string(),
            row.crunchers.to_string(),
            fmt_duration(Duration::from_nanos(row.mlfq.p50_ns)),
            fmt_duration(Duration::from_nanos(row.mlfq.p99_ns)),
            fmt_duration(Duration::from_nanos(row.rr.p50_ns)),
            fmt_duration(Duration::from_nanos(row.rr.p99_ns)),
            format!("{}/{}", row.mlfq.wakeups, row.mlfq.quanta),
        ]);
    }
    print!("{}", table.render());
    let (first, last) = (figure.rows[0], *figure.rows.last().unwrap());
    println!(
        "\nmlfq p99 {} -> {} ({}x), rr p99 {} -> {} ({}x) over {}x fleet growth",
        fmt_duration(Duration::from_nanos(first.mlfq.p99_ns)),
        fmt_duration(Duration::from_nanos(last.mlfq.p99_ns)),
        last.mlfq.p99_ns / first.mlfq.p99_ns.max(1),
        fmt_duration(Duration::from_nanos(first.rr.p99_ns)),
        fmt_duration(Duration::from_nanos(last.rr.p99_ns)),
        last.rr.p99_ns / first.rr.p99_ns.max(1),
        last.fleet_size / first.fleet_size.max(1),
    );
    let json = to_json(&figure);
    if let Err(violation) = validate(&json, &figure) {
        panic!("sched JSON failed schema validation: {violation}");
    }
    let path = "results/sched.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small sweep is enough to see the separation: the MLFQ's probe
    /// latency does not grow with the cruncher count, the oracle's
    /// does, and the JSON carries every schema key.
    #[test]
    fn small_sweep_separates_the_policies_and_validates() {
        let figure = run(&[16, 64]);
        let json = to_json(&figure);
        for key in REQUIRED_KEYS {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        let (first, last) = (figure.rows[0], *figure.rows.last().unwrap());
        assert!(last.mlfq.quanta > 0);
        assert!(
            last.mlfq.wakeups <= last.mlfq.quanta,
            "{} wakeups vs {} quanta",
            last.mlfq.wakeups,
            last.mlfq.quanta
        );
        assert!(
            last.mlfq.wakeups <= 2 * first.mlfq.wakeups.max(PROBES as u64),
            "wakeups grew with the fleet: {} -> {}",
            first.mlfq.wakeups,
            last.mlfq.wakeups
        );
        assert!(
            last.rr.p99_ns >= last.mlfq.p99_ns,
            "rr p99 {} beat mlfq p99 {} at fleet 64",
            last.rr.p99_ns,
            last.mlfq.p99_ns
        );
    }

    #[test]
    fn tampering_is_caught() {
        let mut figure = SchedFigure {
            probes: PROBES,
            rows: vec![
                SizeRow {
                    fleet_size: 16,
                    crunchers: 2,
                    mlfq: PolicyCell { p50_ns: 900, p99_ns: 1_500, wakeups: 50, quanta: 4_000 },
                    rr: PolicyCell { p50_ns: 1_500, p99_ns: 3_000, ..Default::default() },
                },
                SizeRow {
                    fleet_size: 64,
                    crunchers: 2,
                    mlfq: PolicyCell { p50_ns: 900, p99_ns: 1_600, wakeups: 60, quanta: 5_000 },
                    rr: PolicyCell { p50_ns: 4_000, p99_ns: 8_000, ..Default::default() },
                },
            ],
        };
        let json = to_json(&figure);
        validate(&json, &figure).expect("healthy figure validates");

        // A polling registry (wakeups rivaling quanta) is rejected.
        figure.rows[1].mlfq.wakeups = figure.rows[1].mlfq.quanta;
        assert!(validate(&to_json(&figure), &figure).is_err());
        figure.rows[1].mlfq.wakeups = 60;

        // A p99 that grows with the fleet under MLFQ is rejected.
        figure.rows[1].mlfq.p99_ns = 10_000;
        assert!(validate(&to_json(&figure), &figure).is_err());
    }
}
