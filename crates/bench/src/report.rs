//! Table formatting and simple statistics for the harness output.

use std::time::Duration;

/// Mean and standard deviation of a sample of durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Population standard deviation.
    pub stddev: Duration,
}

/// Computes [`Stats`] over a sample.
pub fn stats(samples: &[Duration]) -> Stats {
    if samples.is_empty() {
        return Stats {
            mean: Duration::ZERO,
            stddev: Duration::ZERO,
        };
    }
    let mean_ns = samples.iter().map(|d| d.as_nanos()).sum::<u128>() / samples.len() as u128;
    let variance = samples
        .iter()
        .map(|d| {
            let diff = d.as_nanos().abs_diff(mean_ns);
            diff * diff
        })
        .sum::<u128>()
        / samples.len() as u128;
    Stats {
        mean: Duration::from_nanos(mean_ns as u64),
        stddev: Duration::from_nanos((variance as f64).sqrt() as u64),
    }
}

/// A fixed-width text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(cell, width)| format!("{cell:<width$}"))
                .collect();
            format!("| {} |\n", joined.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", rule.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2} s", duration.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_identical_samples_has_zero_stddev() {
        let s = stats(&[Duration::from_micros(10); 5]);
        assert_eq!(s.mean, Duration::from_micros(10));
        assert_eq!(s.stddev, Duration::ZERO);
    }

    #[test]
    fn stats_of_empty_sample_is_zero() {
        let s = stats(&[]);
        assert_eq!(s.mean, Duration::ZERO);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut table = Table::new(&["app", "time"]);
        table.row(&["nginx".into(), "1 ms".into()]);
        table.row(&["redis".into(), "2 ms".into()]);
        let text = table.render();
        assert!(text.contains("nginx"));
        assert!(text.contains("redis"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains("s"));
    }

    #[test]
    fn byte_formatting_picks_units() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert!(fmt_bytes(4096).contains("KiB"));
        assert!(fmt_bytes(5 << 20).contains("MiB"));
    }
}
