//! The machine-readable flight report: per-phase downtime breakdown plus
//! an event-journal summary, emitted as JSON next to the text figures.
//!
//! The text tables answer "how long did it take"; this report answers it
//! in a form tooling can consume (`results/flight.json`), with the
//! schema invariants CI checks: every required key present, and the
//! per-phase durations summing to the reported total.

use crate::workloads::{boot_server, Server};
use dynacut::{Downtime, DynaCut, EventKind, FaultPolicy, Feature, RewritePlan};
use std::collections::BTreeMap;

/// Schema identifier embedded in the JSON for forward compatibility.
pub const SCHEMA: &str = "dynacut-flight-v1";

/// Top-level keys the JSON must contain (the CI schema check).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "apps",
    "app",
    "total_ns",
    "phases",
    "journal",
    "recorded",
    "dropped",
    "events",
    "counters",
];

/// One application's flight summary.
#[derive(Debug, Clone)]
pub struct FlightReport {
    /// Application name.
    pub app: String,
    /// Per-phase durations in nanoseconds, in execution order.
    pub phases: Vec<(String, u64)>,
    /// Total customize downtime: the sum of `phases` by construction.
    pub total_ns: u64,
    /// Events ever recorded by the journal (including any later evicted).
    pub recorded: u64,
    /// Events evicted from the full ring — the explicit-loss counter.
    pub dropped: u64,
    /// Event counts by kind, over the events still held.
    pub events: BTreeMap<String, u64>,
    /// The metrics registry's counters.
    pub counters: BTreeMap<String, u64>,
}

fn kind_label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::CustomizeBegin { .. } => "customize_begin",
        EventKind::CustomizeCommit => "customize_commit",
        EventKind::CustomizeRollback => "customize_rollback",
        EventKind::PhaseStart { .. } => "phase_start",
        EventKind::PhaseEnd { .. } => "phase_end",
        EventKind::ProcessPreDumped { .. } => "process_pre_dumped",
        EventKind::ProcessDumped { .. } => "process_dumped",
        EventKind::ProcessRestored => "process_restored",
        EventKind::LibraryInjected { .. } => "library_injected",
        EventKind::RollbackStep { .. } => "rollback_step",
        EventKind::VerifierReport { .. } => "verifier_report",
        EventKind::TrapHit { .. } => "trap_hit",
        EventKind::GuestMarker { .. } => "guest_marker",
        EventKind::StageScheduled { .. } => "stage_scheduled",
        EventKind::StageRetired { .. } => "stage_retired",
        _ => "other",
    }
}

fn one_app(server: Server) -> FlightReport {
    let mut workload = boot_server(server, false);
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let features: Vec<Feature> = match server {
        Server::Nginx => vec![Feature::from_function("PUT", &workload.exe, "ngx_put_handler")
            .unwrap()
            .redirect_to_function(&workload.exe, dynacut_apps::nginx::ERROR_HANDLER)
            .unwrap()],
        Server::Lighttpd => vec![Feature::from_function("PUT", &workload.exe, "lt_put_handler")
            .unwrap()
            .redirect_to_function(&workload.exe, dynacut_apps::lighttpd::ERROR_HANDLER)
            .unwrap()],
        Server::Redis => vec![Feature::from_function("SET", &workload.exe, "rd_cmd_set")
            .unwrap()
            .redirect_to_function(&workload.exe, dynacut_apps::redis::ERROR_HANDLER)
            .unwrap()],
    };
    let mut plan = RewritePlan::new()
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    for feature in features {
        plan = plan.disable(feature);
    }
    let report = dynacut
        .customize(&mut workload.kernel, &workload.pids, &plan)
        .expect("customize succeeds");

    let phases: Vec<(String, u64)> = report
        .phases
        .iter()
        .map(|(phase, elapsed)| (phase.name().to_owned(), elapsed.as_nanos() as u64))
        .collect();
    let total_ns = phases.iter().map(|(_, ns)| ns).sum();

    let flight = workload.kernel.flight();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();
    for event in flight.iter() {
        *events.entry(kind_label(&event.kind).to_owned()).or_insert(0) += 1;
    }
    FlightReport {
        app: server.module().to_owned(),
        phases,
        total_ns,
        recorded: flight.next_seq(),
        dropped: flight.dropped(),
        events,
        counters: flight
            .metrics()
            .counters()
            .map(|(name, value)| (name.to_owned(), value))
            .collect(),
    }
}

/// Runs one redirect customization per application and summarises each
/// kernel's flight recorder.
pub fn run() -> Vec<FlightReport> {
    [Server::Lighttpd, Server::Nginx, Server::Redis]
        .into_iter()
        .map(one_app)
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn map_json(map: &BTreeMap<String, u64>, indent: &str) -> String {
    if map.is_empty() {
        return "{}".to_owned();
    }
    let body: Vec<String> = map
        .iter()
        .map(|(key, value)| format!("{indent}  \"{}\": {value}", escape(key)))
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Serialises the reports as the `dynacut-flight-v1` JSON document.
pub fn to_json(reports: &[FlightReport]) -> String {
    let mut apps = Vec::new();
    for report in reports {
        let phases: Vec<String> = report
            .phases
            .iter()
            .map(|(name, ns)| format!("        {{\"phase\": \"{}\", \"ns\": {ns}}}", escape(name)))
            .collect();
        apps.push(format!(
            concat!(
                "    {{\n",
                "      \"app\": \"{app}\",\n",
                "      \"total_ns\": {total},\n",
                "      \"phases\": [\n{phases}\n      ],\n",
                "      \"journal\": {{\n",
                "        \"recorded\": {recorded},\n",
                "        \"dropped\": {dropped},\n",
                "        \"events\": {events}\n",
                "      }},\n",
                "      \"counters\": {counters}\n",
                "    }}"
            ),
            app = escape(&report.app),
            total = report.total_ns,
            phases = phases.join(",\n"),
            recorded = report.recorded,
            dropped = report.dropped,
            events = map_json(&report.events, "        "),
            counters = map_json(&report.counters, "      "),
        ));
    }
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"apps\": [\n{}\n  ]\n}}\n",
        apps.join(",\n")
    )
}

/// Checks the schema invariants CI relies on: every required key appears
/// in the serialized document, every app ran every success-path phase,
/// and each app's phase durations sum to its reported total.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(json: &str, reports: &[FlightReport]) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    if reports.is_empty() {
        return Err("no apps in report".to_owned());
    }
    for report in reports {
        let sum: u64 = report.phases.iter().map(|(_, ns)| ns).sum();
        if sum != report.total_ns {
            return Err(format!(
                "{}: phase durations sum to {sum} but total_ns is {}",
                report.app, report.total_ns
            ));
        }
        for phase in [
            "freeze",
            "dump",
            "image_edit",
            "inject",
            "restore_prepare",
            "restore_commit",
        ] {
            if !report.phases.iter().any(|(name, _)| name == phase) {
                return Err(format!("{}: phase `{phase}` missing", report.app));
            }
        }
        if report.events.get("customize_commit").copied().unwrap_or(0) != 1 {
            return Err(format!("{}: expected exactly one commit event", report.app));
        }
        if report.recorded < report.dropped {
            return Err(format!("{}: recorded < dropped", report.app));
        }
    }
    Ok(())
}

/// Prints the text summary, writes `results/flight.json`, and panics if
/// the document violates the schema (the CI gate).
pub fn print() {
    println!("== Flight report: per-phase downtime + journal summary ==\n");
    let reports = run();
    let mut table = crate::report::Table::new(&["app", "phase", "duration", "share"]);
    for report in &reports {
        for (phase, ns) in &report.phases {
            table.row(&[
                report.app.clone(),
                phase.clone(),
                crate::report::fmt_duration(std::time::Duration::from_nanos(*ns)),
                format!("{:.1}%", *ns as f64 * 100.0 / report.total_ns.max(1) as f64),
            ]);
        }
        table.row(&[
            report.app.clone(),
            "total".to_owned(),
            crate::report::fmt_duration(std::time::Duration::from_nanos(report.total_ns)),
            "100.0%".to_owned(),
        ]);
    }
    print!("{}", table.render());
    for report in &reports {
        println!(
            "\n{}: journal recorded {} events ({} dropped), counters: {}",
            report.app,
            report.recorded,
            report.dropped,
            report
                .counters
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    let json = to_json(&reports);
    if let Err(violation) = validate(&json, &reports) {
        panic!("flight JSON failed schema validation: {violation}");
    }
    let path = "results/flight.json";
    if let Err(err) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json))
    {
        eprintln!("\n(could not write {path}: {err})");
    } else {
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_json_is_schema_valid_and_phases_sum_to_total() {
        let reports = run();
        assert_eq!(reports.len(), 3);
        let json = to_json(&reports);
        validate(&json, &reports).expect("schema valid");
        // The journal must show the whole success path and no rollback.
        for report in &reports {
            assert_eq!(report.events.get("customize_begin"), Some(&1));
            assert_eq!(report.events.get("customize_commit"), Some(&1));
            assert_eq!(report.events.get("customize_rollback"), None);
            assert_eq!(report.events.get("rollback_step"), None);
            assert!(report.events.get("process_dumped").copied().unwrap_or(0) >= 1);
            assert!(report.events.get("process_restored").copied().unwrap_or(0) >= 1);
            assert!(report.counters.get("customize.commits") == Some(&1));
            assert!(report.counters.get("blocks_patched").copied().unwrap_or(0) >= 1);
        }
    }

    #[test]
    fn validate_rejects_mismatched_total() {
        let mut reports = run();
        reports[0].total_ns += 1;
        let json = to_json(&reports);
        assert!(validate(&json, &reports).is_err());
    }
}
