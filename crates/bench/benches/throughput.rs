//! Criterion bench for Figure 8's substrate: guest request throughput —
//! vanilla vs post-customization (the paper's "almost zero runtime
//! overhead once restored" claim, in contrast to DBI code caches).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_bench::workloads::{boot_server, Server, Workload};

fn customized_redis() -> Workload {
    let mut workload = boot_server(Server::Redis, false);
    let mut dynacut = DynaCut::new(workload.registry.clone());
    let feature = Feature::from_function("SET", &workload.exe, "rd_cmd_set")
        .unwrap()
        .redirect_to_function(&workload.exe, dynacut_apps::redis::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
        .expect("customize");
    workload
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_request_throughput");
    group.sample_size(10);

    group.bench_function("redis_get_vanilla", |b| {
        b.iter_batched(
            || boot_server(Server::Redis, false),
            |mut workload| {
                for _ in 0..50 {
                    let reply = workload.request(b"GET missing\n");
                    assert!(!reply.is_empty());
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("redis_get_customized", |b| {
        b.iter_batched(
            customized_redis,
            |mut workload| {
                for _ in 0..50 {
                    let reply = workload.request(b"GET missing\n");
                    assert!(!reply.is_empty());
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
