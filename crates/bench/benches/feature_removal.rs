//! Criterion bench for Figure 6: end-to-end feature customization
//! (freeze → dump → rewrite → inject handler → restore) per application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_bench::workloads::{boot_server, Server};

fn plan_for(server: Server, exe: &dynacut_obj::Image) -> RewritePlan {
    let mut plan = RewritePlan::new()
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let features: Vec<(&str, &str, &str)> = match server {
        Server::Nginx => vec![
            ("PUT", "ngx_put_handler", dynacut_apps::nginx::ERROR_HANDLER),
            ("DELETE", "ngx_delete_handler", dynacut_apps::nginx::ERROR_HANDLER),
        ],
        Server::Lighttpd => vec![
            ("PUT", "lt_put_handler", dynacut_apps::lighttpd::ERROR_HANDLER),
            ("DELETE", "lt_delete_handler", dynacut_apps::lighttpd::ERROR_HANDLER),
        ],
        Server::Redis => vec![("SET", "rd_cmd_set", dynacut_apps::redis::ERROR_HANDLER)],
    };
    for (name, handler, error) in features {
        plan = plan.disable(
            Feature::from_function(name, exe, handler)
                .unwrap()
                .redirect_to_function(exe, error)
                .unwrap(),
        );
    }
    plan
}

fn bench_feature_removal(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_feature_removal");
    group.sample_size(10);
    for server in [Server::Lighttpd, Server::Nginx, Server::Redis] {
        group.bench_function(server.module(), |b| {
            b.iter_batched(
                || {
                    let workload = boot_server(server, false);
                    let plan = plan_for(server, &workload.exe);
                    let dynacut = DynaCut::new(workload.registry.clone());
                    (workload, dynacut, plan)
                },
                |(mut workload, mut dynacut, plan)| {
                    dynacut
                        .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
                        .expect("customize")
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feature_removal);
criterion_main!(benches);
