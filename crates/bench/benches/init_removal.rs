//! Criterion bench for Figure 7: initialization-code removal — dominated
//! by replacing all init-block instructions and by image size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynacut::{Downtime, DynaCut, RewritePlan};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::spec;
use dynacut_bench::workloads::{boot_server, boot_spec, Server, Workload};
use dynacut_isa::BasicBlock;

fn prepared(name: &str) -> (Workload, Vec<BasicBlock>) {
    let mut workload = match name {
        "lighttpd" => boot_server(Server::Lighttpd, true),
        "nginx" => boot_server(Server::Nginx, true),
        other => boot_spec(&spec::by_name(other).expect("known")),
    };
    let tracer = workload.tracer.clone().expect("tracer");
    let init = CovGraph::from_log(&tracer.nudge());
    if workload.port != 0 {
        workload.exercise_http_full_workload(1);
    } else {
        workload.kernel.run_for(1_000_000);
    }
    let serving = CovGraph::from_log(&tracer.snapshot());
    let blocks = init_only_blocks(&init, &serving)
        .retain_modules(&[name])
        .module_blocks(name)
        .into_iter()
        .map(|(offset, size)| BasicBlock::new(offset, size))
        .collect();
    (workload, blocks)
}

fn bench_init_removal(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_init_removal");
    group.sample_size(10);
    // One server, the smallest and the deepest-init SPEC program: the
    // paper's extremes.
    for name in ["lighttpd", "605.mcf_s", "600.perlbench_s"] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (workload, blocks) = prepared(name);
                    let dynacut = DynaCut::new(workload.registry.clone());
                    let plan = RewritePlan::new()
                        .remove_init_blocks(name, blocks)
                        .with_downtime(Downtime::None);
                    (workload, dynacut, plan)
                },
                |(mut workload, mut dynacut, plan)| {
                    dynacut
                        .customize(&mut workload.kernel, &workload.pids.clone(), &plan)
                        .expect("customize")
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init_removal);
criterion_main!(benches);
