//! Criterion bench for the checkpoint substrate: dump, serialize
//! (tmpfs write), parse, restore — the phases whose sum dominates
//! Figures 6 and 7.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynacut_bench::workloads::{boot_server, Server};
use dynacut_criu::{dump_many, restore_many, CheckpointImage, DumpOptions};

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_phases");
    group.sample_size(10);

    group.bench_function("dump_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                workload
            },
            |mut workload| {
                dump_many(&mut workload.kernel, &workload.pids.clone(), DumpOptions::default())
                    .expect("dump")
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("serialize_redis", |b| {
        let mut workload = boot_server(Server::Redis, false);
        for &pid in &workload.pids.clone() {
            workload.kernel.freeze(pid).unwrap();
        }
        let checkpoint =
            dump_many(&mut workload.kernel, &workload.pids.clone(), DumpOptions::default())
                .expect("dump");
        b.iter(|| std::hint::black_box(checkpoint.to_bytes()));
    });

    group.bench_function("parse_redis", |b| {
        let mut workload = boot_server(Server::Redis, false);
        for &pid in &workload.pids.clone() {
            workload.kernel.freeze(pid).unwrap();
        }
        let bytes =
            dump_many(&mut workload.kernel, &workload.pids.clone(), DumpOptions::default())
                .expect("dump")
                .to_bytes();
        b.iter(|| CheckpointImage::from_bytes(std::hint::black_box(&bytes)).expect("parse"));
    });

    group.bench_function("restore_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                let checkpoint = dump_many(
                    &mut workload.kernel,
                    &workload.pids.clone(),
                    DumpOptions::default(),
                )
                .expect("dump");
                for &pid in &workload.pids.clone() {
                    workload.kernel.remove_process(pid).unwrap();
                }
                (workload, checkpoint)
            },
            |(mut workload, checkpoint)| {
                restore_many(&mut workload.kernel, &checkpoint, &workload.registry)
                    .expect("restore")
            },
            BatchSize::PerIteration,
        );
    });

    // Ablation: stock-CRIU dumps (no exec pages) are smaller and faster —
    // the cost DynaCut pays for rewritable text.
    group.bench_function("dump_redis_stock_criu", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                workload
            },
            |mut workload| {
                dump_many(
                    &mut workload.kernel,
                    &workload.pids.clone(),
                    DumpOptions::stock_criu(),
                )
                .expect("dump")
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
