//! Criterion bench for the checkpoint substrate: dump, serialize
//! (tmpfs write), parse, restore — the phases whose sum dominates
//! Figures 6 and 7.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynacut_bench::workloads::{boot_server, Server};
use dynacut_criu::{
    dump_incremental, dump_many, mark_clean_after_dump, pre_dump, restore_many, CheckpointImage,
    CkptId, DumpOptions,
};

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_phases");
    group.sample_size(10);

    group.bench_function("dump_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                workload
            },
            |mut workload| {
                dump_many(&mut workload.kernel, &workload.pids.clone(), &DumpOptions::default())
                    .expect("dump")
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("serialize_redis", |b| {
        let mut workload = boot_server(Server::Redis, false);
        for &pid in &workload.pids.clone() {
            workload.kernel.freeze(pid).unwrap();
        }
        let checkpoint =
            dump_many(&mut workload.kernel, &workload.pids.clone(), &DumpOptions::default())
                .expect("dump");
        b.iter(|| std::hint::black_box(checkpoint.to_bytes()));
    });

    group.bench_function("parse_redis", |b| {
        let mut workload = boot_server(Server::Redis, false);
        for &pid in &workload.pids.clone() {
            workload.kernel.freeze(pid).unwrap();
        }
        let bytes =
            dump_many(&mut workload.kernel, &workload.pids.clone(), &DumpOptions::default())
                .expect("dump")
                .to_bytes();
        b.iter(|| CheckpointImage::from_bytes(std::hint::black_box(&bytes)).expect("parse"));
    });

    group.bench_function("restore_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                let checkpoint = dump_many(
                    &mut workload.kernel,
                    &workload.pids.clone(),
                    &DumpOptions::default(),
                )
                .expect("dump");
                for &pid in &workload.pids.clone() {
                    workload.kernel.remove_process(pid).unwrap();
                }
                (workload, checkpoint)
            },
            |(mut workload, checkpoint)| {
                restore_many(&mut workload.kernel, &checkpoint, &workload.registry)
                    .expect("restore")
            },
            BatchSize::PerIteration,
        );
    });

    // Ablation: stock-CRIU dumps (no exec pages) are smaller and faster —
    // the cost DynaCut pays for rewritable text.
    group.bench_function("dump_redis_stock_criu", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                workload
            },
            |mut workload| {
                dump_many(
                    &mut workload.kernel,
                    &workload.pids.clone(),
                    &DumpOptions::stock_criu(),
                )
                .expect("dump")
            },
            BatchSize::PerIteration,
        );
    });

    // Incremental: a dirty-page delta against a clean baseline after a
    // bit of client traffic — the payload is the residue, not the image.
    group.bench_function("dump_incremental_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                let pids = workload.pids.clone();
                for &pid in &pids {
                    workload.kernel.freeze(pid).unwrap();
                }
                let parent = dump_many(&mut workload.kernel, &pids, &DumpOptions::default())
                    .expect("baseline");
                mark_clean_after_dump(&mut workload.kernel, &pids).unwrap();
                for &pid in &pids {
                    workload.kernel.thaw(pid).unwrap();
                }
                workload.exercise_redis_workload(6);
                for &pid in &pids {
                    workload.kernel.freeze(pid).unwrap();
                }
                (workload, parent)
            },
            |(mut workload, parent)| {
                dump_incremental(
                    &mut workload.kernel,
                    &workload.pids.clone(),
                    &DumpOptions::default(),
                    CkptId(0),
                    &parent,
                )
                .expect("delta")
            },
            BatchSize::PerIteration,
        );
    });

    // The freeze-window half of the two-phase protocol: clean pages were
    // pre-copied while the guest ran; `complete` moves only the residue.
    group.bench_function("pre_dump_complete_redis", |b| {
        b.iter_batched(
            || {
                let mut workload = boot_server(Server::Redis, false);
                let pre = pre_dump(&mut workload.kernel, &workload.pids.clone()).expect("pre-dump");
                workload.exercise_redis_workload(6);
                for &pid in &workload.pids.clone() {
                    workload.kernel.freeze(pid).unwrap();
                }
                (workload, pre)
            },
            |(mut workload, pre)| {
                pre.complete(&mut workload.kernel, &workload.pids.clone(), &DumpOptions::default())
                    .expect("complete")
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
