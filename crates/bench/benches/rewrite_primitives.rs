//! Criterion bench for the rewriting primitives — the ablation DESIGN.md
//! calls out: entry-byte blocking vs whole-block wiping vs page
//! unmapping, handler-library synthesis by table size, and the
//! proportionality of code-update time to the block count (the paper's
//! "overhead incurred is almost proportional to the length of this list
//! of basic blocks").

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dynacut::{build_fault_handler, disable_in_image, BlockPolicy, Feature};
use dynacut_bench::workloads::{boot_server, Server};
use dynacut_criu::{dump, DumpOptions, ProcessImage};
use dynacut_isa::BasicBlock;

fn frozen_image() -> (ProcessImage, Vec<BasicBlock>) {
    let mut workload = boot_server(Server::Lighttpd, false);
    let pid = workload.pids[0];
    workload.kernel.freeze(pid).unwrap();
    let image = dump(&mut workload.kernel, pid, &DumpOptions::default()).unwrap();
    let blocks = workload.exe.blocks.clone();
    (image, blocks)
}

fn bench_block_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_policies");
    group.sample_size(20);
    let (image, blocks) = frozen_image();
    for (name, policy) in [
        ("entry_byte", BlockPolicy::EntryByte),
        ("wipe_blocks", BlockPolicy::WipeBlocks),
        ("unmap_pages", BlockPolicy::UnmapPages),
    ] {
        group.bench_function(name, |b| {
            let feature = Feature::new("all-cold", "lighttpd", blocks[40..240].to_vec());
            b.iter_batched(
                || image.clone(),
                |mut image| disable_in_image(&mut image, &feature, policy).expect("disable"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_code_update_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_update_scaling");
    group.sample_size(20);
    let (image, blocks) = frozen_image();
    for count in [25usize, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            let feature = Feature::new("scaled", "lighttpd", blocks[..count].to_vec());
            b.iter_batched(
                || image.clone(),
                |mut image| {
                    disable_in_image(&mut image, &feature, BlockPolicy::WipeBlocks)
                        .expect("disable")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_handler_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("handler_synthesis");
    group.sample_size(20);
    for entries in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let redirects: Vec<(u64, u64)> = (0..entries as u64)
                    .map(|i| (0x40_0000 + i * 32, 0x40_f000))
                    .collect();
                b.iter(|| build_fault_handler(std::hint::black_box(&redirects)).expect("build"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_policies,
    bench_code_update_scaling,
    bench_handler_synthesis
);
criterion_main!(benches);
