//! The decoded-block translation cache.
//!
//! Every workload in this repo bottoms out in the interpreter's
//! fetch/decode loop, which used to re-probe the VMA list and re-decode
//! every instruction on every step. Real DBI substrates (DynamoRIO, the
//! engine the paper uses for drcov tracing) get their speed from a code
//! cache of pre-decoded basic blocks. This module is that cache, sized
//! for DynaCut's defining constraint: the framework *patches trap bytes
//! into running code*, so a stale cached block that hides a freshly
//! planted `0xCC` is a correctness (and in DynaCut terms, security) bug,
//! not a performance bug.
//!
//! # Superblocks
//!
//! Dispatch cost is paid per *block*: a cache probe, a refcount bump,
//! and a page-generation check. Short blocks (server request handlers
//! average a handful of instructions between branches) amortize that
//! badly, so entries that stay hot ([`HOT_THRESHOLD`] dispatches) are
//! re-decoded as **superblocks**: the decoder chains across direct
//! branches — unconditional jumps and calls always, conditional jumps
//! by static prediction (backward = loop back-edge = taken, forward =
//! fall through) — up to [`MAX_SUPERBLOCK_INSNS`] instructions, with
//! loop bodies unrolled when the chain revisits the entry. Every
//! instruction in a superblock records its expected pc; the dispatcher
//! side-exits the moment the guest's pc disagrees (a mispredicted
//! branch), so a superblock is *pure speculation about control flow*,
//! never about instruction semantics.
//!
//! # Multi-version entries
//!
//! Keys are `(entry_pc, version)` where the version is the cache's
//! **rewrite epoch**. A customize cycle used to flush the whole cache;
//! now it carries the cache across the restore swap, seeds safe page
//! generations for byte-identical pages, and bumps the epoch
//! ([`BlockCache::bump_epoch`]). Dispatch that misses the active
//! version probes the previous one and — if its page generations still
//! validate — re-keys the entry forward (a **version swap**: no
//! re-decode). Blocks over rewritten pages can never validate (their
//! generations were seeded past every snapshot) and are re-decoded
//! under the new version, living *alongside* any still-valid pristine
//! entries. Rollback re-inserts the original process whose cache still
//! holds the pristine version under the old epoch — swapping back is
//! free.
//!
//! # Invalidation invariant (DESIGN §11)
//!
//! No cached block may survive a write, remap, protection change,
//! restore, or rewrite that overlaps it. Enforcement is
//! **page-generation-based and lazy**: [`AddressSpace`] keeps a
//! generation counter for every page the cache has registered
//! ([`AddressSpace::note_code_page`]); any mutation of such a page —
//! guest stores, host `write_unchecked`, `unmap`, `protect`,
//! `drop_page` — bumps its generation. A [`CachedBlock`] snapshots the
//! generations of every page it decodes from, and the dispatcher
//! revalidates the snapshot before executing the block (and again after
//! any memory-writing instruction inside it, so self-modifying code —
//! and a host-planted trap byte — takes effect on the very next
//! instruction, even mid-superblock). CRIU image swaps still flush: a
//! restored image may carry arbitrary foreign bytes, and only the
//! engine's customize commit knows enough to seed generations instead
//! (see `CommittedRestore::carry_block_caches`).
//!
//! The cache is **excluded from [`Kernel::state_fingerprint`]**: cached
//! and uncached execution of the same workload are bit-identical in
//! every guest-observable way, and the fingerprint enumerates exactly
//! the guest-observable fields.
//!
//! [`AddressSpace`]: crate::AddressSpace
//! [`AddressSpace::note_code_page`]: crate::AddressSpace::note_code_page
//! [`Kernel::state_fingerprint`]: crate::Kernel::state_fingerprint

use crate::mem::AddressSpace;
use dynacut_isa::Insn;
use std::collections::HashMap;
use std::sync::Arc;

/// Upper bound on instructions per basic block. Blocks end at the
/// first terminator or syscall anyway; the cap only bounds pathological
/// straight-line runs.
pub(crate) const MAX_BLOCK_INSNS: usize = 32;

/// Upper bound on instructions per superblock — the chain/unroll budget
/// once an entry goes hot.
pub(crate) const MAX_SUPERBLOCK_INSNS: usize = 256;

/// Dispatch count at which an entry is re-decoded as a superblock.
pub(crate) const HOT_THRESHOLD: u32 = 16;

/// Entries held per process before cold entries are evicted.
const MAX_CACHED_BLOCKS: usize = 4096;

/// How many of the coldest entries one capacity eviction removes.
/// Evicting a batch (instead of one) keeps the eviction scan off the
/// per-insert hot path during a cold storm.
const CAPACITY_EVICT_BATCH: usize = 512;

/// A decoded instruction run starting at one entry pc: a straight-line
/// basic block (up to the first terminator, syscall, or
/// [`MAX_BLOCK_INSNS`]) or, once hot, a superblock chained across
/// predicted-taken direct branches up to [`MAX_SUPERBLOCK_INSNS`].
#[derive(Debug)]
pub(crate) struct CachedBlock {
    /// The decoded run: `(instruction, encoded length)` pairs, in
    /// execution order from the entry pc.
    pub(crate) insns: Box<[(Insn, u8)]>,
    /// The guest address of each instruction in `insns`. For a
    /// superblock this is the dispatcher's side-exit guard: before
    /// executing instruction `i > 0`, the guest pc must equal `pcs[i]`
    /// or the block is abandoned at the current (correct) pc. For a
    /// straight-line block the guard is trivially true.
    pub(crate) pcs: Box<[u64]>,
    /// Generation snapshot of every code page the run decodes from, as
    /// `(page base, generation)` pairs. The block is valid exactly
    /// while every page still carries its snapshotted generation.
    pub(crate) pages: Vec<(u64, u64)>,
    /// Whether this run was chained across branches. Hot straight-line
    /// entries are promoted once; superblocks are never re-promoted.
    pub(crate) is_superblock: bool,
}

impl CachedBlock {
    /// Whether every page this block was decoded from still carries the
    /// generation it had at decode time.
    pub(crate) fn pages_valid(&self, mem: &AddressSpace) -> bool {
        self.pages
            .iter()
            .all(|&(base, gen)| mem.code_page_gen(base) == gen)
    }
}

/// One cache entry: the decoded block plus the dispatch profile that
/// drives superblock promotion and capacity eviction.
#[derive(Debug, Clone)]
struct Entry {
    block: Arc<CachedBlock>,
    /// Saturating dispatch count; [`HOT_THRESHOLD`] triggers promotion.
    /// Halved on every capacity eviction so ancient heat decays.
    heat: u32,
    /// The cache tick of the last dispatch — the recency half of the
    /// eviction order.
    last_hit: u64,
}

/// A per-process cache of decoded instruction blocks keyed by
/// `(entry pc, rewrite epoch)`.
///
/// Cloning a [`Process`](crate::Process) clones the cache by bumping
/// the blocks' refcounts; the page-generation snapshots stay consistent
/// because the address space (and its generation table) is cloned
/// alongside.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    blocks: HashMap<(u64, u64), Entry>,
    /// The active version: lookups and inserts use `(pc, epoch)`.
    epoch: u64,
    /// Monotonic dispatch counter backing `Entry::last_hit`.
    tick: u64,
}

impl BlockCache {
    /// Looks up the active-version entry at `pc`, bumping its dispatch
    /// profile. Returns the block and its post-bump heat. Validity is
    /// not checked — the dispatcher revalidates page generations.
    pub(crate) fn hit(&mut self, pc: u64) -> Option<(Arc<CachedBlock>, u32)> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.blocks.get_mut(&(pc, self.epoch))?;
        entry.heat = entry.heat.saturating_add(1);
        entry.last_hit = tick;
        Some((Arc::clone(&entry.block), entry.heat))
    }

    /// The active-version block at `pc` without touching the profile
    /// (tests and introspection).
    #[cfg(test)]
    pub(crate) fn get(&self, pc: u64) -> Option<&Arc<CachedBlock>> {
        self.blocks.get(&(pc, self.epoch)).map(|entry| &entry.block)
    }

    /// On a miss at the active version: if the *previous* version still
    /// holds an entry for `pc`, re-key it to the active version (heat
    /// and recency preserved) and return it — the version swap. The
    /// caller must still validate the block's page generations and
    /// [`remove`](BlockCache::remove) it if they fail.
    pub(crate) fn swap_forward(&mut self, pc: u64) -> Option<(Arc<CachedBlock>, u32)> {
        if self.epoch == 0 {
            return None;
        }
        let mut entry = self.blocks.remove(&(pc, self.epoch - 1))?;
        self.tick += 1;
        entry.heat = entry.heat.saturating_add(1);
        entry.last_hit = self.tick;
        let block = Arc::clone(&entry.block);
        let heat = entry.heat;
        self.blocks.insert((pc, self.epoch), entry);
        Some((block, heat))
    }

    /// Caches `block` under `(pc, active epoch)`, evicting a batch of
    /// the coldest entries first if the cache is at capacity. An
    /// existing entry at the key keeps its dispatch profile (superblock
    /// promotion replaces the block, not the heat). Returns the number
    /// of entries evicted for capacity (the
    /// `block_cache.capacity_evictions` metric).
    pub(crate) fn insert(&mut self, pc: u64, block: Arc<CachedBlock>) -> u64 {
        let key = (pc, self.epoch);
        let mut evicted = 0u64;
        if self.blocks.len() >= MAX_CACHED_BLOCKS && !self.blocks.contains_key(&key) {
            evicted = self.evict_coldest(CAPACITY_EVICT_BATCH);
        }
        self.tick += 1;
        let tick = self.tick;
        self.blocks
            .entry(key)
            .and_modify(|entry| entry.block = Arc::clone(&block))
            .or_insert(Entry {
                block,
                heat: 0,
                last_hit: tick,
            });
        evicted
    }

    /// Removes the `count` entries with the smallest `(heat, last_hit)`
    /// — cold first, then stale — and halves the survivors' heat so a
    /// once-hot entry cannot squat forever. Hot entries survive cap
    /// pressure by construction: a cold storm of fresh inserts ranks
    /// below anything dispatched more than a couple of times.
    fn evict_coldest(&mut self, count: usize) -> u64 {
        let mut order: Vec<(u32, u64, (u64, u64))> = self
            .blocks
            .iter()
            .map(|(&key, entry)| (entry.heat, entry.last_hit, key))
            .collect();
        order.sort_unstable();
        order.truncate(count);
        for &(_, _, key) in &order {
            self.blocks.remove(&key);
        }
        for entry in self.blocks.values_mut() {
            entry.heat /= 2;
        }
        order.len() as u64
    }

    /// Evicts the active-version entry at `pc`, if cached.
    pub(crate) fn remove(&mut self, pc: u64) {
        self.blocks.remove(&(pc, self.epoch));
    }

    /// Advances the rewrite epoch: the active version changes, so every
    /// existing entry becomes a previous-version candidate for
    /// `swap_forward` (if its pages still
    /// validate) instead of being flushed. The engine's customize
    /// commit calls this after carrying the cache across the restore
    /// swap; see `CommittedRestore::carry_block_caches`.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The active rewrite epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Evicts every cached block, all versions. CRIU image swaps call
    /// this: a restored process's text was rebuilt from images that may
    /// carry arbitrary rewrites, so nothing decoded before the swap may
    /// survive it. (The engine's customize commit instead *carries* the
    /// cache with seeded generations and bumps the epoch.)
    pub fn flush(&mut self) {
        self.blocks.clear();
    }

    /// Number of blocks currently cached, across all versions.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_obj::{Perms, PAGE_SIZE};

    fn one_page_space() -> AddressSpace {
        let mut mem = AddressSpace::new();
        mem.map(0x1000, PAGE_SIZE, Perms::RX, "text").unwrap();
        mem
    }

    fn block_over(mem: &mut AddressSpace, page: u64) -> CachedBlock {
        let gen = mem.note_code_page(page);
        CachedBlock {
            insns: vec![(Insn::Nop, 1)].into_boxed_slice(),
            pcs: vec![page].into_boxed_slice(),
            pages: vec![(page, gen)],
            is_superblock: false,
        }
    }

    #[test]
    fn block_survives_writes_to_other_pages_only() {
        let mut mem = one_page_space();
        mem.map(0x2000, PAGE_SIZE, Perms::RW, "data").unwrap();
        let block = block_over(&mut mem, 0x1000);
        assert!(block.pages_valid(&mem));
        mem.write_unchecked(0x2000, &[1]);
        assert!(block.pages_valid(&mem), "data write leaves code alone");
        mem.write_unchecked(0x1004, &[0xCC]);
        assert!(!block.pages_valid(&mem), "code write bumps the generation");
    }

    #[test]
    fn unmap_protect_and_drop_invalidate() {
        for op in 0..3 {
            let mut mem = one_page_space();
            let block = block_over(&mut mem, 0x1000);
            match op {
                0 => mem.unmap(0x1000, PAGE_SIZE).unwrap(),
                1 => mem.protect(0x1000, PAGE_SIZE, Perms::R).unwrap(),
                _ => mem.drop_page(0x1000),
            }
            assert!(!block.pages_valid(&mem), "op {op} must invalidate");
        }
    }

    #[test]
    fn generations_survive_unmap_remap() {
        // A block cached before an unmap must not revalidate after the
        // range is re-mapped: generations are never reset.
        let mut mem = one_page_space();
        let block = block_over(&mut mem, 0x1000);
        mem.unmap(0x1000, PAGE_SIZE).unwrap();
        mem.map(0x1000, PAGE_SIZE, Perms::RX, "text").unwrap();
        assert!(!block.pages_valid(&mem));
    }

    /// Regression (ISSUE 8 bugfix): the cache used to wholesale-clear
    /// all 4096 blocks at capacity, evicting the hottest entries along
    /// with the cold storm that caused the pressure. Capacity pressure
    /// now evicts a bounded cold batch and a hot entry survives it.
    #[test]
    fn hot_entry_survives_capacity_pressure() {
        let mut cache = BlockCache::default();
        let mut mem = one_page_space();
        const HOT_PC: u64 = 7;
        for pc in 0..MAX_CACHED_BLOCKS as u64 {
            let evicted = cache.insert(pc, Arc::new(block_over(&mut mem, 0x1000)));
            assert_eq!(evicted, 0, "no eviction below capacity");
        }
        for _ in 0..64 {
            assert!(cache.hit(HOT_PC).is_some());
        }
        // A storm of fresh entries forces capacity evictions.
        let mut evicted_total = 0u64;
        for pc in 10_000..10_000 + (2 * CAPACITY_EVICT_BATCH) as u64 {
            evicted_total += cache.insert(pc, Arc::new(block_over(&mut mem, 0x1000)));
        }
        assert!(evicted_total >= CAPACITY_EVICT_BATCH as u64, "evictions counted");
        assert!(cache.len() <= MAX_CACHED_BLOCKS);
        assert!(
            cache.get(HOT_PC).is_some(),
            "the hot entry outlived {evicted_total} capacity evictions"
        );
        cache.flush();
        assert!(cache.is_empty());
    }

    /// The multi-version key: an epoch bump hides old entries from
    /// `get`/`hit`, `swap_forward` re-keys them (heat preserved), and
    /// entries two epochs back are not resurrectable.
    #[test]
    fn epoch_bump_hides_entries_and_swap_forward_rekeys() {
        let mut cache = BlockCache::default();
        let mut mem = one_page_space();
        cache.insert(0x1000, Arc::new(block_over(&mut mem, 0x1000)));
        let heat_before = cache.hit(0x1000).expect("cached").1;

        cache.bump_epoch();
        assert_eq!(cache.epoch(), 1);
        assert!(cache.get(0x1000).is_none(), "old version is not active");
        assert!(cache.hit(0x1000).is_none());
        assert_eq!(cache.len(), 1, "the entry itself survives the bump");

        let (_, heat) = cache.swap_forward(0x1000).expect("previous version");
        assert_eq!(heat, heat_before + 1, "the swap keeps the dispatch profile");
        assert!(cache.get(0x1000).is_some(), "re-keyed to the active version");
        assert!(cache.swap_forward(0x1000).is_none(), "swap is one-shot");

        // Two bumps later the entry is out of probe range for good.
        cache.bump_epoch();
        cache.bump_epoch();
        assert!(cache.get(0x1000).is_none());
        assert!(cache.swap_forward(0x1000).is_none());
    }
}
