//! The decoded-block translation cache.
//!
//! Every workload in this repo bottoms out in the interpreter's
//! fetch/decode loop, which used to re-probe the VMA list and re-decode
//! every instruction on every step. Real DBI substrates (DynamoRIO, the
//! engine the paper uses for drcov tracing) get their speed from a code
//! cache of pre-decoded basic blocks. This module is that cache, sized
//! for DynaCut's defining constraint: the framework *patches trap bytes
//! into running code*, so a stale cached block that hides a freshly
//! planted `0xCC` is a correctness (and in DynaCut terms, security) bug,
//! not a performance bug.
//!
//! # Invalidation invariant (DESIGN §11)
//!
//! No cached block may survive a write, remap, protection change,
//! restore, or rewrite that overlaps it. Enforcement is
//! **page-generation-based and lazy**: [`AddressSpace`] keeps a
//! generation counter for every page the cache has registered
//! ([`AddressSpace::note_code_page`]); any mutation of such a page —
//! guest stores, host `write_unchecked`, `unmap`, `protect`,
//! `drop_page` — bumps its generation. A [`CachedBlock`] snapshots the
//! generations of every page it decodes from, and the dispatcher
//! revalidates the snapshot before executing the block (and again after
//! any memory-writing instruction inside it, so self-modifying code
//! takes effect on the very next instruction). Restore paths
//! ([`Kernel::insert_process`] and the explicit CRIU/engine hooks) flush
//! the whole cache outright.
//!
//! The cache is **excluded from [`Kernel::state_fingerprint`]**: cached
//! and uncached execution of the same workload are bit-identical in
//! every guest-observable way, and the fingerprint enumerates exactly
//! the guest-observable fields.
//!
//! [`AddressSpace`]: crate::AddressSpace
//! [`AddressSpace::note_code_page`]: crate::AddressSpace::note_code_page
//! [`Kernel::insert_process`]: crate::Kernel::insert_process
//! [`Kernel::state_fingerprint`]: crate::Kernel::state_fingerprint

use crate::mem::AddressSpace;
use dynacut_isa::Insn;
use std::collections::HashMap;
use std::sync::Arc;

/// Upper bound on instructions per cached block. Blocks end at the
/// first terminator or syscall anyway; the cap only bounds pathological
/// straight-line runs.
pub(crate) const MAX_BLOCK_INSNS: usize = 32;

/// Blocks held per process before the cache is wholesale flushed. Guest
/// text in this simulation is small; the cap is a memory backstop, not
/// a tuning knob.
const MAX_CACHED_BLOCKS: usize = 4096;

/// A straight-line run of decoded instructions starting at one entry pc
/// and ending at the first block terminator, syscall, or
/// [`MAX_BLOCK_INSNS`].
#[derive(Debug)]
pub(crate) struct CachedBlock {
    /// The decoded run: `(instruction, encoded length)` pairs, in
    /// address order from the entry pc.
    pub(crate) insns: Box<[(Insn, u8)]>,
    /// Generation snapshot of every code page the run decodes from, as
    /// `(page base, generation)` pairs. The block is valid exactly
    /// while every page still carries its snapshotted generation.
    pub(crate) pages: Vec<(u64, u64)>,
}

impl CachedBlock {
    /// Whether every page this block was decoded from still carries the
    /// generation it had at decode time.
    pub(crate) fn pages_valid(&self, mem: &AddressSpace) -> bool {
        self.pages
            .iter()
            .all(|&(base, gen)| mem.code_page_gen(base) == gen)
    }
}

/// A per-process cache of decoded instruction blocks keyed by entry pc.
///
/// Cloning a [`Process`](crate::Process) clones the cache by bumping
/// the blocks' refcounts; the page-generation snapshots stay consistent
/// because the address space (and its generation table) is cloned
/// alongside.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    blocks: HashMap<u64, Arc<CachedBlock>>,
}

impl BlockCache {
    /// The cached block entered at `pc`, if any (validity not checked —
    /// the dispatcher revalidates page generations).
    pub(crate) fn get(&self, pc: u64) -> Option<&Arc<CachedBlock>> {
        self.blocks.get(&pc)
    }

    /// Caches `block` under its entry pc, flushing everything first if
    /// the cache is at capacity.
    pub(crate) fn insert(&mut self, pc: u64, block: Arc<CachedBlock>) {
        if self.blocks.len() >= MAX_CACHED_BLOCKS {
            self.blocks.clear();
        }
        self.blocks.insert(pc, block);
    }

    /// Evicts the block entered at `pc`, if cached.
    pub(crate) fn remove(&mut self, pc: u64) {
        self.blocks.remove(&pc);
    }

    /// Evicts every cached block. Restore paths call this: a restored
    /// (or un-restored) process's text was rebuilt from images that may
    /// carry rewrites, so nothing decoded before the swap may survive
    /// it.
    pub fn flush(&mut self) {
        self.blocks.clear();
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_obj::{Perms, PAGE_SIZE};

    fn one_page_space() -> AddressSpace {
        let mut mem = AddressSpace::new();
        mem.map(0x1000, PAGE_SIZE, Perms::RX, "text").unwrap();
        mem
    }

    fn block_over(mem: &mut AddressSpace, page: u64) -> CachedBlock {
        let gen = mem.note_code_page(page);
        CachedBlock {
            insns: vec![(Insn::Nop, 1)].into_boxed_slice(),
            pages: vec![(page, gen)],
        }
    }

    #[test]
    fn block_survives_writes_to_other_pages_only() {
        let mut mem = one_page_space();
        mem.map(0x2000, PAGE_SIZE, Perms::RW, "data").unwrap();
        let block = block_over(&mut mem, 0x1000);
        assert!(block.pages_valid(&mem));
        mem.write_unchecked(0x2000, &[1]);
        assert!(block.pages_valid(&mem), "data write leaves code alone");
        mem.write_unchecked(0x1004, &[0xCC]);
        assert!(!block.pages_valid(&mem), "code write bumps the generation");
    }

    #[test]
    fn unmap_protect_and_drop_invalidate() {
        for op in 0..3 {
            let mut mem = one_page_space();
            let block = block_over(&mut mem, 0x1000);
            match op {
                0 => mem.unmap(0x1000, PAGE_SIZE).unwrap(),
                1 => mem.protect(0x1000, PAGE_SIZE, Perms::R).unwrap(),
                _ => mem.drop_page(0x1000),
            }
            assert!(!block.pages_valid(&mem), "op {op} must invalidate");
        }
    }

    #[test]
    fn generations_survive_unmap_remap() {
        // A block cached before an unmap must not revalidate after the
        // range is re-mapped: generations are never reset.
        let mut mem = one_page_space();
        let block = block_over(&mut mem, 0x1000);
        mem.unmap(0x1000, PAGE_SIZE).unwrap();
        mem.map(0x1000, PAGE_SIZE, Perms::RX, "text").unwrap();
        assert!(!block.pages_valid(&mem));
    }

    #[test]
    fn cache_capacity_flushes_instead_of_growing() {
        let mut cache = BlockCache::default();
        let mut mem = one_page_space();
        for i in 0..(MAX_CACHED_BLOCKS + 1) as u64 {
            let block = Arc::new(block_over(&mut mem, 0x1000));
            cache.insert(i, block);
        }
        assert!(cache.len() <= MAX_CACHED_BLOCKS);
        cache.flush();
        assert!(cache.is_empty());
    }
}
