//! Program loading: mapping linked images into a fresh process.

use crate::process::Process;
use crate::VmError;
use dynacut_obj::{materialize, Image, Perms, PAGE_SIZE};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default executable base address.
pub const EXE_BASE: u64 = 0x0040_0000;
/// Base address of the first shared library; further libraries follow with
/// a one-page guard gap.
pub const LIB_BASE: u64 = 0x7000_0000_0000;
/// Top of the initial stack mapping.
pub const STACK_BASE: u64 = 0x7FFF_F000_0000;
/// Initial stack size in bytes.
pub const STACK_SIZE: u64 = 64 * PAGE_SIZE;
/// Base address for anonymous `mmap` allocations.
pub const MMAP_BASE: u64 = 0x1_0000_0000;

/// What to load into a new process: one executable plus its libraries.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// The main program.
    pub exe: Arc<Image>,
    /// Shared libraries, loaded in order at [`LIB_BASE`] upward.
    pub libs: Vec<Arc<Image>>,
}

impl LoadSpec {
    /// A spec with no libraries.
    pub fn exe_only(exe: Image) -> Self {
        LoadSpec {
            exe: Arc::new(exe),
            libs: Vec::new(),
        }
    }

    /// A spec with libraries.
    pub fn with_libs(exe: Image, libs: Vec<Image>) -> Self {
        LoadSpec {
            exe: Arc::new(exe),
            libs: libs.into_iter().map(Arc::new).collect(),
        }
    }
}

/// A module mapped into a process: the image plus its base address.
///
/// The process rewriter uses the retained [`Image`] as its copy of "the
/// binary on disk" — e.g. to restore original instruction bytes when a
/// blocked feature is re-enabled (paper §3.2: "restore the removed features
/// by replacing the `int3` instructions with the original instruction
/// bytes").
#[derive(Debug, Clone)]
pub struct LoadedModule {
    /// The linked image.
    pub image: Arc<Image>,
    /// Base address it was mapped at.
    pub base: u64,
}

impl LoadedModule {
    /// Absolute address of a symbol, if defined.
    pub fn symbol_addr(&self, name: &str) -> Option<u64> {
        self.image.symbol_addr(self.base, name)
    }

    /// Absolute end of the module's footprint.
    pub fn end(&self) -> u64 {
        self.base + dynacut_obj::page_align(self.image.footprint())
    }

    /// Whether `addr` falls inside the module's text.
    pub fn contains_text(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.image.text.len() as u64
    }
}

/// Maps `spec` into `proc`, sets up the stack and entry point, and records
/// the loaded modules.
///
/// # Errors
///
/// Fails on overlapping mappings or unresolved imports.
pub(crate) fn load_into(proc: &mut Process, spec: &LoadSpec) -> Result<(), VmError> {
    // Place libraries first so the executable's imports resolve.
    let mut placements: Vec<LoadedModule> = Vec::new();
    let mut lib_cursor = LIB_BASE;
    for lib in &spec.libs {
        placements.push(LoadedModule {
            image: Arc::clone(lib),
            base: lib_cursor,
        });
        lib_cursor += dynacut_obj::page_align(lib.footprint()) + PAGE_SIZE;
    }
    placements.push(LoadedModule {
        image: Arc::clone(&spec.exe),
        base: EXE_BASE,
    });

    // Global symbol table across all modules (first definition wins,
    // libraries before the executable — standard dynamic-linking order).
    let mut globals: BTreeMap<&str, u64> = BTreeMap::new();
    for module in &placements {
        for (name, def) in &module.image.symbols {
            globals.entry(name).or_insert(module.base + def.offset);
        }
    }

    for module in &placements {
        let segments = materialize(&module.image, module.base, |symbol| {
            globals.get(symbol).copied()
        })?;
        for segment in &segments {
            proc.mem
                .map(segment.vaddr, segment.map_len(), segment.perms, &segment.name)?;
            proc.mem.write_unchecked(segment.vaddr, &segment.bytes);
        }
    }

    // Stack.
    proc.mem.map(
        STACK_BASE - STACK_SIZE,
        STACK_SIZE,
        Perms::RW,
        "[stack]",
    )?;
    proc.cpu.set_sp(STACK_BASE - 64);

    // Entry.
    let entry = spec
        .exe
        .entry
        .ok_or(VmError::Load(dynacut_obj::ObjError::MissingEntry))?;
    proc.cpu.pc = EXE_BASE + entry;
    proc.name = spec.exe.name.clone();
    proc.modules = placements;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Pid;
    use dynacut_isa::{Assembler, Insn, Reg};
    use dynacut_obj::{ModuleBuilder, ObjectKind};

    fn libc() -> Image {
        let mut asm = Assembler::new();
        asm.func("libc_nop");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("libc", ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.link(&[]).unwrap()
    }

    fn exe(libc: &Image) -> Image {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("libc_nop");
        asm.push(Insn::Movi(Reg::R0, 0));
        asm.push(Insn::Syscall);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.data("state", &[1, 2, 3, 4]);
        builder.entry("_start");
        builder.link(&[libc]).unwrap()
    }

    #[test]
    fn load_maps_modules_and_stack() {
        let libc = libc();
        let app = exe(&libc);
        let mut proc = Process::new(Pid(1), "unnamed");
        let spec = LoadSpec::with_libs(app, vec![libc]);
        load_into(&mut proc, &spec).unwrap();

        assert_eq!(proc.name, "app");
        assert_eq!(proc.cpu.pc, EXE_BASE);
        assert_eq!(proc.cpu.sp(), STACK_BASE - 64);
        assert_eq!(proc.modules.len(), 2);
        // Text is executable, stack is not.
        assert!(proc.mem.vma_at(EXE_BASE).unwrap().perms.exec);
        assert!(!proc.mem.vma_at(STACK_BASE - 64).unwrap().perms.exec);
        // The GOT slot for libc_nop holds the library address.
        let exe_module = &proc.modules[1];
        let got = exe_module.base + exe_module.image.plt[0].got_offset;
        let mut slot = [0u8; 8];
        proc.mem.read_unchecked(got, &mut slot);
        assert_eq!(u64::from_le_bytes(slot), LIB_BASE);
    }

    #[test]
    fn loaded_module_symbol_lookup() {
        let libc = libc();
        let app = exe(&libc);
        let mut proc = Process::new(Pid(1), "x");
        load_into(&mut proc, &LoadSpec::with_libs(app, vec![libc])).unwrap();
        let libc_module = &proc.modules[0];
        assert_eq!(libc_module.symbol_addr("libc_nop"), Some(LIB_BASE));
        assert!(libc_module.contains_text(LIB_BASE));
        assert!(!libc_module.contains_text(EXE_BASE));
    }

    #[test]
    fn data_bytes_are_loaded() {
        let libc = libc();
        let app = exe(&libc);
        let mut proc = Process::new(Pid(1), "x");
        load_into(&mut proc, &LoadSpec::with_libs(app, vec![libc])).unwrap();
        let exe_module = proc.modules.last().unwrap();
        let addr = exe_module.symbol_addr("state").unwrap();
        let mut buf = [0u8; 4];
        proc.mem.read_unchecked(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
