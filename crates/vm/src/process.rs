//! Process control blocks.

use crate::bcache::BlockCache;
use crate::cpu::CpuState;
use crate::fs::FdTable;
use crate::loader::LoadedModule;
use crate::mem::AddressSpace;
use crate::signal::{SigAction, Signal};
use std::collections::VecDeque;
use std::fmt;

/// Width of the per-process syscall allow-bitmask: syscall numbers
/// `0..SYSCALL_FILTER_BITS` are representable; anything at or above is
/// unconditionally denied (and rejected by plan validation before a
/// rewrite ever builds a mask).
pub const SYSCALL_FILTER_BITS: u32 = 64;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Why a process is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Blocked reading fd (no data yet).
    ReadFd(u32),
    /// Blocked in `accept` on the listener fd.
    Accept(u32),
    /// Sleeping until the given kernel time (ns).
    Until(u64),
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible to run.
    Runnable,
    /// Blocked on I/O or a timer.
    Blocked(WaitReason),
    /// Frozen by the host (checkpointing); never scheduled.
    Frozen,
    /// Terminated; `exit` holds the status.
    Exited,
}

/// One DCVM process: CPU, memory, descriptors, signal state.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent pid, if forked.
    pub parent: Option<Pid>,
    /// Executable name (for diagnostics and trace module tables).
    pub name: String,
    /// Register file and program counter.
    pub cpu: CpuState,
    /// Virtual memory.
    pub mem: AddressSpace,
    /// Open file descriptors.
    pub fds: FdTable,
    /// Signal dispositions, indexed by signal number.
    pub sigactions: [SigAction; Signal::COUNT],
    /// Signals queued for delivery.
    pub pending_signals: VecDeque<Signal>,
    /// Scheduler state.
    pub state: ProcState,
    /// Exit code (valid once `state == Exited`).
    pub exit_code: Option<u64>,
    /// Fatal signal that killed the process, if any.
    pub fatal_signal: Option<Signal>,
    /// Bytes written to the console (fd 0).
    pub console: Vec<u8>,
    /// Instructions retired (also the process's CPU-time in ns).
    pub insns_retired: u64,
    /// Depth of nested signal-handler frames currently live.
    pub signal_depth: u32,
    /// Scheduler state at the moment of the last freeze, so a thaw can
    /// put the process back exactly where it was (a process blocked in
    /// `read` stays blocked instead of being forced runnable) — the
    /// rollback path of a failed customization depends on this.
    pub frozen_from: Option<ProcState>,
    /// Modules mapped into the process, in load order (libraries first,
    /// executable last).
    pub modules: Vec<LoadedModule>,
    /// Syscall allow-bitmask (bit *n* permits syscall number *n*); the
    /// seccomp-filter analogue of paper §5. All-ones permits everything.
    pub syscall_filter: u64,
    /// Decoded-block translation cache. Pure host-side acceleration
    /// state: never checkpointed, never fingerprinted, flushed on
    /// restore (see DESIGN §11).
    pub block_cache: BlockCache,
}

impl Process {
    /// Creates an empty runnable process.
    pub fn new(pid: Pid, name: &str) -> Self {
        Process {
            pid,
            parent: None,
            name: name.to_owned(),
            cpu: CpuState::default(),
            mem: AddressSpace::new(),
            fds: FdTable::new(),
            sigactions: [SigAction::default(); Signal::COUNT],
            pending_signals: VecDeque::new(),
            state: ProcState::Runnable,
            exit_code: None,
            fatal_signal: None,
            console: Vec::new(),
            insns_retired: 0,
            signal_depth: 0,
            frozen_from: None,
            modules: Vec::new(),
            syscall_filter: u64::MAX,
            block_cache: BlockCache::default(),
        }
    }

    /// Whether the filter permits the raw syscall number. Numbers at or
    /// above [`SYSCALL_FILTER_BITS`] are always denied.
    pub fn syscall_allowed(&self, nr: u64) -> bool {
        nr < u64::from(SYSCALL_FILTER_BITS) && self.syscall_filter & (1 << nr) != 0
    }

    /// Whether the scheduler may pick this process.
    pub fn is_runnable(&self) -> bool {
        self.state == ProcState::Runnable
    }

    /// Whether the process has terminated.
    pub fn is_exited(&self) -> bool {
        self.state == ProcState::Exited
    }

    /// Console output decoded as UTF-8 (lossy).
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Marks the process exited with `code`.
    pub fn exit(&mut self, code: u64) {
        self.state = ProcState::Exited;
        self.exit_code = Some(code);
    }

    /// Kills the process with a fatal signal.
    pub fn kill(&mut self, signal: Signal) {
        self.state = ProcState::Exited;
        self.fatal_signal = Some(signal);
        self.exit_code = Some(128 + signal.number());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_runnable() {
        let proc = Process::new(Pid(1), "init");
        assert!(proc.is_runnable());
        assert!(!proc.is_exited());
        assert_eq!(proc.exit_code, None);
    }

    #[test]
    fn exit_records_code() {
        let mut proc = Process::new(Pid(1), "x");
        proc.exit(3);
        assert!(proc.is_exited());
        assert_eq!(proc.exit_code, Some(3));
        assert_eq!(proc.fatal_signal, None);
    }

    #[test]
    fn kill_records_signal_and_synthetic_code() {
        let mut proc = Process::new(Pid(1), "x");
        proc.kill(Signal::Sigtrap);
        assert!(proc.is_exited());
        assert_eq!(proc.fatal_signal, Some(Signal::Sigtrap));
        assert_eq!(proc.exit_code, Some(128));
    }

    #[test]
    fn console_text_is_lossy_utf8() {
        let mut proc = Process::new(Pid(1), "x");
        proc.console.extend_from_slice(b"ok\xFF");
        assert!(proc.console_text().starts_with("ok"));
    }
}
