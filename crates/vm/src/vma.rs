//! Virtual memory areas.

use dynacut_obj::Perms;
use std::fmt;
use std::ops::Range;

/// One virtual memory area: a page-aligned, uniformly-permissioned address
/// range, as reported by `/proc/<pid>/maps` on Linux and stored in CRIU's
/// `mm` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// First address (page-aligned).
    pub start: u64,
    /// One past the last address (page-aligned).
    pub end: u64,
    /// Protection flags.
    pub perms: Perms,
    /// Human-readable mapping name (`"nginx.text"`, `"[stack]"`, …).
    pub name: String,
}

impl Vma {
    /// Creates a VMA covering `[start, end)`.
    pub fn new(start: u64, end: u64, perms: Perms, name: &str) -> Self {
        debug_assert!(start < end);
        Vma {
            start,
            end,
            perms,
            name: name.to_owned(),
        }
    }

    /// The address range covered.
    pub fn range(&self) -> Range<u64> {
        self.start..self.end
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the VMA covers zero bytes (never true for a valid VMA).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `addr` lies inside the VMA.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether this VMA overlaps `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.start < end && start < self.end
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:012x}-{:012x} {} {}",
            self.start, self.end, self.perms, self.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_overlaps() {
        let vma = Vma::new(0x1000, 0x3000, Perms::RW, "heap");
        assert!(vma.contains(0x1000));
        assert!(vma.contains(0x2FFF));
        assert!(!vma.contains(0x3000));
        assert!(vma.overlaps(0x2000, 0x4000));
        assert!(vma.overlaps(0x0, 0x1001));
        assert!(!vma.overlaps(0x3000, 0x4000));
        assert!(!vma.overlaps(0x0, 0x1000));
    }

    #[test]
    fn display_resembles_proc_maps() {
        let vma = Vma::new(0x40_0000, 0x40_1000, Perms::RX, "app.text");
        assert_eq!(vma.to_string(), "000000400000-000000401000 r-x app.text");
    }

    #[test]
    fn len_is_span() {
        assert_eq!(Vma::new(0x1000, 0x4000, Perms::R, "x").len(), 0x3000);
    }
}
