//! The kernel: scheduling, syscalls, networking, time, and the
//! checkpoint/restore surface.

use crate::events::{EventKind, FlightRecorder, VERIFIER_EVENT_BIT};
use crate::fs::{FileDesc, VfsFile};
use crate::hook::Hook;
use crate::interp::{self, Exec};
use crate::loader::{load_into, LoadSpec, MMAP_BASE};
use crate::net::{ConnId, NetStack, TcpConn, TcpState};
use crate::process::{Pid, ProcState, Process, WaitReason};
use crate::sched::{SchedClass, SchedPolicy, Scheduler, WakeHint, BOOST_INTERVAL_NS};
use crate::signal::Signal;
use crate::syscall::{err_ret, perms_from_bits, Sysno};
use crate::VmError;
use dynacut_isa::Reg;
use dynacut_obj::{page_align, PAGE_SIZE};
use std::cmp::Reverse;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Base scheduling quantum, in instructions (the level-0 MLFQ quantum;
/// the per-level quantum doubles with each level below).
const QUANTUM: u64 = 256;
/// Fixed syscall cost in simulated nanoseconds.
const SYSCALL_COST_NS: u64 = 50;
/// Default granularity of the serve pumps in
/// [`Kernel::run_until_event`], [`Kernel::run_until_exit`] and
/// [`Kernel::client_request`]: how much simulated time each inner
/// `run_for` slice covers before the stop condition is re-checked. One
/// named tunable ([`Kernel::set_pump_chunk_ns`]) instead of hardcoded
/// per-call-site chunks, so scheduler experiments can vary pump
/// granularity in one place.
pub const DEFAULT_PUMP_CHUNK_NS: u64 = 5_000;
/// Default capacity of the guest event ring
/// ([`Kernel::set_event_capacity`]). When full, the oldest event is
/// dropped; [`Event::seq`] stays monotonic so consumers detect the gap.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// A host-side handle to a client TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConn(pub ConnId);

/// Why [`Kernel::run_for`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The time budget was consumed.
    Deadline,
    /// Every process has exited.
    AllExited,
    /// All remaining processes are blocked on I/O (or frozen) and no timer
    /// can wake them; simulated time was advanced to the deadline.
    Idle,
}

/// A process's final status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitStatus {
    /// The exit code (`128 + signo` for signal deaths).
    pub code: u64,
    /// The fatal signal, if the process was killed by one.
    pub fatal_signal: Option<Signal>,
}

/// A guest-emitted phase marker (the `emit_event` syscall), used the way
/// the paper uses DynamoRIO nudges and server log lines: to observe "the
/// target server program has initialized" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused). The event ring is
    /// bounded, so consumers that rescan incrementally must anchor on
    /// `seq`, not on buffer indices — a raw index skews the moment the
    /// ring drops its oldest entries mid-run.
    pub seq: u64,
    /// Kernel time at emission.
    pub time_ns: u64,
    /// Emitting process.
    pub pid: Pid,
    /// Application-defined code.
    pub code: u64,
}

/// The DCVM kernel. See the crate-level docs for an overview.
pub struct Kernel {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    net: NetStack,
    vfs: BTreeMap<String, Arc<Vec<u8>>>,
    clock_ns: u64,
    hook: Option<Box<dyn Hook>>,
    events: VecDeque<Event>,
    /// Sequence number the next guest event will get.
    next_event_seq: u64,
    /// Events evicted from the bounded ring so far.
    events_dropped: u64,
    /// Ring capacity (oldest events are dropped past this).
    event_capacity: usize,
    flight: FlightRecorder,
    /// Inverted so a `Default`-constructed kernel runs with the
    /// decoded-block cache *enabled*. See
    /// [`set_block_cache_enabled`](Kernel::set_block_cache_enabled).
    block_cache_disabled: bool,
    /// Inverted for the same reason: hot entries are promoted to
    /// superblocks by default. See
    /// [`set_superblocks_enabled`](Kernel::set_superblocks_enabled).
    superblocks_disabled: bool,
    /// MLFQ run queues and wait-object registry (host-side only: never
    /// fingerprinted, never checkpointed — see DESIGN §14).
    sched: Scheduler,
    /// Serve-pump granularity; see [`DEFAULT_PUMP_CHUNK_NS`].
    pump_chunk_ns: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel {
            procs: BTreeMap::new(),
            next_pid: 0,
            net: NetStack::default(),
            vfs: BTreeMap::new(),
            clock_ns: 0,
            hook: None,
            events: VecDeque::new(),
            next_event_seq: 0,
            events_dropped: 0,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            flight: FlightRecorder::default(),
            block_cache_disabled: false,
            superblocks_disabled: false,
            sched: Scheduler::default(),
            pump_chunk_ns: DEFAULT_PUMP_CHUNK_NS,
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("procs", &self.procs.keys().collect::<Vec<_>>())
            .field("clock_ns", &self.clock_ns)
            .field("events", &self.events.len())
            .finish()
    }
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Kernel::default()
    }

    // ----- host configuration ------------------------------------------

    /// Registers a file in the virtual filesystem.
    pub fn add_file(&mut self, path: &str, contents: &[u8]) {
        self.vfs.insert(path.to_owned(), Arc::new(contents.to_vec()));
    }

    /// Contents of a VFS file, if registered (used when restoring open
    /// file descriptors from a checkpoint).
    pub fn vfs_contents(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        self.vfs.get(path).cloned()
    }

    /// Installs an execution hook (coverage tracer). Replaces any previous
    /// hook.
    pub fn set_hook(&mut self, hook: Box<dyn Hook>) {
        self.hook = Some(hook);
    }

    /// Removes and returns the installed hook.
    pub fn take_hook(&mut self) -> Option<Box<dyn Hook>> {
        self.hook.take()
    }

    /// Enables or disables the decoded-block translation cache (enabled
    /// by default). Disabling also flushes every process's cache, so a
    /// later re-enable starts cold. Cached and uncached execution are
    /// bit-identical in every guest-observable way — the toggle exists
    /// for the `figures interp` off/on comparison and for bisecting.
    pub fn set_block_cache_enabled(&mut self, enabled: bool) {
        self.block_cache_disabled = !enabled;
        if !enabled {
            for proc in self.procs.values_mut() {
                proc.block_cache.flush();
            }
        }
    }

    /// Whether the decoded-block translation cache is enabled.
    pub fn block_cache_enabled(&self) -> bool {
        !self.block_cache_disabled
    }

    /// Enables or disables superblock promotion (enabled by default).
    /// Disabling flushes every process's cache so no already-promoted
    /// superblock keeps executing. Superblocked, plain-cached, and
    /// uncached execution are bit-identical in every guest-observable
    /// way — the toggle exists for the `figures interp` three-way
    /// comparison and for bisecting.
    pub fn set_superblocks_enabled(&mut self, enabled: bool) {
        self.superblocks_disabled = !enabled;
        if !enabled {
            for proc in self.procs.values_mut() {
                proc.block_cache.flush();
            }
        }
    }

    /// Whether hot entries are promoted to superblocks.
    pub fn superblocks_enabled(&self) -> bool {
        !self.superblocks_disabled
    }

    /// Selects the run-loop policy (the preemptive MLFQ by default).
    /// Switching rebuilds the scheduler's run queues and wait-object
    /// registry from the current `ProcState` of every process — the
    /// scheduler holds no state that cannot be rebuilt this way, which
    /// is also why it is never checkpointed. The round-robin path is
    /// kept as a toggleable oracle: single-process workloads are
    /// bit-identical under [`state_fingerprint`](Kernel::state_fingerprint)
    /// between the two policies.
    pub fn set_scheduler(&mut self, policy: SchedPolicy) {
        if self.sched.policy == policy {
            return;
        }
        self.sched.policy = policy;
        self.sched.clear_dynamic();
        if policy == SchedPolicy::Mlfq {
            self.sched.last_boost_ns = self.clock_ns;
            let pids: Vec<Pid> = self.procs.keys().copied().collect();
            for pid in pids {
                self.sched_reattach(pid);
            }
        }
    }

    /// The active run-loop policy.
    pub fn scheduler_policy(&self) -> SchedPolicy {
        self.sched.policy
    }

    /// Tags a process's scheduling class. [`SchedClass::Background`]
    /// pins it to the bottom MLFQ level — the customize engine applies
    /// this to the process groups of an in-flight cycle so serving
    /// replicas preempt their pumped guest work, and removes it when
    /// the cycle commits or rolls back. Unknown pids are remembered
    /// (the tag applies when the pid appears); the tag survives the
    /// remove/insert swap of a restore, and is host-side only — it
    /// never reaches [`state_fingerprint`](Kernel::state_fingerprint)
    /// or a checkpoint image.
    pub fn set_sched_class(&mut self, pid: Pid, class: SchedClass) {
        self.sched.set_class(pid, class);
    }

    /// The process's scheduling class.
    pub fn sched_class(&self, pid: Pid) -> SchedClass {
        self.sched.class_of(pid)
    }

    /// Enables journalling every MLFQ dispatch as an
    /// [`EventKind::ContextSwitch`] flight event. Off by default:
    /// always-on dispatch tracing would flood the bounded flight ring
    /// and evict the stage/phase events the customize layers rely on.
    /// The `sched.*` metrics are counted regardless.
    pub fn set_sched_trace(&mut self, on: bool) {
        self.sched.trace = on;
    }

    // ----- processes ----------------------------------------------------

    /// Loads a program and returns its pid.
    ///
    /// # Errors
    ///
    /// Fails if the images cannot be mapped or linked imports cannot be
    /// resolved.
    pub fn spawn(&mut self, spec: &LoadSpec) -> Result<Pid, VmError> {
        let pid = self.alloc_pid();
        let mut proc = Process::new(pid, "loading");
        load_into(&mut proc, spec)?;
        self.procs.insert(pid, proc);
        self.sched_reattach(pid);
        Ok(pid)
    }

    /// Allocates a fresh pid.
    pub fn alloc_pid(&mut self) -> Pid {
        self.next_pid += 1;
        Pid(self.next_pid)
    }

    /// Immutable access to a process.
    ///
    /// # Errors
    ///
    /// Fails if no such process exists.
    pub fn process(&self, pid: Pid) -> Result<&Process, VmError> {
        self.procs.get(&pid).ok_or(VmError::NoSuchProcess(pid))
    }

    /// Mutable access to a process (checkpoint/restore and rewriting use
    /// this; prefer the syscall surface for guest-visible changes).
    ///
    /// # Errors
    ///
    /// Fails if no such process exists.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, VmError> {
        self.procs.get_mut(&pid).ok_or(VmError::NoSuchProcess(pid))
    }

    /// All pids currently known, in order.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Stops scheduling a process (checkpoint freeze), remembering its
    /// scheduler state so [`thaw`](Kernel::thaw) can restore it exactly.
    /// Freezing an already-frozen process is a no-op.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist or has exited.
    pub fn freeze(&mut self, pid: Pid) -> Result<(), VmError> {
        let proc = self.process_mut(pid)?;
        if proc.is_exited() {
            return Err(VmError::BadProcessState {
                pid,
                expected: "alive",
            });
        }
        if proc.state != ProcState::Frozen {
            proc.frozen_from = Some(proc.state);
            proc.state = ProcState::Frozen;
        }
        Ok(())
    }

    /// Resumes a frozen process, restoring the scheduler state it had at
    /// freeze time (a process that was blocked in `read` goes back to
    /// being blocked, not runnable). This makes a freeze → thaw round
    /// trip bit-identical — the rollback guarantee of a failed
    /// customization.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist or is not frozen.
    pub fn thaw(&mut self, pid: Pid) -> Result<(), VmError> {
        let proc = self.process_mut(pid)?;
        if proc.state != ProcState::Frozen {
            return Err(VmError::BadProcessState {
                pid,
                expected: "frozen",
            });
        }
        proc.state = proc.frozen_from.take().unwrap_or(ProcState::Runnable);
        // Re-attach to the scheduler: a thawed-runnable process is
        // re-admitted, a thawed-blocked one re-parks on its wait object
        // (data that arrived while it was frozen is noticed there).
        self.sched_reattach(pid);
        Ok(())
    }

    /// Removes a process entirely (the dump side of CRIU's
    /// checkpoint-then-kill).
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn remove_process(&mut self, pid: Pid) -> Result<Process, VmError> {
        let proc = self.procs.remove(&pid).ok_or(VmError::NoSuchProcess(pid))?;
        // Stale wait-object entries are left behind deliberately: they
        // validate against the live process table on wake, so they can
        // neither fire for a dead pid nor mis-wake a restored reuse of
        // it (the ready condition is always re-checked).
        self.sched.forget(pid);
        Ok(proc)
    }

    /// Re-inserts a process built by the restore path. The pid must be
    /// free.
    ///
    /// # Errors
    ///
    /// Fails if the pid is already in use.
    pub fn insert_process(&mut self, proc: Process) -> Result<(), VmError> {
        if self.procs.contains_key(&proc.pid) {
            return Err(VmError::BadProcessState {
                pid: proc.pid,
                expected: "a free pid slot",
            });
        }
        // Deliberately no cache flush here. Every live-memory swap
        // funnels through this method, but the invalidation choke point
        // is `RestoreTransaction::commit`, which flushes the *built*
        // replacement before it ever reaches us: a restored image may
        // carry arbitrary foreign bytes. Re-inserting an *original*
        // process (rollback, undo) keeps its cache — its page
        // generations are part of the address space being swapped back,
        // so every entry is exactly as valid as it was at dump time.
        // That is what makes rollback's version swap free (DESIGN §11).
        self.next_pid = self.next_pid.max(proc.pid.0);
        let pid = proc.pid;
        self.procs.insert(pid, proc);
        self.sched_reattach(pid);
        Ok(())
    }

    /// Queues a signal for a process from the host side.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn post_signal(&mut self, pid: Pid, signal: Signal) -> Result<(), VmError> {
        self.process_mut(pid)?.pending_signals.push_back(signal);
        // A pending signal makes any blocked process ready.
        self.sched.note(WakeHint::Pid(pid));
        Ok(())
    }

    /// The process's exit status, if it has exited.
    pub fn exit_status(&self, pid: Pid) -> Option<ExitStatus> {
        let proc = self.procs.get(&pid)?;
        proc.is_exited().then(|| ExitStatus {
            code: proc.exit_code.unwrap_or(0),
            fatal_signal: proc.fatal_signal,
        })
    }

    // ----- time ---------------------------------------------------------

    /// Current kernel time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock without running anyone — used by the DynaCut
    /// harness to account the measured host-side rewrite latency as guest
    /// downtime (the Figure 8 freeze window). Saturates at `u64::MAX`.
    pub fn advance_clock(&mut self, ns: u64) {
        self.clock_ns = self.clock_ns.saturating_add(ns);
    }

    /// Sets the serve-pump granularity (clamped to at least 1 ns); see
    /// [`DEFAULT_PUMP_CHUNK_NS`]. Smaller chunks re-check the stop
    /// condition (a response arrived, the awaited event fired, the
    /// process exited) more often at the cost of more pump iterations —
    /// the scheduler experiments shrink it to resolve tail latencies
    /// finer than the default chunk.
    pub fn set_pump_chunk_ns(&mut self, ns: u64) {
        self.pump_chunk_ns = ns.max(1);
    }

    /// The serve-pump granularity.
    pub fn pump_chunk_ns(&self) -> u64 {
        self.pump_chunk_ns
    }

    // ----- events -------------------------------------------------------

    /// All phase-marker events currently buffered (the bounded ring may
    /// have dropped older ones; see [`events_dropped`](Kernel::events_dropped)).
    pub fn events(&self) -> &VecDeque<Event> {
        &self.events
    }

    /// Events evicted from the bounded ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The sequence number the *next* guest event will get. Consumers
    /// that rescan incrementally anchor on this (see
    /// [`run_until_event`](Kernel::run_until_event)).
    pub fn event_seq(&self) -> u64 {
        self.next_event_seq
    }

    /// Resizes the guest event ring (minimum 1). Shrinking drops the
    /// oldest buffered events immediately.
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.event_capacity = capacity.max(1);
        while self.events.len() > self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
    }

    /// Appends to the bounded event ring, evicting the oldest entry
    /// when full. Every guest event funnels through here so `seq` stays
    /// monotonic and the drop counter exact.
    fn push_event(&mut self, pid: Pid, code: u64) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        if self.events.len() >= self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(Event {
            seq,
            time_ns: self.clock_ns,
            pid,
            code,
        });
    }

    /// Removes and returns all recorded events.
    pub fn drain_events(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Removes and returns only the events matching `predicate`; the
    /// rest stay queued in their original order. This is the selective
    /// drain consumers like `verifier_reports` need — draining
    /// everything and keeping only one class would silently destroy the
    /// interleaved guest events other consumers are waiting for.
    pub fn drain_events_where<F>(&mut self, mut predicate: F) -> Vec<Event>
    where
        F: FnMut(&Event) -> bool,
    {
        let mut matched = Vec::new();
        let mut kept = VecDeque::with_capacity(self.events.len());
        for event in self.events.drain(..) {
            if predicate(&event) {
                matched.push(event);
            } else {
                kept.push_back(event);
            }
        }
        self.events = kept;
        matched
    }

    /// Queues a guest event exactly as if `pid` had issued
    /// `emit_event(code)` itself: the raw event is recorded and the
    /// flight journal gets a [`EventKind::VerifierReport`] or
    /// [`EventKind::GuestMarker`]. Rollout tests use this to synthesize
    /// a verifier report mid-soak without steering traffic at the
    /// canary.
    pub fn inject_event(&mut self, pid: Pid, code: u64) {
        let clock = self.clock_ns;
        self.push_event(pid, code);
        let kind = if code & VERIFIER_EVENT_BIT != 0 {
            self.flight.metrics_mut().incr("verifier.reports", 1);
            EventKind::VerifierReport {
                addr: code & !VERIFIER_EVENT_BIT,
            }
        } else {
            EventKind::GuestMarker { code }
        };
        self.flight.record(clock, Some(pid), kind);
    }

    // ----- flight recorder ----------------------------------------------

    /// The flight recorder: the structured event journal plus metrics
    /// registry every customize layer reports into. Not part of the
    /// guest-observable state ([`Kernel::state_fingerprint`] ignores it),
    /// so a rolled-back customization leaves the kernel bit-identical
    /// while the journal keeps the record of the failed attempt.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Mutable access to the flight recorder.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// Records a flight event stamped with the current guest clock.
    /// Returns the event's sequence number.
    pub fn record_flight(&mut self, pid: Option<Pid>, kind: EventKind) -> u64 {
        self.flight.record(self.clock_ns, pid, kind)
    }

    // ----- client networking --------------------------------------------

    /// Connects a host-side client to a listening guest port.
    ///
    /// # Errors
    ///
    /// Fails with [`VmError::ConnectionRefused`] if nothing listens there.
    pub fn client_connect(&mut self, port: u16) -> Result<ClientConn, VmError> {
        let conn = self
            .net
            .connect(port)
            .map(ClientConn)
            .ok_or(VmError::ConnectionRefused(port))?;
        // One backlog entry: wake one acceptor (not the whole herd the
        // round-robin scan used to release, N-1 of which would retry
        // `accept` against an already-drained backlog and re-block).
        self.sched.note(WakeHint::Port(port));
        Ok(conn)
    }

    /// Sends bytes from the client to the server. Bytes queue even while
    /// the connection is in checkpoint repair mode.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown or closed.
    pub fn client_send(&mut self, conn: ClientConn, bytes: &[u8]) -> Result<(), VmError> {
        let tcp = self
            .net
            .conn_mut(conn.0)
            .ok_or(VmError::BadConnection(conn.0 .0))?;
        if tcp.state == TcpState::Closed {
            return Err(VmError::BadConnection(conn.0 .0));
        }
        tcp.to_server.extend(bytes);
        self.sched.note(WakeHint::Conn(conn.0));
        Ok(())
    }

    /// Receives everything the server has sent so far (may be empty).
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown.
    pub fn client_recv(&mut self, conn: ClientConn) -> Result<Vec<u8>, VmError> {
        let tcp = self
            .net
            .conn_mut(conn.0)
            .ok_or(VmError::BadConnection(conn.0 .0))?;
        let out: Vec<u8> = tcp.to_client.drain(..).collect();
        Ok(out)
    }

    /// Closes the client end.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown.
    pub fn client_close(&mut self, conn: ClientConn) -> Result<(), VmError> {
        if self.net.conn(conn.0).is_none() {
            return Err(VmError::BadConnection(conn.0 .0));
        }
        self.net.close(conn.0);
        self.net.reap();
        // A closed (or reaped) connection makes a blocked read ready:
        // it returns 0.
        self.sched.note(WakeHint::Conn(conn.0));
        Ok(())
    }

    /// Sends a request and runs the kernel until a response arrives or
    /// `max_ns` of simulated time passes. Returns the response bytes.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown or closed.
    pub fn client_request(
        &mut self,
        conn: ClientConn,
        bytes: &[u8],
        max_ns: u64,
    ) -> Result<Vec<u8>, VmError> {
        self.client_send(conn, bytes)?;
        let deadline = self.clock_ns.saturating_add(max_ns);
        loop {
            // An expired (or zero) deadline must not run anything: the
            // old `.max(1)` here executed a 1 ns slice past the
            // deadline, so a "serve for at most max_ns" caller could
            // observe the clock beyond its budget.
            let remaining = deadline.saturating_sub(self.clock_ns);
            if remaining == 0 {
                return self.client_recv(conn);
            }
            let outcome = self.run_for(self.pump_chunk_ns.min(remaining));
            let out = self.client_recv(conn)?;
            if !out.is_empty() {
                return Ok(out);
            }
            if self.clock_ns >= deadline || outcome == RunOutcome::AllExited {
                return Ok(Vec::new());
            }
        }
    }

    // ----- checkpoint surface for connections ---------------------------

    /// Connection ids referenced by a process's descriptor table.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn conn_ids_of(&self, pid: Pid) -> Result<Vec<ConnId>, VmError> {
        let proc = self.process(pid)?;
        Ok(proc
            .fds
            .iter()
            .filter_map(|(_, desc)| match desc {
                FileDesc::Conn(id) => Some(*id),
                _ => None,
            })
            .collect())
    }

    /// Puts connections into repair mode (dump) — the `TCP_REPAIR`
    /// analogue.
    pub fn repair_connections(&mut self, ids: &[ConnId]) {
        self.net.enter_repair(ids);
    }

    /// Re-establishes repaired connections (restore).
    pub fn unrepair_connections(&mut self, ids: &[ConnId]) {
        self.net.leave_repair(ids);
        // Leaving repair mode makes bytes buffered during the freeze
        // readable again: re-check each connection's indexed waiters.
        for &id in ids {
            self.sched.note(WakeHint::Conn(id));
        }
    }

    /// Snapshot of a connection's state (for the CRIU tcp image).
    pub fn conn_snapshot(&self, id: ConnId) -> Option<TcpConn> {
        self.net.conn(id).cloned()
    }

    /// Ensures a listener exists on `port` (restore of a listening fd).
    pub fn restore_listener(&mut self, port: u16) {
        self.net.listen(port);
    }

    /// Whether a listener exists on `port`.
    pub fn is_listening(&self, port: u16) -> bool {
        self.net.is_listening(port)
    }

    /// Removes the listener on `port` (rollback of a restore that
    /// created it). Connections already accepted are unaffected; an
    /// empty backlog entry is dropped with it.
    pub fn close_listener(&mut self, port: u16) {
        self.net.unlisten(port);
    }

    /// A canonical textual digest of the entire observable kernel state:
    /// clock, pid allocator, every process (scheduler state and its
    /// freeze provenance, registers, signal dispositions and queue, fds,
    /// modules, VMAs, page contents via per-page hashes, dirty bitmap),
    /// and the network stack (listeners, backlogs, connections with
    /// buffered bytes).
    ///
    /// Equal fingerprints mean behaviourally identical kernels. The
    /// transactional-customize tests compare the fingerprint taken
    /// before a fault-injected customization with the one after its
    /// rollback: DESIGN §5 requires them to match exactly.
    pub fn state_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "clock={} next_pid={} events={}",
            self.clock_ns,
            self.next_pid,
            self.events.len()
        );
        self.fingerprint_body(&mut out);
        out
    }

    /// [`state_fingerprint`](Kernel::state_fingerprint) with the guest
    /// clock masked out. A canary rollout's soak period serves real
    /// traffic, so guest time elapses and cannot be rolled back; a
    /// demotion restores every *other* observable — processes, memory,
    /// descriptors, network — bit-identically, and this is the digest
    /// the demotion-parity tests compare.
    pub fn state_fingerprint_timeless(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "clock=* next_pid={} events={}",
            self.next_pid,
            self.events.len()
        );
        self.fingerprint_body(&mut out);
        out
    }

    fn fingerprint_body(&self, out: &mut String) {
        use std::fmt::Write as _;
        let out = &mut *out;
        for (pid, proc) in &self.procs {
            let _ = writeln!(
                out,
                "proc {} name={:?} parent={:?} state={:?} frozen_from={:?} exit={:?} fatal={:?}",
                pid.0,
                proc.name,
                proc.parent.map(|parent| parent.0),
                proc.state,
                proc.frozen_from,
                proc.exit_code,
                proc.fatal_signal
            );
            let _ = writeln!(
                out,
                "  cpu pc={:#x} flags={:#x} regs={:x?}",
                proc.cpu.pc,
                proc.cpu.flags.to_bits(),
                proc.cpu.regs
            );
            let _ = writeln!(
                out,
                "  filter={:#x} insns={} sigdepth={} pending={:?} console_hash={:#018x}",
                proc.syscall_filter,
                proc.insns_retired,
                proc.signal_depth,
                proc.pending_signals,
                fnv1a(&proc.console)
            );
            for (signo, action) in proc.sigactions.iter().enumerate() {
                if action.handler != 0 || action.restorer != 0 || action.mask != 0 {
                    let _ = writeln!(
                        out,
                        "  sigaction {signo} handler={:#x} restorer={:#x} mask={:#x}",
                        action.handler, action.restorer, action.mask
                    );
                }
            }
            for (fd, desc) in proc.fds.iter() {
                match desc {
                    FileDesc::File { file, pos } => {
                        let _ = writeln!(
                            out,
                            "  fd {fd} = File {:?} pos={pos} hash={:#018x}",
                            file.path,
                            fnv1a(&file.contents)
                        );
                    }
                    other => {
                        let _ = writeln!(out, "  fd {fd} = {other:?}");
                    }
                }
            }
            for module in &proc.modules {
                let _ = writeln!(out, "  module {:?} base={:#x}", module.image.name, module.base);
            }
            for vma in proc.mem.vmas() {
                let _ = writeln!(
                    out,
                    "  vma {:#x}-{:#x} {} {:?}",
                    vma.start, vma.end, vma.perms, vma.name
                );
            }
            for (base, bytes) in proc.mem.populated_pages() {
                let _ = writeln!(out, "  page {base:#x} hash={:#018x}", fnv1a(bytes));
            }
            let dirty: Vec<u64> = proc.mem.dirty_pages().collect();
            let _ = writeln!(out, "  dirty={dirty:x?}");
        }
        self.net.fingerprint(out);
    }

    // ----- running ------------------------------------------------------

    /// Runs the machine for up to `ns` nanoseconds of simulated time,
    /// under the active [`SchedPolicy`].
    pub fn run_for(&mut self, ns: u64) -> RunOutcome {
        let deadline = self.clock_ns.saturating_add(ns);
        let outcome = match self.sched.policy {
            SchedPolicy::RoundRobin => self.run_for_rr(deadline),
            SchedPolicy::Mlfq => self.run_for_mlfq(deadline),
        };
        self.flush_sched_stats();
        outcome
    }

    /// The historical cooperative round-robin pump, kept verbatim as the
    /// fingerprint-parity oracle: every pass re-scans all blocked
    /// processes (`wake_blocked`) and round-robins the runnables.
    fn run_for_rr(&mut self, deadline: u64) -> RunOutcome {
        loop {
            self.wake_blocked();
            let runnable: Vec<Pid> = self
                .procs
                .values()
                .filter(|p| p.is_runnable())
                .map(|p| p.pid)
                .collect();
            if runnable.is_empty() {
                if self.procs.values().all(|p| p.is_exited()) {
                    return RunOutcome::AllExited;
                }
                // Earliest timer wake-up, if any.
                let next_timer = self
                    .procs
                    .values()
                    .filter_map(|p| match p.state {
                        ProcState::Blocked(WaitReason::Until(t)) => Some(t),
                        _ => None,
                    })
                    .min();
                match next_timer {
                    Some(t) if t < deadline => {
                        self.clock_ns = t;
                        continue;
                    }
                    _ => {
                        self.clock_ns = deadline;
                        return RunOutcome::Idle;
                    }
                }
            }
            for pid in runnable {
                // Clamp the slice to the time left: every budget unit
                // advances the clock by at least 1 ns, so a full
                // QUANTUM could overshoot the deadline by most of a
                // slice. (A syscall on the final instruction can still
                // cost up to SYSCALL_COST_NS - 1 ns past it — the same
                // quantisation the real kernel's tick has.)
                let budget = QUANTUM.min(deadline.saturating_sub(self.clock_ns));
                self.step_slice(pid, budget);
                if self.clock_ns >= deadline {
                    return RunOutcome::Deadline;
                }
            }
        }
    }

    /// The preemptive MLFQ run loop. Each pass services the wait-object
    /// registry (boost, expired timers, deferred wake notes), dispatches
    /// the next queued pid at its per-level quantum — clamped so a
    /// higher-priority sleeper's timer never waits out a full
    /// lower-level slice — and re-files the process by its post-slice
    /// state. With nothing queued it admits stray runnables, then idle
    /// fast-forwards to the earliest valid timer. No full-table scan on
    /// the hot path: the only O(N) walks left are the boost-interval
    /// reconciliation and the idle path, where nothing is running
    /// anyway.
    fn run_for_mlfq(&mut self, deadline: u64) -> RunOutcome {
        loop {
            self.sched_service();
            let Some((pid, level)) = self.sched.pop_next() else {
                // Reconcile stray runnables (made runnable by a path
                // that could not know about the scheduler) before
                // declaring idleness.
                let strays: Vec<Pid> = self
                    .procs
                    .values()
                    .filter(|p| p.is_runnable())
                    .map(|p| p.pid)
                    .collect();
                if !strays.is_empty() {
                    for pid in strays {
                        self.sched.enqueue(pid);
                    }
                    continue;
                }
                if self.procs.values().all(|p| p.is_exited()) {
                    return RunOutcome::AllExited;
                }
                match self.next_valid_timer() {
                    Some((t, _)) if t < deadline => {
                        self.sched.stats.idle_ns += t - self.clock_ns;
                        self.clock_ns = t;
                        continue;
                    }
                    _ => {
                        self.sched.stats.idle_ns +=
                            deadline.saturating_sub(self.clock_ns);
                        self.clock_ns = deadline;
                        return RunOutcome::Idle;
                    }
                }
            };
            // Queue entries go stale (freeze, exit, signal death since
            // enqueue): validate before dispatching.
            if !self
                .procs
                .get(&pid)
                .is_some_and(|p| p.is_runnable())
            {
                continue;
            }
            // Per-level quantum (doubling per level), clamped to the
            // deadline, and clamped again if a higher-priority
            // sleeper's timer expires mid-slice — that is the
            // preemption point that keeps serving replicas' sleeps
            // honest while a background slice runs. Only the earliest
            // timer is consulted; a deeper higher-priority timer can be
            // late by at most one slice, the same quantisation the
            // deadline clamp already has.
            let full = QUANTUM << level;
            let mut budget = full.min(deadline.saturating_sub(self.clock_ns));
            let mut timer_clamped = false;
            if level > 0 {
                if let Some((t, sleeper)) = self.next_valid_timer() {
                    if self.sched.effective_level(sleeper) < level
                        && t > self.clock_ns
                        && t - self.clock_ns < budget
                    {
                        budget = t - self.clock_ns;
                        timer_clamped = true;
                    }
                }
            }
            self.sched.stats.quanta += 1;
            if self.sched.trace {
                self.flight.record(
                    self.clock_ns,
                    Some(pid),
                    EventKind::ContextSwitch { level: level as u8 },
                );
            }
            self.step_slice(pid, budget);
            // Re-file by post-slice state. `step_slice` only ends early
            // on block/exit/freeze, so a still-runnable process with an
            // unclamped full budget provably burned its whole quantum:
            // compute-bound, demote.
            match self.procs.get(&pid).map(|p| p.state) {
                None | Some(ProcState::Exited) => self.sched.forget(pid),
                Some(ProcState::Runnable) => {
                    if budget == full {
                        self.sched.demote(pid);
                    } else if timer_clamped {
                        self.sched.stats.preemptions += 1;
                    }
                    self.sched.enqueue(pid);
                }
                Some(ProcState::Blocked(_)) => self.sched_park(pid),
                Some(ProcState::Frozen) => {}
            }
            if self.clock_ns >= deadline {
                return RunOutcome::Deadline;
            }
        }
    }

    /// One registry service pass: periodic priority boost, expired
    /// timers, and deferred wake notes. Every wake is re-validated
    /// against [`pid_ready`](Kernel::pid_ready) — the exact ready
    /// conditions of the round-robin scan — so stale registry entries
    /// and optimistic hints can never wake a process the oracle would
    /// have left blocked.
    fn sched_service(&mut self) {
        if self.clock_ns.saturating_sub(self.sched.last_boost_ns) >= BOOST_INTERVAL_NS {
            self.sched.last_boost_ns = self.clock_ns;
            self.sched.boost();
            // The boost is also the amortized safety net for runnables
            // that slipped past every hint path: admit them here, off
            // the per-quantum hot path.
            let strays: Vec<Pid> = self
                .procs
                .values()
                .filter(|p| p.is_runnable())
                .map(|p| p.pid)
                .collect();
            for pid in strays {
                self.sched.enqueue(pid);
            }
        }
        while let Some(&Reverse((t, pid))) = self.sched.timers.peek() {
            if t > self.clock_ns {
                break;
            }
            self.sched.timers.pop();
            let valid = matches!(
                self.procs.get(&pid).map(|p| p.state),
                Some(ProcState::Blocked(WaitReason::Until(tt))) if tt == t
            );
            if valid {
                self.wake_pid(pid);
            }
        }
        while let Some(hint) = self.sched.hints.pop_front() {
            match hint {
                WakeHint::Pid(pid) => {
                    if self.pid_ready(pid) {
                        self.wake_pid(pid);
                    }
                }
                WakeHint::Conn(id) => {
                    let Some(waiters) = self.sched.read_waiters.remove(&id) else {
                        continue;
                    };
                    let mut keep = Vec::new();
                    for pid in waiters {
                        if !self.read_waiter_matches(pid, id) {
                            continue; // stale: drop it
                        }
                        if self.pid_ready(pid) {
                            self.wake_pid(pid);
                        } else {
                            keep.push(pid);
                        }
                    }
                    if !keep.is_empty() {
                        self.sched.read_waiters.insert(id, keep);
                    }
                }
                WakeHint::Port(port) => {
                    if !self.net.has_backlog(port) {
                        continue;
                    }
                    // One backlog entry wakes exactly one valid
                    // acceptor, in FIFO order — not the whole herd.
                    while let Some(pid) = self
                        .sched
                        .accept_waiters
                        .get_mut(&port)
                        .and_then(|queue| queue.pop_front())
                    {
                        if self.accept_waiter_matches(pid, port) {
                            self.wake_pid(pid);
                            break;
                        }
                    }
                    if self
                        .sched
                        .accept_waiters
                        .get(&port)
                        .is_some_and(|queue| queue.is_empty())
                    {
                        self.sched.accept_waiters.remove(&port);
                    }
                }
            }
        }
    }

    /// Whether the round-robin `wake_blocked` scan would wake `pid`
    /// right now (already-runnable counts as ready). The single
    /// ready-condition oracle both policies share.
    fn pid_ready(&self, pid: Pid) -> bool {
        let Some(proc) = self.procs.get(&pid) else {
            return false;
        };
        let reason = match proc.state {
            ProcState::Runnable => return true,
            ProcState::Blocked(reason) => reason,
            _ => return false,
        };
        if !proc.pending_signals.is_empty() {
            return true;
        }
        match reason {
            WaitReason::Until(t) => self.clock_ns >= t,
            WaitReason::ReadFd(fd) => match proc.fds.get(fd) {
                Some(FileDesc::Conn(id)) => match self.net.conn(*id) {
                    Some(conn) => {
                        (!conn.to_server.is_empty() && conn.state == TcpState::Established)
                            || conn.state == TcpState::Closed
                    }
                    None => true, // vanished: read will return 0
                },
                Some(FileDesc::File { .. }) => true,
                Some(FileDesc::Console) => false,
                _ => true, // bogus fd: let the syscall fail
            },
            WaitReason::Accept(fd) => match proc.fds.get(fd) {
                Some(FileDesc::Listener { port }) => self.net.has_backlog(*port),
                _ => true,
            },
        }
    }

    /// Flips a blocked process runnable and admits it to the run
    /// queues. The *only* `Blocked → Runnable` site under the MLFQ —
    /// and it only runs from inside `run_for`, mirroring the oracle's
    /// rule that scheduler-driven state flips never happen from host
    /// methods (fingerprints taken between runs stay policy-agnostic).
    fn wake_pid(&mut self, pid: Pid) {
        let Some(proc) = self.procs.get_mut(&pid) else {
            return;
        };
        if matches!(proc.state, ProcState::Blocked(_)) {
            proc.state = ProcState::Runnable;
            self.sched.stats.wakeups += 1;
        }
        if proc.state == ProcState::Runnable {
            self.sched.enqueue(pid);
        }
    }

    /// Whether a read-waiter registry entry still describes reality:
    /// the process is blocked reading an fd that maps to this exact
    /// connection. Guards against pid reuse and fd re-targeting across
    /// a restore swap.
    fn read_waiter_matches(&self, pid: Pid, id: ConnId) -> bool {
        let Some(proc) = self.procs.get(&pid) else {
            return false;
        };
        match proc.state {
            ProcState::Blocked(WaitReason::ReadFd(fd)) => {
                matches!(proc.fds.get(fd), Some(FileDesc::Conn(conn)) if *conn == id)
            }
            _ => false,
        }
    }

    /// Accept-waiter analogue of
    /// [`read_waiter_matches`](Kernel::read_waiter_matches).
    fn accept_waiter_matches(&self, pid: Pid, port: u16) -> bool {
        let Some(proc) = self.procs.get(&pid) else {
            return false;
        };
        match proc.state {
            ProcState::Blocked(WaitReason::Accept(fd)) => {
                matches!(proc.fds.get(fd), Some(FileDesc::Listener { port: p }) if *p == port)
            }
            _ => false,
        }
    }

    /// Registers a blocked process on its wait object — without
    /// touching its state. Conditions that are already satisfied (or
    /// that have no wait object, like a bogus fd) become `Pid` hints so
    /// the next service pass wakes the process; genuinely parked
    /// waiters cost nothing until their object is touched. A console
    /// read has no wake source and parks nowhere, exactly like the
    /// round-robin scan that never wakes it.
    fn sched_park(&mut self, pid: Pid) {
        let Some(proc) = self.procs.get(&pid) else {
            return;
        };
        let ProcState::Blocked(reason) = proc.state else {
            return;
        };
        if !proc.pending_signals.is_empty() {
            self.sched.note(WakeHint::Pid(pid));
            return;
        }
        match reason {
            WaitReason::Until(t) => {
                if self.clock_ns >= t {
                    self.sched.note(WakeHint::Pid(pid));
                } else {
                    self.sched.timers.push(Reverse((t, pid)));
                }
            }
            WaitReason::ReadFd(fd) => match proc.fds.get(fd) {
                Some(FileDesc::Conn(id)) => {
                    let id = *id;
                    if self.pid_ready(pid) {
                        self.sched.note(WakeHint::Pid(pid));
                    } else {
                        self.sched.read_waiters.entry(id).or_default().push(pid);
                    }
                }
                Some(FileDesc::Console) => {}
                _ => self.sched.note(WakeHint::Pid(pid)),
            },
            WaitReason::Accept(fd) => match proc.fds.get(fd) {
                Some(FileDesc::Listener { port }) => {
                    let port = *port;
                    if self.net.has_backlog(port) {
                        self.sched.note(WakeHint::Pid(pid));
                    } else {
                        self.sched
                            .accept_waiters
                            .entry(port)
                            .or_default()
                            .push_back(pid);
                    }
                }
                _ => self.sched.note(WakeHint::Pid(pid)),
            },
        }
    }

    /// (Re-)attaches a process to the scheduler from its `ProcState`
    /// alone — spawn, thaw, restore-insert, and policy switches all
    /// funnel through here. This is why scheduler state never needs
    /// checkpointing: everything it holds is derivable on demand.
    fn sched_reattach(&mut self, pid: Pid) {
        if !self.sched.is_mlfq() {
            return;
        }
        let Some(proc) = self.procs.get(&pid) else {
            return;
        };
        match proc.state {
            ProcState::Runnable => self.sched.enqueue(pid),
            ProcState::Blocked(_) => self.sched_park(pid),
            _ => {}
        }
    }

    /// Earliest still-valid sleeper `(wake_time, pid)`, discarding
    /// stale heap entries from the top as a side effect.
    fn next_valid_timer(&mut self) -> Option<(u64, Pid)> {
        while let Some(&Reverse((t, pid))) = self.sched.timers.peek() {
            let valid = matches!(
                self.procs.get(&pid).map(|p| p.state),
                Some(ProcState::Blocked(WaitReason::Until(tt))) if tt == t
            );
            if valid {
                return Some((t, pid));
            }
            self.sched.timers.pop();
        }
        None
    }

    /// Flushes the per-run scheduler counters to the `sched.*` metrics.
    fn flush_sched_stats(&mut self) {
        let stats = self.sched.take_stats();
        let metrics = self.flight.metrics_mut();
        if stats.quanta > 0 {
            metrics.incr("sched.quanta", stats.quanta);
        }
        if stats.preemptions > 0 {
            metrics.incr("sched.preemptions", stats.preemptions);
        }
        if stats.demotions > 0 {
            metrics.incr("sched.demotions", stats.demotions);
        }
        if stats.boosts > 0 {
            metrics.incr("sched.boosts", stats.boosts);
        }
        if stats.wakeups > 0 {
            metrics.incr("sched.wakeups", stats.wakeups);
        }
        if stats.idle_ns > 0 {
            metrics.incr("sched.idle_ns", stats.idle_ns);
        }
    }

    /// Runs until the guest emits event `code`, or `max_ns` passes.
    /// Returns the event if seen.
    pub fn run_until_event(&mut self, code: u64, max_ns: u64) -> Option<Event> {
        let deadline = self.clock_ns.saturating_add(max_ns);
        // Anchor the incremental rescan on the monotonic event seq, not
        // a buffer index: the bounded ring drops its oldest entries
        // when full, and an index into the shifted buffer would
        // double-scan old events or skip fresh ones.
        let mut scanned_seq = self.next_event_seq;
        while self.clock_ns < deadline {
            let outcome = self.run_for(self.pump_chunk_ns.min(deadline - self.clock_ns));
            let start = self.events.partition_point(|event| event.seq < scanned_seq);
            for event in self.events.iter().skip(start) {
                if event.code == code {
                    return Some(*event);
                }
            }
            scanned_seq = self.next_event_seq;
            if outcome == RunOutcome::AllExited {
                break;
            }
        }
        None
    }

    /// Runs until a process exits or `max_ns` passes.
    pub fn run_until_exit(&mut self, pid: Pid, max_ns: u64) -> Option<ExitStatus> {
        let deadline = self.clock_ns.saturating_add(max_ns);
        while self.clock_ns < deadline {
            if let Some(status) = self.exit_status(pid) {
                return Some(status);
            }
            match self.run_for(self.pump_chunk_ns.min(deadline - self.clock_ns)) {
                RunOutcome::AllExited => break,
                RunOutcome::Idle => {
                    if self.exit_status(pid).is_some() {
                        break;
                    }
                }
                RunOutcome::Deadline => {}
            }
        }
        self.exit_status(pid)
    }

    fn wake_blocked(&mut self) {
        let clock = self.clock_ns;
        // Collect wake decisions first to appease the borrow checker.
        let mut wake: Vec<Pid> = Vec::new();
        for proc in self.procs.values() {
            let ProcState::Blocked(reason) = proc.state else {
                continue;
            };
            if !proc.pending_signals.is_empty() {
                wake.push(proc.pid);
                continue;
            }
            let ready = match reason {
                WaitReason::Until(t) => clock >= t,
                WaitReason::ReadFd(fd) => match proc.fds.get(fd) {
                    Some(FileDesc::Conn(id)) => match self.net.conn(*id) {
                        Some(conn) => {
                            (!conn.to_server.is_empty() && conn.state == TcpState::Established)
                                || conn.state == TcpState::Closed
                        }
                        None => true, // vanished: read will return 0
                    },
                    Some(FileDesc::File { .. }) => true,
                    Some(FileDesc::Console) => false,
                    _ => true, // bogus fd: let the syscall fail
                },
                WaitReason::Accept(fd) => match proc.fds.get(fd) {
                    Some(FileDesc::Listener { port }) => self.net.has_backlog(*port),
                    _ => true,
                },
            };
            if ready {
                wake.push(proc.pid);
            }
        }
        for pid in wake {
            if let Some(proc) = self.procs.get_mut(&pid) {
                proc.state = ProcState::Runnable;
            }
        }
    }

    /// Runs one process for at most `budget` instructions.
    ///
    /// With the block cache enabled (the default), execution dispatches
    /// whole decoded blocks: a cache hit revalidates the block's page
    /// generations and then retires its instructions without touching
    /// `decode` or the VMA walk again. Entries that stay hot are
    /// re-decoded as superblocks chained across predicted-taken direct
    /// branches (see [`interp::decode_superblock`]); a recorded
    /// per-instruction pc guard side-exits the moment the guest's
    /// control flow diverges from the prediction. Every
    /// per-instruction accounting rule of the uncached path — clock,
    /// `insns_retired`, hook callbacks, signal-delivery interleaving —
    /// is reproduced exactly, so uncached, cached, and superblocked
    /// runs are bit-identical under
    /// [`state_fingerprint`](Kernel::state_fingerprint).
    fn step_slice(&mut self, pid: Pid, budget: u64) {
        use crate::bcache::HOT_THRESHOLD;
        /// How one block dispatch ended; carried out of the execution
        /// loop so the post-loop handling can borrow `self` again
        /// (the trap journal and syscalls need the whole kernel).
        enum Action {
            /// Budget exhausted or process gone: end the slice.
            Stop,
            /// Re-enter the dispatcher at the current pc (block done,
            /// superblock side-exit, pending signal, invalidation).
            Redispatch,
            /// An instruction faulted; the signal is already delivered.
            Fault {
                signal: Signal,
                fault_addr: u64,
                handled: bool,
                exited: bool,
            },
            /// A syscall instruction retired at `pc`; dispatch it.
            Syscall { pc: u64 },
        }
        let mut hook = self.hook.take();
        let use_cache = !self.block_cache_disabled;
        let use_superblocks = !self.superblocks_disabled;
        // Hot-path stats are accumulated locally and flushed to the
        // metrics registry once per slice.
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut cache_invalidations = 0u64;
        let mut version_swaps = 0u64;
        let mut superblocks_built = 0u64;
        let mut capacity_evictions = 0u64;
        let mut retired = 0u64;
        let mut budget_left = budget;
        'outer: while budget_left > 0 {
            let Some(proc) = self.procs.get_mut(&pid) else {
                break;
            };
            if !proc.is_runnable() {
                break;
            }
            // Deliver pending (asynchronous) signals first.
            if let Some(signal) = proc.pending_signals.pop_front() {
                let pc = proc.cpu.pc;
                interp::deliver_signal(proc, signal, pc, hook.as_deref_mut());
                if proc.is_exited() {
                    break;
                }
            }
            let entry = proc.cpu.pc;

            if !use_cache {
                // Uncached reference path: one fetch/decode/exec per
                // budget unit.
                budget_left -= 1;
                let (insn, len) = match interp::fetch_insn(proc, entry) {
                    Ok(pair) => pair,
                    Err((signal, fault_addr)) => {
                        interp::deliver_signal(proc, signal, fault_addr, hook.as_deref_mut());
                        self.clock_ns += 1;
                        continue;
                    }
                };
                match interp::exec_insn(proc, &insn, len) {
                    Exec::Done => {
                        proc.insns_retired += 1;
                        retired += 1;
                        self.clock_ns += 1;
                        if let Some(hook) = hook.as_deref_mut() {
                            hook.on_insn(pid, entry);
                        }
                    }
                    Exec::Fault(signal, fault_addr) => {
                        let handled =
                            interp::deliver_signal(proc, signal, fault_addr, hook.as_deref_mut());
                        let exited = proc.is_exited();
                        self.clock_ns += 1;
                        if signal == Signal::Sigtrap {
                            // A patched trap byte fired: record the hit
                            // and attribute it to the policy that
                            // planted it, so unhandled traps are not
                            // just opaque 128+SIGTRAP exit codes.
                            self.flight
                                .record_trap_hit(self.clock_ns, pid, fault_addr, handled);
                        }
                        if exited {
                            break;
                        }
                    }
                    Exec::Syscall => {
                        proc.insns_retired += 1;
                        retired += 1;
                        self.clock_ns += SYSCALL_COST_NS;
                        if let Some(hook) = hook.as_deref_mut() {
                            hook.on_insn(pid, entry);
                        }
                        let blocked = self.do_syscall(pid, entry, hook.as_deref_mut());
                        if blocked {
                            break;
                        }
                    }
                }
                continue;
            }

            // ----- cached dispatch --------------------------------------
            // Probe the active version first; on a miss, try to carry
            // the previous version forward (a rewrite-epoch version
            // swap — no re-decode if its page generations still hold).
            let mut lookup = match proc.block_cache.hit(entry) {
                Some((block, heat)) if block.pages_valid(&proc.mem) => {
                    cache_hits += 1;
                    Some((block, heat))
                }
                Some(_) => {
                    // A write, remap, or page drop bumped one of the
                    // block's page generations since it was decoded.
                    cache_invalidations += 1;
                    proc.block_cache.remove(entry);
                    None
                }
                None => None,
            };
            if lookup.is_none() {
                lookup = match proc.block_cache.swap_forward(entry) {
                    Some((block, heat)) if block.pages_valid(&proc.mem) => {
                        cache_hits += 1;
                        version_swaps += 1;
                        Some((block, heat))
                    }
                    Some(_) => {
                        // The previous version decodes pages the rewrite
                        // actually changed — dead for good.
                        cache_invalidations += 1;
                        proc.block_cache.remove(entry);
                        None
                    }
                    None => None,
                };
            }
            let block = match lookup {
                Some((block, heat))
                    if use_superblocks && !block.is_superblock && heat >= HOT_THRESHOLD =>
                {
                    // Hot entry: re-decode chained across predicted
                    // branches and replace the plain block in place
                    // (the entry keeps its dispatch profile).
                    match interp::decode_superblock(proc, entry) {
                        Ok(superblock) => {
                            let superblock = Arc::new(superblock);
                            capacity_evictions +=
                                proc.block_cache.insert(entry, Arc::clone(&superblock));
                            superblocks_built += 1;
                            superblock
                        }
                        // The plain block just validated, so this is
                        // unreachable in practice; run the valid block.
                        Err(_) => block,
                    }
                }
                Some((block, _)) => block,
                None => {
                    cache_misses += 1;
                    match interp::decode_block(proc, entry) {
                        Ok(block) => {
                            let block = Arc::new(block);
                            capacity_evictions +=
                                proc.block_cache.insert(entry, Arc::clone(&block));
                            block
                        }
                        Err((signal, fault_addr)) => {
                            // Same accounting as an uncached fetch error:
                            // one budget unit, one clock tick, nothing
                            // retired.
                            budget_left -= 1;
                            interp::deliver_signal(
                                proc,
                                signal,
                                fault_addr,
                                hook.as_deref_mut(),
                            );
                            self.clock_ns += 1;
                            continue;
                        }
                    }
                }
            };

            // Execute the block with the process borrow held across the
            // whole run (the per-instruction map lookup the old loop
            // paid is most of the dispatch cost for short blocks); the
            // clock is accumulated locally and flushed before anything
            // that reads it (the trap journal, syscall dispatch).
            let mut clock_delta = 0u64;
            let action = 'exec: {
                let Some(proc) = self.procs.get_mut(&pid) else {
                    break 'exec Action::Stop;
                };
                for (i, &(insn, len)) in block.insns.iter().enumerate() {
                    if budget_left == 0 {
                        // Slice over mid-block; the next slice re-enters
                        // at the current pc (a fresh cache key).
                        break 'exec Action::Stop;
                    }
                    // The first instruction runs in the same budget unit
                    // as the signal delivered above (matching the
                    // uncached interleaving); before any later one, a
                    // newly pending signal sends us back to the delivery
                    // point, and a pc that diverges from the decoded
                    // chain is a superblock side-exit (mispredicted
                    // branch) — re-enter the dispatcher at the real pc.
                    if i > 0
                        && (!proc.pending_signals.is_empty() || proc.cpu.pc != block.pcs[i])
                    {
                        break 'exec Action::Redispatch;
                    }
                    budget_left -= 1;
                    let pc = proc.cpu.pc;
                    match interp::exec_insn(proc, &insn, len as usize) {
                        Exec::Done => {
                            proc.insns_retired += 1;
                            retired += 1;
                            clock_delta += 1;
                            if let Some(hook) = hook.as_deref_mut() {
                                hook.on_insn(pid, pc);
                            }
                            // Self-modifying code: if that instruction
                            // wrote memory, it may have overwritten this
                            // very block (even mid-superblock).
                            // Revalidate before running another cached
                            // instruction.
                            if interp::writes_memory(&insn) && !block.pages_valid(&proc.mem) {
                                cache_invalidations += 1;
                                proc.block_cache.remove(entry);
                                break 'exec Action::Redispatch;
                            }
                        }
                        Exec::Fault(signal, fault_addr) => {
                            let handled = interp::deliver_signal(
                                proc,
                                signal,
                                fault_addr,
                                hook.as_deref_mut(),
                            );
                            let exited = proc.is_exited();
                            clock_delta += 1;
                            break 'exec Action::Fault {
                                signal,
                                fault_addr,
                                handled,
                                exited,
                            };
                        }
                        Exec::Syscall => {
                            proc.insns_retired += 1;
                            retired += 1;
                            clock_delta += SYSCALL_COST_NS;
                            if let Some(hook) = hook.as_deref_mut() {
                                hook.on_insn(pid, pc);
                            }
                            break 'exec Action::Syscall { pc };
                        }
                    }
                }
                Action::Redispatch
            };
            self.clock_ns += clock_delta;
            match action {
                Action::Stop => break 'outer,
                Action::Redispatch => continue 'outer,
                Action::Fault {
                    signal,
                    fault_addr,
                    handled,
                    exited,
                } => {
                    if signal == Signal::Sigtrap {
                        self.flight
                            .record_trap_hit(self.clock_ns, pid, fault_addr, handled);
                    }
                    if exited {
                        break 'outer;
                    }
                }
                Action::Syscall { pc } => {
                    if self.do_syscall(pid, pc, hook.as_deref_mut()) {
                        break 'outer;
                    }
                }
            }
        }
        if retired > 0 {
            self.flight.metrics_mut().incr("insns_retired", retired);
        }
        if cache_hits > 0 {
            self.flight.metrics_mut().incr("block_cache.hits", cache_hits);
        }
        if cache_misses > 0 {
            self.flight.metrics_mut().incr("block_cache.misses", cache_misses);
        }
        if cache_invalidations > 0 {
            self.flight
                .metrics_mut()
                .incr("block_cache.invalidations", cache_invalidations);
        }
        if version_swaps > 0 {
            self.flight
                .metrics_mut()
                .incr("block_cache.version_swaps", version_swaps);
        }
        if superblocks_built > 0 {
            self.flight
                .metrics_mut()
                .incr("block_cache.superblocks", superblocks_built);
        }
        if capacity_evictions > 0 {
            self.flight
                .metrics_mut()
                .incr("block_cache.capacity_evictions", capacity_evictions);
        }
        self.hook = hook;
    }

    /// Narrows a raw guest syscall argument to a descriptor number.
    ///
    /// The handlers used to take `args[0] as u32`, silently aliasing
    /// e.g. fd `0x1_0000_0005` to fd `5` — the same truncation defect
    /// class as the PR 3 drcov offset bug, except here it could make a
    /// wild argument *succeed* against an unrelated open descriptor.
    /// Anything that does not fit a `u32` is EBADF by construction.
    fn syscall_fd(arg: u64) -> Result<u32, u64> {
        u32::try_from(arg).map_err(|_| err_ret(9)) // EBADF
    }

    /// Dispatches the syscall whose number is in `r0`. Returns `true` if
    /// the process blocked or exited (ending its time slice).
    ///
    /// `syscall_pc` is the address of the `syscall` instruction, used to
    /// rewind restartable calls when they block.
    fn do_syscall(
        &mut self,
        pid: Pid,
        syscall_pc: u64,
        mut hook: Option<&mut (dyn Hook + '_)>,
    ) -> bool {
        let clock = self.clock_ns;
        let proc = self.procs.get_mut(&pid).expect("caller checked");
        let nr = proc.cpu.reg(Reg::R0);
        let args = [
            proc.cpu.reg(Reg::R1),
            proc.cpu.reg(Reg::R2),
            proc.cpu.reg(Reg::R3),
            proc.cpu.reg(Reg::R4),
            proc.cpu.reg(Reg::R5),
        ];
        if let Some(hook) = hook.as_deref_mut() {
            hook.on_syscall(pid, nr);
        }
        // Seccomp-style filtering (paper §5): a blocked syscall kills the
        // process with SIGSYS, like `SECCOMP_RET_KILL`.
        if !proc.syscall_allowed(nr) {
            proc.kill(Signal::Sigsys);
            return true;
        }
        let Some(sysno) = Sysno::from_raw(nr) else {
            proc.cpu.set_reg(Reg::R0, err_ret(38)); // ENOSYS
            return false;
        };
        match sysno {
            Sysno::Exit => {
                proc.exit(args[0]);
                true
            }
            Sysno::Write => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                let (ptr, len) = (args[1], args[2] as usize);
                let mut buf = vec![0u8; len];
                if proc.mem.read_checked(ptr, &mut buf).is_err() {
                    proc.cpu.set_reg(Reg::R0, err_ret(14)); // EFAULT
                    return false;
                }
                self.clock_ns += (len as u64) / 8;
                match proc.fds.get(fd) {
                    Some(FileDesc::Console) => {
                        proc.console.extend_from_slice(&buf);
                        proc.cpu.set_reg(Reg::R0, len as u64);
                    }
                    Some(FileDesc::Conn(id)) => {
                        let id = *id;
                        match self.net.conn_mut(id) {
                            Some(conn) if conn.state != TcpState::Closed => {
                                conn.to_client.extend(buf);
                                proc.cpu.set_reg(Reg::R0, len as u64);
                            }
                            _ => proc.cpu.set_reg(Reg::R0, err_ret(32)), // EPIPE
                        }
                    }
                    _ => proc.cpu.set_reg(Reg::R0, err_ret(9)), // EBADF
                }
                false
            }
            Sysno::Read => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                let (ptr, len) = (args[1], args[2] as usize);
                match proc.fds.get_mut(fd) {
                    Some(FileDesc::File { file, pos }) => {
                        let contents = &file.contents;
                        let start = (*pos as usize).min(contents.len());
                        let n = len.min(contents.len() - start);
                        let chunk = contents[start..start + n].to_vec();
                        *pos += n as u64;
                        if proc.mem.write_checked(ptr, &chunk).is_err() {
                            proc.cpu.set_reg(Reg::R0, err_ret(14));
                            return false;
                        }
                        proc.cpu.set_reg(Reg::R0, n as u64);
                        self.clock_ns += (n as u64) / 8;
                        false
                    }
                    Some(FileDesc::Conn(id)) => {
                        let id = *id;
                        match self.net.conn_mut(id) {
                            Some(conn) => {
                                if conn.to_server.is_empty() || conn.state == TcpState::Repair {
                                    if conn.state == TcpState::Closed {
                                        proc.cpu.set_reg(Reg::R0, 0);
                                        return false;
                                    }
                                    // Block and restart the syscall later.
                                    proc.cpu.pc = syscall_pc;
                                    proc.state =
                                        ProcState::Blocked(WaitReason::ReadFd(fd));
                                    return true;
                                }
                                let n = len.min(conn.to_server.len());
                                let chunk: Vec<u8> = conn.to_server.drain(..n).collect();
                                if proc.mem.write_checked(ptr, &chunk).is_err() {
                                    proc.cpu.set_reg(Reg::R0, err_ret(14));
                                    return false;
                                }
                                proc.cpu.set_reg(Reg::R0, n as u64);
                                self.clock_ns += (n as u64) / 8;
                                false
                            }
                            None => {
                                proc.cpu.set_reg(Reg::R0, 0);
                                false
                            }
                        }
                    }
                    Some(FileDesc::Console) => {
                        proc.cpu.pc = syscall_pc;
                        proc.state = ProcState::Blocked(WaitReason::ReadFd(fd));
                        true
                    }
                    _ => {
                        proc.cpu.set_reg(Reg::R0, err_ret(9));
                        false
                    }
                }
            }
            Sysno::Open => {
                let (ptr, len) = (args[0], args[1] as usize);
                let mut buf = vec![0u8; len];
                if proc.mem.read_checked(ptr, &mut buf).is_err() {
                    proc.cpu.set_reg(Reg::R0, err_ret(14));
                    return false;
                }
                let Ok(path) = String::from_utf8(buf) else {
                    proc.cpu.set_reg(Reg::R0, err_ret(2)); // ENOENT
                    return false;
                };
                match self.vfs.get(&path) {
                    Some(contents) => {
                        let fd = proc.fds.alloc(FileDesc::File {
                            file: VfsFile {
                                path,
                                contents: Arc::clone(contents),
                            },
                            pos: 0,
                        });
                        proc.cpu.set_reg(Reg::R0, fd as u64);
                    }
                    None => proc.cpu.set_reg(Reg::R0, err_ret(2)),
                }
                false
            }
            Sysno::Close => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                match proc.fds.close(fd) {
                    Some(FileDesc::Conn(id)) => {
                        self.net.close(id);
                        // A close makes any blocked read on the
                        // connection ready (it returns 0).
                        self.sched.note(WakeHint::Conn(id));
                        proc.cpu.set_reg(Reg::R0, 0);
                    }
                    Some(_) => proc.cpu.set_reg(Reg::R0, 0),
                    None => proc.cpu.set_reg(Reg::R0, err_ret(9)),
                }
                false
            }
            Sysno::Socket => {
                let fd = proc.fds.alloc(FileDesc::Socket);
                proc.cpu.set_reg(Reg::R0, fd as u64);
                false
            }
            Sysno::Bind => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                // Ports are a full 16-bit space, so any u16 pattern is a
                // valid port — but a wider argument is still a caller
                // bug, not a port.
                let Ok(port) = u16::try_from(args[1]) else {
                    proc.cpu.set_reg(Reg::R0, err_ret(22)); // EINVAL
                    return false;
                };
                match proc.fds.get_mut(fd) {
                    Some(desc @ FileDesc::Socket) => {
                        *desc = FileDesc::Listener { port };
                        proc.cpu.set_reg(Reg::R0, 0);
                    }
                    _ => proc.cpu.set_reg(Reg::R0, err_ret(9)),
                }
                false
            }
            Sysno::Listen => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                match proc.fds.get(fd) {
                    Some(FileDesc::Listener { port }) => {
                        self.net.listen(*port);
                        proc.cpu.set_reg(Reg::R0, 0);
                    }
                    _ => proc.cpu.set_reg(Reg::R0, err_ret(9)),
                }
                false
            }
            Sysno::Accept => {
                let fd = match Self::syscall_fd(args[0]) {
                    Ok(fd) => fd,
                    Err(errno) => {
                        proc.cpu.set_reg(Reg::R0, errno);
                        return false;
                    }
                };
                match proc.fds.get(fd) {
                    Some(FileDesc::Listener { port }) => {
                        let port = *port;
                        match self.net.accept(port) {
                            Some(id) => {
                                let conn_fd = proc.fds.alloc(FileDesc::Conn(id));
                                proc.cpu.set_reg(Reg::R0, conn_fd as u64);
                                false
                            }
                            None => {
                                proc.cpu.pc = syscall_pc;
                                proc.state = ProcState::Blocked(WaitReason::Accept(fd));
                                true
                            }
                        }
                    }
                    _ => {
                        proc.cpu.set_reg(Reg::R0, err_ret(9));
                        false
                    }
                }
            }
            Sysno::Fork => {
                let mut child = proc.clone();
                let parent_pid = proc.pid;
                let child_pid = {
                    self.next_pid += 1;
                    Pid(self.next_pid)
                };
                child.pid = child_pid;
                child.parent = Some(parent_pid);
                child.cpu.set_reg(Reg::R0, 0);
                child.console.clear();
                child.insns_retired = 0;
                // Parent sees the child pid.
                self.procs
                    .get_mut(&parent_pid)
                    .expect("parent exists")
                    .cpu
                    .set_reg(Reg::R0, child_pid.0 as u64);
                self.procs.insert(child_pid, child);
                self.sched.note(WakeHint::Pid(child_pid));
                if let Some(hook) = hook.as_deref_mut() {
                    hook.on_fork(parent_pid, child_pid);
                }
                false
            }
            Sysno::Getpid => {
                proc.cpu.set_reg(Reg::R0, pid.0 as u64);
                false
            }
            Sysno::Nanosleep => {
                let until = clock.saturating_add(args[0]);
                proc.cpu.set_reg(Reg::R0, 0);
                proc.state = ProcState::Blocked(WaitReason::Until(until));
                true
            }
            Sysno::Sigaction => {
                let (signo, handler, restorer, mask) = (args[0], args[1], args[2], args[3]);
                match Signal::from_number(signo) {
                    Some(signal) if signal.catchable() => {
                        proc.sigactions[signo as usize] = crate::signal::SigAction {
                            handler,
                            restorer,
                            mask,
                        };
                        proc.cpu.set_reg(Reg::R0, 0);
                    }
                    _ => proc.cpu.set_reg(Reg::R0, err_ret(22)), // EINVAL
                }
                false
            }
            Sysno::Sigreturn => {
                if interp::sigreturn(proc, args[0]).is_err() {
                    proc.kill(Signal::Sigsegv);
                    return true;
                }
                false
            }
            Sysno::Mmap => {
                let (hint, len, perm_bits) = (args[0], args[1], args[2]);
                let len = page_align(len.max(1));
                let perms = perms_from_bits(perm_bits);
                let addr = if hint != 0 && hint % PAGE_SIZE == 0 {
                    let free = proc
                        .mem
                        .vmas()
                        .iter()
                        .all(|vma| !vma.overlaps(hint, hint + len));
                    if free {
                        hint
                    } else {
                        proc.mem.find_free(MMAP_BASE, len)
                    }
                } else {
                    proc.mem.find_free(MMAP_BASE, len)
                };
                match proc.mem.map(addr, len, perms, "anon") {
                    Ok(()) => proc.cpu.set_reg(Reg::R0, addr),
                    Err(_) => proc.cpu.set_reg(Reg::R0, err_ret(12)), // ENOMEM
                }
                false
            }
            Sysno::Munmap => {
                let result = proc.mem.unmap(args[0], page_align(args[1].max(1)));
                proc.cpu
                    .set_reg(Reg::R0, if result.is_ok() { 0 } else { err_ret(22) });
                false
            }
            Sysno::Mprotect => {
                let perms = perms_from_bits(args[2]);
                let result = proc.mem.protect(args[0], page_align(args[1].max(1)), perms);
                proc.cpu
                    .set_reg(Reg::R0, if result.is_ok() { 0 } else { err_ret(22) });
                false
            }
            Sysno::ClockGettime => {
                proc.cpu.set_reg(Reg::R0, clock);
                false
            }
            Sysno::EmitEvent => {
                let code = args[0];
                proc.cpu.set_reg(Reg::R0, 0);
                self.push_event(pid, code);
                let kind = if code & VERIFIER_EVENT_BIT != 0 {
                    // The injected verifier library reports a falsely
                    // blocked address (paper §3.2.3): surface it in the
                    // journal instead of leaving it buried in the raw
                    // event stream.
                    self.flight.metrics_mut().incr("verifier.reports", 1);
                    EventKind::VerifierReport {
                        addr: code & !VERIFIER_EVENT_BIT,
                    }
                } else {
                    EventKind::GuestMarker { code }
                };
                self.flight.record(clock, Some(pid), kind);
                if let Some(hook) = hook {
                    hook.on_event(pid, code);
                }
                false
            }
            Sysno::Kill => {
                // Pids are u32; a wider argument must not alias an
                // existing pid (0x1_0000_0001 is not pid 1). ESRCH, the
                // same answer a vacant pid gets.
                let Ok(raw_pid) = u32::try_from(args[0]) else {
                    proc.cpu.set_reg(Reg::R0, err_ret(3)); // ESRCH
                    return false;
                };
                let (target, signo) = (Pid(raw_pid), args[1]);
                let Some(signal) = Signal::from_number(signo) else {
                    proc.cpu.set_reg(Reg::R0, err_ret(22));
                    return false;
                };
                proc.cpu.set_reg(Reg::R0, 0);
                match self.procs.get_mut(&target) {
                    Some(target_proc) => {
                        target_proc.pending_signals.push_back(signal);
                        // A pending signal makes a blocked target ready.
                        self.sched.note(WakeHint::Pid(target));
                    }
                    None => {
                        self.procs
                            .get_mut(&pid)
                            .expect("caller exists")
                            .cpu
                            .set_reg(Reg::R0, err_ret(3)); // ESRCH
                    }
                }
                false
            }
        }
    }
}

/// FNV-1a over a byte slice — cheap content hashing for
/// [`Kernel::state_fingerprint`]. Not cryptographic; the fingerprint
/// compares two states of the *same* deterministic simulation, where a
/// 64-bit collision between a rolled-back page and its pristine twin is
/// not a realistic failure mode.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
