//! Fault injection for transactional checkpoint → rewrite → restore
//! testing.
//!
//! The DynaCut promise is that a *live* process survives customization:
//! any failure after the freeze must leave the kernel bit-identical to
//! the pre-customization state. Proving that requires making every phase
//! fail on demand. This module provides the hook layer: the checkpoint
//! and rewrite code calls [`hit`] at each phase boundary, and tests
//! [`arm`] a phase to make its N-th hit fail.
//!
//! The real injector only exists under the `fault-injection` cargo
//! feature; without it [`hit`] is a constant `false` the optimizer
//! removes, so production builds pay nothing. Armed faults are
//! **one-shot** and **thread-local**: after firing they disarm
//! themselves, so the canonical test shape
//! `arm → customize (fails) → assert rollback → customize (succeeds)`
//! needs no explicit cleanup, and parallel test threads cannot see each
//! other's faults.

/// A phase of the customize cycle that can be made to fail.
///
/// Each variant corresponds to one [`hit`] call site; phases that run
/// once per process (`Dump`, `ImageEdit`, `LibraryInjection`,
/// `RestoreBuild`, `RestoreCommit`) record one hit per process, so
/// arming with `skip = 1` fails the *second* process (e.g. the Nginx
/// worker in a master + worker restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FaultPhase {
    /// The incremental pre-copy taken while the guest still runs.
    PreDump,
    /// Dumping one frozen process into its image set.
    Dump,
    /// Rewriting one process image (trap bytes, wipes, unmaps).
    ImageEdit,
    /// Injecting the fault-handler/verifier library into one image.
    LibraryInjection,
    /// Building one restored process from its images (no kernel writes).
    RestoreBuild,
    /// Resolving one process's page-store handles for a zero-copy
    /// restore (interning the checkpoint payload, before any frame is
    /// installed).
    RestoreHandles,
    /// Installing shared frames / taking the lazy CoW-materialization
    /// path for one staged process.
    CowMaterialize,
    /// Swapping one restored process in for its original.
    RestoreCommit,
    /// Storing the checkpoint (full or delta) into the checkpoint store.
    BaselineStore,
    /// Sweeping the dirty bitmap after a committed restore.
    MarkClean,
    /// One serve slice of a canary rollout's soak period (one hit per
    /// slice).
    CanarySoak,
    /// Promoting the canary image onto one fleet replica (one hit per
    /// target process).
    PromoteRestore,
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultPhase::PreDump => "pre_dump",
            FaultPhase::Dump => "dump",
            FaultPhase::ImageEdit => "image_edit",
            FaultPhase::LibraryInjection => "library_injection",
            FaultPhase::RestoreBuild => "restore_build",
            FaultPhase::RestoreHandles => "restore_handles",
            FaultPhase::CowMaterialize => "cow_materialize",
            FaultPhase::RestoreCommit => "restore_commit",
            FaultPhase::BaselineStore => "baseline_store",
            FaultPhase::MarkClean => "mark_clean",
            FaultPhase::CanarySoak => "canary_soak",
            FaultPhase::PromoteRestore => "promote_restore",
        };
        f.write_str(name)
    }
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::FaultPhase;
    use std::cell::RefCell;

    thread_local! {
        /// `(phase, hits to let pass before firing)` — one-shot arms.
        static ARMED: RefCell<Vec<(FaultPhase, usize)>> = const { RefCell::new(Vec::new()) };
    }

    /// Arms a one-shot fault: the `(skip + 1)`-th [`hit`](super::hit) of
    /// `phase` on this thread fails, then the arm disappears.
    pub fn arm(phase: FaultPhase, skip: usize) {
        ARMED.with(|armed| armed.borrow_mut().push((phase, skip)));
    }

    /// Removes every armed fault on this thread.
    pub fn disarm_all() {
        ARMED.with(|armed| armed.borrow_mut().clear());
    }

    /// Number of faults still armed on this thread.
    pub fn armed_count() -> usize {
        ARMED.with(|armed| armed.borrow().len())
    }

    /// Records a hit of `phase`; returns `true` (and disarms the fault)
    /// if an armed fault fires here.
    pub fn hit(phase: FaultPhase) -> bool {
        ARMED.with(|armed| {
            let mut armed = armed.borrow_mut();
            for index in 0..armed.len() {
                if armed[index].0 != phase {
                    continue;
                }
                if armed[index].1 == 0 {
                    armed.remove(index);
                    return true;
                }
                armed[index].1 -= 1;
                return false;
            }
            false
        })
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::FaultPhase;

    /// No-op without the `fault-injection` feature; arming requires the
    /// feature to have any effect.
    pub fn arm(_phase: FaultPhase, _skip: usize) {}

    /// No-op without the `fault-injection` feature.
    pub fn disarm_all() {}

    /// Always zero without the `fault-injection` feature.
    pub fn armed_count() -> usize {
        0
    }

    /// Always `false` without the `fault-injection` feature.
    #[inline(always)]
    pub fn hit(_phase: FaultPhase) -> bool {
        false
    }
}

pub use imp::{arm, armed_count, disarm_all, hit};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn arm_fires_on_nth_hit_then_disarms() {
        disarm_all();
        arm(FaultPhase::Dump, 2);
        assert!(!hit(FaultPhase::Dump));
        assert!(!hit(FaultPhase::Dump));
        assert!(hit(FaultPhase::Dump), "third hit fires");
        assert!(!hit(FaultPhase::Dump), "one-shot: disarmed after firing");
        assert_eq!(armed_count(), 0);
    }

    #[test]
    fn phases_are_independent() {
        disarm_all();
        arm(FaultPhase::RestoreCommit, 0);
        assert!(!hit(FaultPhase::Dump), "other phases pass through");
        assert!(hit(FaultPhase::RestoreCommit));
    }

    #[test]
    fn disarm_all_clears() {
        arm(FaultPhase::PreDump, 5);
        disarm_all();
        assert_eq!(armed_count(), 0);
        assert!(!hit(FaultPhase::PreDump));
    }
}

#[cfg(all(test, not(feature = "fault-injection")))]
mod tests {
    use super::*;

    #[test]
    fn stub_never_fires() {
        arm(FaultPhase::Dump, 0);
        assert!(!hit(FaultPhase::Dump));
        assert_eq!(armed_count(), 0);
        disarm_all();
    }
}
