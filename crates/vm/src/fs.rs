//! File descriptors and a minimal in-memory filesystem.
//!
//! The guest servers read configuration files during their initialization
//! phase (the very code DynaCut later sheds), so the kernel provides a
//! tiny virtual filesystem alongside socket descriptors.

use crate::net::ConnId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A file registered in the kernel's virtual filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsFile {
    /// Full path, e.g. `"/etc/nginx.conf"`.
    pub path: String,
    /// File contents.
    pub contents: Arc<Vec<u8>>,
}

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileDesc {
    /// Standard output/error sink; bytes are collected per process.
    Console,
    /// An open VFS file with a read cursor.
    File {
        /// The backing file.
        file: VfsFile,
        /// Current read offset.
        pos: u64,
    },
    /// An unbound TCP socket.
    Socket,
    /// A listening TCP socket bound to a port.
    Listener {
        /// Bound port.
        port: u16,
    },
    /// An established TCP connection.
    Conn(ConnId),
}

/// A process's file-descriptor table.
///
/// Descriptor 0 is pre-opened as the console. `fork` clones the table
/// (descriptors referring to the same connection share it, as on Linux).
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<u32, FileDesc>,
    next: u32,
}

impl FdTable {
    /// Creates a table with fd 0 opened on the console.
    pub fn new() -> Self {
        let mut table = FdTable {
            entries: BTreeMap::new(),
            next: 1,
        };
        table.entries.insert(0, FileDesc::Console);
        table
    }

    /// Allocates the lowest free descriptor for `desc`.
    pub fn alloc(&mut self, desc: FileDesc) -> u32 {
        let fd = self.next;
        self.entries.insert(fd, desc);
        self.next += 1;
        fd
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: u32) -> Option<&FileDesc> {
        self.entries.get(&fd)
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, fd: u32) -> Option<&mut FileDesc> {
        self.entries.get_mut(&fd)
    }

    /// Closes a descriptor, returning what it referred to.
    pub fn close(&mut self, fd: u32) -> Option<FileDesc> {
        self.entries.remove(&fd)
    }

    /// Iterates over `(fd, desc)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &FileDesc)> {
        self.entries.iter().map(|(&fd, desc)| (fd, desc))
    }

    /// Replaces the descriptor stored at `fd` (used by checkpoint restore).
    pub fn insert(&mut self, fd: u32, desc: FileDesc) {
        self.entries.insert(fd, desc);
        self.next = self.next.max(fd + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_zero_is_console() {
        let table = FdTable::new();
        assert_eq!(table.get(0), Some(&FileDesc::Console));
    }

    #[test]
    fn alloc_returns_increasing_fds() {
        let mut table = FdTable::new();
        let a = table.alloc(FileDesc::Socket);
        let b = table.alloc(FileDesc::Socket);
        assert!(b > a);
        assert!(table.get(a).is_some());
    }

    #[test]
    fn close_removes_descriptor() {
        let mut table = FdTable::new();
        let fd = table.alloc(FileDesc::Socket);
        assert_eq!(table.close(fd), Some(FileDesc::Socket));
        assert!(table.get(fd).is_none());
        assert_eq!(table.close(fd), None);
    }

    #[test]
    fn insert_bumps_next_allocation() {
        let mut table = FdTable::new();
        table.insert(10, FileDesc::Socket);
        let fd = table.alloc(FileDesc::Socket);
        assert!(fd > 10);
    }
}
