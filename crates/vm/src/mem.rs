//! Paged address spaces with VMA-granular permissions.

use crate::{VmError, Vma};
use dynacut_obj::{Perms, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One immutable, refcounted page frame that several address spaces (and
/// a host-side page store) can back simultaneously.
///
/// This is the zero-copy restore currency: a restore installs clones of
/// a frame into every replica instead of copying the page bytes N
/// times. Frames are **immutable by construction** — the only way to
/// change what a guest reads is copy-on-write inside the owning
/// [`AddressSpace`] — so sharing a frame across processes can never leak
/// one replica's writes into another.
#[derive(Clone, PartialEq, Eq)]
pub struct SharedFrame(Arc<[u8]>);

impl SharedFrame {
    /// Wraps one page's bytes in a shareable frame.
    pub fn new(bytes: &[u8]) -> Self {
        SharedFrame(Arc::from(bytes))
    }

    /// The page bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// How many handles (address-space slots, store entries, staged
    /// processes) currently share this frame.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::fmt::Debug for SharedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedFrame({} bytes, {} handles)",
            self.0.len(),
            self.handle_count()
        )
    }
}

/// How a populated page is backed: privately owned bytes, or a read-only
/// [`SharedFrame`] that copy-on-writes into a private page on the first
/// write.
#[derive(Debug, Clone)]
enum PageSlot {
    /// Bytes owned by this address space alone.
    Private(Box<[u8]>),
    /// A shared read-only frame; the first write copies it private.
    Shared(SharedFrame),
}

impl PageSlot {
    fn bytes(&self) -> &[u8] {
        match self {
            PageSlot::Private(page) => page,
            PageSlot::Shared(frame) => frame.bytes(),
        }
    }
}

/// What a guest access wanted to do; decides which permission bit applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    Read,
    Write,
    Exec,
}

/// A process's virtual address space: a sorted list of [`Vma`]s plus a
/// sparse page store.
///
/// Pages are materialised lazily on first write; reading an unpopulated
/// page inside a mapped VMA yields zeros. The populated/unpopulated
/// distinction is exactly what CRIU's `pagemap` image records, so the
/// checkpoint layer can reproduce it faithfully.
///
/// The space additionally keeps a **dirty-page bitmap** (the soft-dirty
/// analogue incremental checkpointing relies on): every write — guest
/// stores, the loader, restore, rewriter patches — marks the touched
/// pages dirty, and the checkpoint layer sweeps the bitmap with
/// [`mark_clean`](AddressSpace::mark_clean) once a dump has established
/// a new baseline. `dirty_pages() ⊆ populated_pages()` always holds:
/// unmapping or dropping a page clears its dirty bit too.
///
/// ```
/// use dynacut_vm::{AddressSpace, Perms, PAGE_SIZE};
///
/// # fn main() -> Result<(), dynacut_vm::VmError> {
/// let mut space = AddressSpace::new();
/// space.map(0x1000, 2 * PAGE_SIZE, Perms::RW, "heap")?;
/// space.write_unchecked(0x1800, b"hello");
/// assert!(space.page_present(0x1800));
/// assert!(!space.page_present(0x2000), "second page still lazy");
/// assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
/// space.mark_clean();
/// assert_eq!(space.dirty_page_count(), 0, "swept after a dump");
/// space.protect(0x2000, PAGE_SIZE, Perms::R)?;
/// assert_eq!(space.vmas().len(), 2, "mprotect split the VMA");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    pages: BTreeMap<u64, PageSlot>,
    dirty: BTreeSet<u64>,
    /// Copy-on-write faults taken: how many shared pages this space has
    /// privatised because of a write. Host-side accounting only — never
    /// checkpointed, never fingerprinted.
    cow_faults: u64,
    /// Generation counters for pages the block cache has decoded from
    /// (see [`note_code_page`](AddressSpace::note_code_page)). Entries
    /// are created lazily and **never removed** — a page that is
    /// unmapped and re-mapped keeps its bumped generation, so no block
    /// cached before the unmap can ever revalidate. Excluded from
    /// checkpoints and fingerprints: purely host-side cache metadata.
    code_gen: BTreeMap<u64, u64>,
    /// Software iTLB: the `(start, end)` bounds of the last VMA an
    /// instruction fetch hit. A fetch wholly inside the memoised range
    /// skips the VMA walk; any mapping change clears the memo.
    exec_vma: Option<(u64, u64)>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `[start, start+len)` with the given permissions.
    ///
    /// # Errors
    ///
    /// Fails if the range is not page-aligned or overlaps an existing VMA.
    pub fn map(&mut self, start: u64, len: u64, perms: Perms, name: &str) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start));
        }
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(len));
        }
        let end = start + len;
        if self.vmas.iter().any(|vma| vma.overlaps(start, end)) {
            return Err(VmError::MappingOverlap { start, len });
        }
        self.vmas.push(Vma::new(start, end, perms, name));
        self.vmas.sort_by_key(|vma| vma.start);
        self.exec_vma = None;
        Ok(())
    }

    /// Unmaps every whole page intersecting `[start, start+len)`, splitting
    /// VMAs as needed and discarding page contents.
    ///
    /// # Errors
    ///
    /// Fails if the range is not page-aligned.
    pub fn unmap(&mut self, start: u64, len: u64) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start | len));
        }
        let end = start + len;
        let mut next: Vec<Vma> = Vec::with_capacity(self.vmas.len() + 1);
        for vma in self.vmas.drain(..) {
            if !vma.overlaps(start, end) {
                next.push(vma);
                continue;
            }
            if vma.start < start {
                next.push(Vma::new(vma.start, start, vma.perms, &vma.name));
            }
            if vma.end > end {
                next.push(Vma::new(end, vma.end, vma.perms, &vma.name));
            }
        }
        next.sort_by_key(|vma| vma.start);
        self.vmas = next;
        let doomed: Vec<u64> = self
            .pages
            .range(start..end)
            .map(|(&base, _)| base)
            .collect();
        for base in doomed {
            self.pages.remove(&base);
            self.dirty.remove(&base);
        }
        self.bump_code_gens(start, end);
        self.exec_vma = None;
        Ok(())
    }

    /// Changes the permissions of `[start, start+len)`, splitting VMAs as
    /// needed.
    ///
    /// # Errors
    ///
    /// Fails if the range is unaligned or not fully covered by VMAs.
    pub fn protect(&mut self, start: u64, len: u64, perms: Perms) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start | len));
        }
        let end = start + len;
        // Verify coverage first so the operation is atomic.
        let mut cursor = start;
        for vma in self.vmas.iter().filter(|v| v.overlaps(start, end)) {
            if vma.start > cursor {
                return Err(VmError::BadAccess {
                    addr: cursor,
                    kind: "mprotect",
                });
            }
            cursor = cursor.max(vma.end);
        }
        if cursor < end {
            return Err(VmError::BadAccess {
                addr: cursor,
                kind: "mprotect",
            });
        }
        let mut next: Vec<Vma> = Vec::with_capacity(self.vmas.len() + 2);
        for vma in self.vmas.drain(..) {
            if !vma.overlaps(start, end) {
                next.push(vma);
                continue;
            }
            if vma.start < start {
                next.push(Vma::new(vma.start, start, vma.perms, &vma.name));
            }
            let mid_start = vma.start.max(start);
            let mid_end = vma.end.min(end);
            next.push(Vma::new(mid_start, mid_end, perms, &vma.name));
            if vma.end > end {
                next.push(Vma::new(end, vma.end, vma.perms, &vma.name));
            }
        }
        next.sort_by_key(|vma| vma.start);
        self.vmas = next;
        self.bump_code_gens(start, end);
        self.exec_vma = None;
        Ok(())
    }

    /// The VMA containing `addr`, if any.
    pub fn vma_at(&self, addr: u64) -> Option<&Vma> {
        match self.vmas.binary_search_by_key(&addr, |vma| vma.start) {
            Ok(i) => Some(&self.vmas[i]),
            Err(0) => None,
            Err(i) => {
                let vma = &self.vmas[i - 1];
                vma.contains(addr).then_some(vma)
            }
        }
    }

    /// All VMAs in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Finds `len` bytes of unmapped space at or above `hint`, page-aligned.
    pub fn find_free(&self, hint: u64, len: u64) -> u64 {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut candidate = hint.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        loop {
            match self
                .vmas
                .iter()
                .find(|vma| vma.overlaps(candidate, candidate + len))
            {
                None => return candidate,
                Some(vma) => candidate = vma.end,
            }
        }
    }

    fn check(&self, addr: u64, len: u64, access: Access) -> Result<(), VmError> {
        let mut cursor = addr;
        let end = addr.checked_add(len).ok_or(VmError::BadAccess {
            addr,
            kind: access_name(access),
        })?;
        while cursor < end {
            let vma = self.vma_at(cursor).ok_or(VmError::BadAccess {
                addr: cursor,
                kind: access_name(access),
            })?;
            let allowed = match access {
                Access::Read => vma.perms.read,
                Access::Write => vma.perms.write,
                Access::Exec => vma.perms.exec,
            };
            if !allowed {
                return Err(VmError::BadAccess {
                    addr: cursor,
                    kind: access_name(access),
                });
            }
            cursor = vma.end.min(end);
        }
        Ok(())
    }

    /// Guest read (permission-checked).
    pub(crate) fn read_checked(&self, addr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        self.check(addr, buf.len() as u64, Access::Read)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Guest write (permission-checked).
    pub(crate) fn write_checked(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmError> {
        self.check(addr, bytes.len() as u64, Access::Write)?;
        self.copy_in(addr, bytes);
        Ok(())
    }

    /// Instruction fetch through the software iTLB: a fetch wholly
    /// inside the last executable VMA skips the permission walk. Any
    /// mapping change ([`map`](AddressSpace::map),
    /// [`unmap`](AddressSpace::unmap),
    /// [`protect`](AddressSpace::protect)) clears the memo, so the fast
    /// path can never outlive the VMA it memoised.
    pub(crate) fn fetch_exec(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        let end = addr.checked_add(buf.len() as u64).ok_or(VmError::BadAccess {
            addr,
            kind: "exec",
        })?;
        match self.exec_vma {
            Some((lo, hi)) if addr >= lo && end <= hi => {}
            _ => {
                self.check(addr, buf.len() as u64, Access::Exec)?;
                // Memoise only single-VMA fetches; a fetch spanning two
                // executable VMAs stays on the slow path.
                if let Some(vma) = self.vma_at(addr) {
                    if end <= vma.end {
                        self.exec_vma = Some((vma.start, vma.end));
                    }
                }
            }
        }
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Host-side read ignoring permissions (checkpointing, debuggers).
    /// Unmapped bytes read as zero.
    pub fn read_unchecked(&self, addr: u64, buf: &mut [u8]) {
        self.copy_out(addr, buf);
    }

    /// Host-side write ignoring permissions (loader, restore, rewriter).
    pub fn write_unchecked(&mut self, addr: u64, bytes: &[u8]) {
        self.copy_in(addr, bytes);
    }

    fn copy_out(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.pages.get(&page_base) {
                Some(slot) => {
                    let page = slot.bytes();
                    buf[done..done + chunk].copy_from_slice(&page[in_page..in_page + chunk]);
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
    }

    fn copy_in(&mut self, addr: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(bytes.len() - done);
            let slot = self
                .pages
                .entry(page_base)
                .or_insert_with(|| PageSlot::Private(vec![0u8; PAGE_SIZE as usize].into_boxed_slice()));
            // Copy-on-write: the first write to a shared frame privatises
            // the whole page, leaving the frame (and every other space
            // mapping it) untouched.
            if let PageSlot::Shared(frame) = slot {
                *slot = PageSlot::Private(frame.bytes().to_vec().into_boxed_slice());
                self.cow_faults += 1;
            }
            let PageSlot::Private(page) = slot else {
                unreachable!("slot privatised above")
            };
            page[in_page..in_page + chunk].copy_from_slice(&bytes[done..done + chunk]);
            self.dirty.insert(page_base);
            if let Some(gen) = self.code_gen.get_mut(&page_base) {
                *gen += 1;
            }
            done += chunk;
        }
    }

    /// Installs a [`SharedFrame`] as the backing of the page containing
    /// `addr`, replacing any existing contents.
    ///
    /// This is the zero-copy restore primitive: the page reads the
    /// frame's bytes without copying them, and the first guest write
    /// copy-on-writes into a private page. The install has the same
    /// guest-visible effect as `write_unchecked(base, frame.bytes())` —
    /// it marks the page dirty and bumps a registered code-page
    /// generation — so fingerprints cannot distinguish a shared-backed
    /// restore from a copying one.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not exactly [`PAGE_SIZE`] bytes.
    pub fn install_shared_page(&mut self, addr: u64, frame: SharedFrame) {
        assert_eq!(
            frame.bytes().len(),
            PAGE_SIZE as usize,
            "shared frames are whole pages"
        );
        let base = addr & !(PAGE_SIZE - 1);
        self.pages.insert(base, PageSlot::Shared(frame));
        self.dirty.insert(base);
        if let Some(gen) = self.code_gen.get_mut(&base) {
            *gen += 1;
        }
    }

    /// Whether the page containing `addr` is currently backed by a
    /// shared frame (no copy-on-write fault taken yet).
    pub fn page_shared(&self, addr: u64) -> bool {
        matches!(
            self.pages.get(&(addr & !(PAGE_SIZE - 1))),
            Some(PageSlot::Shared(_))
        )
    }

    /// Number of populated pages still backed by shared frames.
    pub fn shared_page_count(&self) -> usize {
        self.pages
            .values()
            .filter(|slot| matches!(slot, PageSlot::Shared(_)))
            .count()
    }

    /// Copy-on-write faults this space has taken (pages privatised by a
    /// write to a shared frame). Multiply by [`PAGE_SIZE`] for the bytes
    /// physically copied by faulting.
    pub fn cow_fault_count(&self) -> u64 {
        self.cow_faults
    }

    /// Whether the page containing `addr` has been populated (written).
    pub fn page_present(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr & !(PAGE_SIZE - 1)))
    }

    /// Iterates over populated pages as `(page_base, bytes)`.
    pub fn populated_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&base, slot)| (base, slot.bytes()))
    }

    /// Number of populated pages.
    pub fn populated_page_count(&self) -> usize {
        self.pages.len()
    }

    /// Drops the backing page (if populated) so its contents read as zero
    /// again. The mapping itself remains. Used by the rewriter's
    /// wipe-policy analogue of `madvise(MADV_DONTNEED)`.
    pub fn drop_page(&mut self, addr: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        self.pages.remove(&base);
        self.dirty.remove(&base);
        if let Some(gen) = self.code_gen.get_mut(&base) {
            *gen += 1;
        }
    }

    /// Iterates over the bases of pages written since the last
    /// [`mark_clean`](AddressSpace::mark_clean) sweep, in address order.
    ///
    /// Every dirty page is populated (`dirty_pages() ⊆ populated_pages()`):
    /// unmapping or dropping a page clears its dirty bit.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of dirty pages.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Whether the page containing `addr` is dirty.
    pub fn page_dirty(&self, addr: u64) -> bool {
        self.dirty.contains(&(addr & !(PAGE_SIZE - 1)))
    }

    /// Clears the dirty bitmap. The checkpoint layer calls this once a
    /// dump has established a new on-disk baseline, so the next
    /// incremental dump only carries pages written after this point.
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    /// Re-marks the page containing `addr` dirty — the rollback inverse
    /// of [`mark_clean`](AddressSpace::mark_clean), used when a failed
    /// customization must restore the dirty bitmap a pre-dump already
    /// swept. A no-op for unpopulated pages, preserving
    /// `dirty_pages() ⊆ populated_pages()`.
    pub fn mark_dirty(&mut self, addr: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        if self.pages.contains_key(&base) {
            self.dirty.insert(base);
        }
    }

    /// Registers the page containing `addr` as holding cached code and
    /// returns its current generation. The block cache calls this for
    /// every page a decoded block spans; from then on any mutation of
    /// the page — stores, host patches, unmap, mprotect, page drops —
    /// bumps the generation, invalidating every block that snapshotted
    /// the old value. Entries are never removed (see the field docs).
    pub fn note_code_page(&mut self, addr: u64) -> u64 {
        let base = addr & !(PAGE_SIZE - 1);
        *self.code_gen.entry(base).or_insert(0)
    }

    /// The current generation of the page containing `addr`: 0 until
    /// the page is first registered via
    /// [`note_code_page`](AddressSpace::note_code_page), bumped on every
    /// mutation thereafter.
    pub fn code_page_gen(&self, addr: u64) -> u64 {
        let base = addr & !(PAGE_SIZE - 1);
        self.code_gen.get(&base).copied().unwrap_or(0)
    }

    /// Bumps the generation of every registered code page intersecting
    /// `[start, end)`.
    fn bump_code_gens(&mut self, start: u64, end: u64) {
        let first = start & !(PAGE_SIZE - 1);
        for (_, gen) in self.code_gen.range_mut(first..end) {
            *gen += 1;
        }
    }

    /// Every registered code page and its current generation, in
    /// address order. The customize commit walks this on the *original*
    /// address space to decide which generations can be carried into
    /// the replacement (see `CommittedRestore::carry_block_caches`).
    pub fn code_pages(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.code_gen.iter().map(|(&base, &gen)| (base, gen))
    }

    /// Seeds the generation of the code page containing `addr` to *at
    /// least* `gen`, registering the page if needed. Seeding only ever
    /// raises the generation: the safe failure direction is a block
    /// that spuriously re-decodes, never one that validates against
    /// changed bytes.
    pub fn seed_code_page_gen(&mut self, addr: u64, gen: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        let entry = self.code_gen.entry(base).or_insert(0);
        *entry = (*entry).max(gen);
    }
}

fn access_name(access: Access) -> &'static str {
    match access {
        Access::Read => "read",
        Access::Write => "write",
        Access::Exec => "exec",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with(start: u64, len: u64, perms: Perms) -> AddressSpace {
        let mut space = AddressSpace::new();
        space.map(start, len, perms, "test").unwrap();
        space
    }

    #[test]
    fn map_rejects_unaligned_and_overlap() {
        let mut space = AddressSpace::new();
        assert!(matches!(
            space.map(0x1001, PAGE_SIZE, Perms::RW, "x"),
            Err(VmError::Unaligned(_))
        ));
        assert!(matches!(
            space.map(0x1000, 100, Perms::RW, "x"),
            Err(VmError::Unaligned(_))
        ));
        space.map(0x1000, 2 * PAGE_SIZE, Perms::RW, "a").unwrap();
        assert!(matches!(
            space.map(0x2000, PAGE_SIZE, Perms::RW, "b"),
            Err(VmError::MappingOverlap { .. })
        ));
    }

    #[test]
    fn read_of_unwritten_page_is_zero() {
        let space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        let mut buf = [0xFFu8; 8];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0; 8]);
        assert!(!space.page_present(0x1000));
    }

    #[test]
    fn write_then_read_round_trips_across_pages() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        space.write_checked(0x1800, &data).unwrap();
        let mut buf = vec![0u8; 5000];
        space.read_checked(0x1800, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(space.populated_page_count(), 2);
    }

    #[test]
    fn permissions_are_enforced() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::R);
        let mut buf = [0u8; 4];
        assert!(space.read_checked(0x1000, &mut buf).is_ok());
        assert!(matches!(
            space.write_checked(0x1000, &[1]),
            Err(VmError::BadAccess { kind: "write", .. })
        ));
        assert!(matches!(
            space.fetch_exec(0x1000, &mut buf),
            Err(VmError::BadAccess { kind: "exec", .. })
        ));
    }

    #[test]
    fn unmapped_access_faults() {
        let space = AddressSpace::new();
        let mut buf = [0u8; 1];
        assert!(space.read_checked(0x5000, &mut buf).is_err());
    }

    #[test]
    fn access_spanning_two_vmas_checks_both() {
        let mut space = AddressSpace::new();
        space.map(0x1000, PAGE_SIZE, Perms::RW, "a").unwrap();
        space.map(0x2000, PAGE_SIZE, Perms::R, "b").unwrap();
        // Write across the boundary must fail because `b` is read-only.
        let err = space.write_checked(0x1FFC, &[0; 8]).unwrap_err();
        assert!(matches!(err, VmError::BadAccess { addr: 0x2000, .. }));
        // Read across the boundary is fine.
        let mut buf = [0u8; 8];
        assert!(space.read_checked(0x1FFC, &mut buf).is_ok());
    }

    #[test]
    fn unmap_splits_vma_and_drops_pages() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RW);
        space.write_checked(0x2000, &[7; 16]).unwrap();
        space.unmap(0x2000, PAGE_SIZE).unwrap();
        assert_eq!(space.vmas().len(), 2);
        assert!(space.vma_at(0x2000).is_none());
        assert!(space.vma_at(0x1000).is_some());
        assert!(space.vma_at(0x3000).is_some());
        assert!(!space.page_present(0x2000));
        // Re-map and the old contents are gone.
        space.map(0x2000, PAGE_SIZE, Perms::RW, "fresh").unwrap();
        let mut buf = [0xFFu8; 16];
        space.read_checked(0x2000, &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn protect_splits_vma() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RX);
        space.protect(0x2000, PAGE_SIZE, Perms::NONE).unwrap();
        assert_eq!(space.vmas().len(), 3);
        assert_eq!(space.vma_at(0x1000).unwrap().perms, Perms::RX);
        assert_eq!(space.vma_at(0x2000).unwrap().perms, Perms::NONE);
        assert_eq!(space.vma_at(0x3000).unwrap().perms, Perms::RX);
        let mut buf = [0u8; 1];
        assert!(space.fetch_exec(0x2000, &mut buf).is_err());
    }

    #[test]
    fn fetch_exec_memo_does_not_outlive_the_vma() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RX);
        let mut buf = [0u8; 1];
        assert!(space.fetch_exec(0x1000, &mut buf).is_ok());
        // Second fetch in the same VMA rides the memo.
        assert!(space.fetch_exec(0x1004, &mut buf).is_ok());
        space.protect(0x1000, PAGE_SIZE, Perms::NONE).unwrap();
        assert!(
            space.fetch_exec(0x1000, &mut buf).is_err(),
            "mprotect must clear the iTLB memo"
        );
    }

    #[test]
    fn protect_requires_full_coverage() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        assert!(space.protect(0x1000, 2 * PAGE_SIZE, Perms::R).is_err());
        // Unchanged on failure.
        assert_eq!(space.vma_at(0x1000).unwrap().perms, Perms::RW);
    }

    #[test]
    fn find_free_skips_existing_mappings() {
        let mut space = AddressSpace::new();
        space.map(0x1000, PAGE_SIZE, Perms::RW, "a").unwrap();
        space.map(0x3000, PAGE_SIZE, Perms::RW, "b").unwrap();
        assert_eq!(space.find_free(0x1000, PAGE_SIZE), 0x2000);
        assert_eq!(space.find_free(0x1000, 2 * PAGE_SIZE), 0x4000);
        assert_eq!(space.find_free(0x9000, PAGE_SIZE), 0x9000);
    }

    #[test]
    fn drop_page_zeroes_contents_but_keeps_mapping() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        space.write_checked(0x1000, &[9; 4]).unwrap();
        space.drop_page(0x1000);
        assert!(!space.page_present(0x1000));
        let mut buf = [0xFFu8; 4];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn writes_mark_pages_dirty_and_mark_clean_sweeps() {
        let mut space = space_with(0x1000, 4 * PAGE_SIZE, Perms::RW);
        assert_eq!(space.dirty_page_count(), 0);
        // A write straddling a page boundary dirties both pages.
        space
            .write_checked(0x2000 - 2, &[1, 2, 3, 4])
            .unwrap();
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000, 0x2000]);
        assert!(space.page_dirty(0x1fff));
        assert!(!space.page_dirty(0x3000));
        space.mark_clean();
        assert_eq!(space.dirty_page_count(), 0);
        assert!(space.page_present(0x1000), "sweep keeps contents");
        // Rewriting the same bytes re-dirties the page.
        space.write_unchecked(0x1000, &[7]);
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
    }

    #[test]
    fn mark_dirty_restores_swept_bits_but_skips_unpopulated_pages() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RW);
        space.write_unchecked(0x1000, &[1]);
        space.mark_clean();
        space.mark_dirty(0x1008);
        assert!(space.page_dirty(0x1000), "populated page re-marked");
        space.mark_dirty(0x2000);
        assert!(
            !space.page_dirty(0x2000),
            "unpopulated page stays clean: dirty ⊆ populated"
        );
    }

    #[test]
    fn unmap_and_drop_page_clear_dirty_bits() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RW);
        space.write_unchecked(0x1000, &[1]);
        space.write_unchecked(0x2000, &[2]);
        space.write_unchecked(0x3000, &[3]);
        space.unmap(0x2000, PAGE_SIZE).unwrap();
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000, 0x3000]);
        space.drop_page(0x3000);
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
    }

    fn full_page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE as usize]
    }

    #[test]
    fn shared_page_reads_without_copying() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        let frame = SharedFrame::new(&full_page(0xAB));
        space.install_shared_page(0x1000, frame.clone());
        assert!(space.page_present(0x1000));
        assert!(space.page_shared(0x1000));
        assert!(space.page_dirty(0x1000), "install dirties like a write");
        assert_eq!(space.shared_page_count(), 1);
        assert_eq!(frame.handle_count(), 2, "frame + installed slot");
        let mut buf = [0u8; 4];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 4]);
        assert_eq!(space.cow_fault_count(), 0, "reads never fault");
    }

    #[test]
    fn first_write_to_shared_page_copy_on_writes() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        let frame = SharedFrame::new(&full_page(0x11));
        space.install_shared_page(0x1000, frame.clone());
        space.write_checked(0x1004, &[0xEE; 2]).unwrap();
        assert_eq!(space.cow_fault_count(), 1);
        assert!(!space.page_shared(0x1000), "privatised by the write");
        assert_eq!(frame.handle_count(), 1, "slot released its handle");
        assert_eq!(frame.bytes(), &full_page(0x11)[..], "frame is immutable");
        let mut buf = [0u8; 8];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0x11, 0x11, 0x11, 0x11, 0xEE, 0xEE, 0x11, 0x11]);
        // Further writes to the now-private page fault no more.
        space.write_checked(0x1000, &[1]).unwrap();
        assert_eq!(space.cow_fault_count(), 1);
    }

    #[test]
    fn cow_in_one_space_is_invisible_to_another_sharing_the_frame() {
        let frame = SharedFrame::new(&full_page(0x42));
        let mut a = space_with(0x1000, PAGE_SIZE, Perms::RW);
        let mut b = space_with(0x1000, PAGE_SIZE, Perms::RW);
        a.install_shared_page(0x1000, frame.clone());
        b.install_shared_page(0x1000, frame.clone());
        assert_eq!(frame.handle_count(), 3);
        a.write_unchecked(0x1000, &[0xFF]);
        let mut buf = [0u8; 1];
        b.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0x42], "b still reads the pristine frame");
        assert!(b.page_shared(0x1000));
        assert_eq!(frame.handle_count(), 2, "only a privatised");
    }

    #[test]
    fn cow_bumps_code_page_generation() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RX);
        space.install_shared_page(0x1000, SharedFrame::new(&full_page(0x90)));
        let gen = space.note_code_page(0x1000);
        space.write_unchecked(0x1008, &[0xCC]);
        assert!(
            space.code_page_gen(0x1000) > gen,
            "a CoW write invalidates decoded blocks like any other write"
        );
    }

    #[test]
    fn install_over_registered_code_page_bumps_generation() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RX);
        space.write_unchecked(0x1000, &[0x90; 4]);
        let gen = space.note_code_page(0x1000);
        space.install_shared_page(0x1000, SharedFrame::new(&full_page(0x90)));
        assert!(
            space.code_page_gen(0x1000) > gen,
            "replacing the backing invalidates cached blocks"
        );
    }

    #[test]
    fn drop_and_unmap_release_shared_frames() {
        let frame = SharedFrame::new(&full_page(9));
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RW);
        space.install_shared_page(0x1000, frame.clone());
        space.install_shared_page(0x2000, frame.clone());
        assert_eq!(frame.handle_count(), 3);
        space.drop_page(0x1000);
        assert_eq!(frame.handle_count(), 2);
        space.unmap(0x2000, PAGE_SIZE).unwrap();
        assert_eq!(frame.handle_count(), 1, "unmap dropped the slot");
        assert_eq!(space.shared_page_count(), 0);
    }

    #[test]
    fn clone_shares_frames_but_privatises_independently() {
        let frame = SharedFrame::new(&full_page(5));
        let mut a = space_with(0x1000, PAGE_SIZE, Perms::RW);
        a.install_shared_page(0x1000, frame.clone());
        let mut b = a.clone();
        assert_eq!(frame.handle_count(), 3, "clone aliases the frame");
        b.write_unchecked(0x1000, &[7]);
        let mut buf = [0u8; 1];
        a.read_unchecked(0x1000, &mut buf);
        assert_eq!(buf, [5], "clone's CoW does not touch the original");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Invariant: the dirty set is always a subset of the populated
        /// set, across arbitrary interleavings of writes, page drops,
        /// unmaps, and clean sweeps.
        #[test]
        fn dirty_is_subset_of_populated(
            ops in proptest::collection::vec((0u8..4, 0u64..8), 1..64)
        ) {
            use proptest::prelude::*;
            let mut space = space_with(0x1000, 8 * PAGE_SIZE, Perms::RW);
            for (op, page) in ops {
                let addr = 0x1000 + page * PAGE_SIZE;
                match op {
                    0 => space.write_unchecked(addr, &[page as u8; 16]),
                    1 => space.drop_page(addr),
                    2 => space.mark_clean(),
                    _ => {
                        space.unmap(addr, PAGE_SIZE).unwrap();
                        space.map(addr, PAGE_SIZE, Perms::RW, "test").unwrap();
                    }
                }
                let populated: std::collections::BTreeSet<u64> =
                    space.populated_pages().map(|(base, _)| base).collect();
                for base in space.dirty_pages() {
                    prop_assert!(
                        populated.contains(&base),
                        "dirty page {base:#x} not populated"
                    );
                }
            }
        }

        /// Shared-frame installs are observationally identical to copying
        /// writes: a space driven by `install_shared_page` and one driven
        /// by `write_unchecked` of the same bytes agree on populated
        /// pages, their contents, and the dirty bitmap — across arbitrary
        /// interleavings of installs, partial writes, drops, and sweeps.
        #[test]
        fn shared_installs_are_equivalent_to_copying_writes(
            ops in proptest::collection::vec((0u8..4, 0u64..6, 0u8..=255u8), 1..48)
        ) {
            use proptest::prelude::*;
            let mut shared = space_with(0x1000, 6 * PAGE_SIZE, Perms::RW);
            let mut copied = space_with(0x1000, 6 * PAGE_SIZE, Perms::RW);
            for (op, page, fill) in ops {
                let addr = 0x1000 + page * PAGE_SIZE;
                match op {
                    0 => {
                        let bytes = vec![fill; PAGE_SIZE as usize];
                        shared.install_shared_page(addr, SharedFrame::new(&bytes));
                        copied.write_unchecked(addr, &bytes);
                    }
                    1 => {
                        shared.write_unchecked(addr + 8, &[fill; 16]);
                        copied.write_unchecked(addr + 8, &[fill; 16]);
                    }
                    2 => {
                        shared.drop_page(addr);
                        copied.drop_page(addr);
                    }
                    _ => {
                        shared.mark_clean();
                        copied.mark_clean();
                    }
                }
                let a: Vec<(u64, Vec<u8>)> = shared
                    .populated_pages()
                    .map(|(base, bytes)| (base, bytes.to_vec()))
                    .collect();
                let b: Vec<(u64, Vec<u8>)> = copied
                    .populated_pages()
                    .map(|(base, bytes)| (base, bytes.to_vec()))
                    .collect();
                prop_assert_eq!(a, b, "page contents diverged");
                prop_assert_eq!(
                    shared.dirty_pages().collect::<Vec<_>>(),
                    copied.dirty_pages().collect::<Vec<_>>(),
                    "dirty bitmaps diverged"
                );
            }
        }
    }
}
