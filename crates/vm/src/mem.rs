//! Paged address spaces with VMA-granular permissions.

use crate::{VmError, Vma};
use dynacut_obj::{Perms, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// What a guest access wanted to do; decides which permission bit applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    Read,
    Write,
    Exec,
}

/// A process's virtual address space: a sorted list of [`Vma`]s plus a
/// sparse page store.
///
/// Pages are materialised lazily on first write; reading an unpopulated
/// page inside a mapped VMA yields zeros. The populated/unpopulated
/// distinction is exactly what CRIU's `pagemap` image records, so the
/// checkpoint layer can reproduce it faithfully.
///
/// The space additionally keeps a **dirty-page bitmap** (the soft-dirty
/// analogue incremental checkpointing relies on): every write — guest
/// stores, the loader, restore, rewriter patches — marks the touched
/// pages dirty, and the checkpoint layer sweeps the bitmap with
/// [`mark_clean`](AddressSpace::mark_clean) once a dump has established
/// a new baseline. `dirty_pages() ⊆ populated_pages()` always holds:
/// unmapping or dropping a page clears its dirty bit too.
///
/// ```
/// use dynacut_vm::{AddressSpace, Perms, PAGE_SIZE};
///
/// # fn main() -> Result<(), dynacut_vm::VmError> {
/// let mut space = AddressSpace::new();
/// space.map(0x1000, 2 * PAGE_SIZE, Perms::RW, "heap")?;
/// space.write_unchecked(0x1800, b"hello");
/// assert!(space.page_present(0x1800));
/// assert!(!space.page_present(0x2000), "second page still lazy");
/// assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
/// space.mark_clean();
/// assert_eq!(space.dirty_page_count(), 0, "swept after a dump");
/// space.protect(0x2000, PAGE_SIZE, Perms::R)?;
/// assert_eq!(space.vmas().len(), 2, "mprotect split the VMA");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    pages: BTreeMap<u64, Box<[u8]>>,
    dirty: BTreeSet<u64>,
    /// Generation counters for pages the block cache has decoded from
    /// (see [`note_code_page`](AddressSpace::note_code_page)). Entries
    /// are created lazily and **never removed** — a page that is
    /// unmapped and re-mapped keeps its bumped generation, so no block
    /// cached before the unmap can ever revalidate. Excluded from
    /// checkpoints and fingerprints: purely host-side cache metadata.
    code_gen: BTreeMap<u64, u64>,
    /// Software iTLB: the `(start, end)` bounds of the last VMA an
    /// instruction fetch hit. A fetch wholly inside the memoised range
    /// skips the VMA walk; any mapping change clears the memo.
    exec_vma: Option<(u64, u64)>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `[start, start+len)` with the given permissions.
    ///
    /// # Errors
    ///
    /// Fails if the range is not page-aligned or overlaps an existing VMA.
    pub fn map(&mut self, start: u64, len: u64, perms: Perms, name: &str) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start));
        }
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(len));
        }
        let end = start + len;
        if self.vmas.iter().any(|vma| vma.overlaps(start, end)) {
            return Err(VmError::MappingOverlap { start, len });
        }
        self.vmas.push(Vma::new(start, end, perms, name));
        self.vmas.sort_by_key(|vma| vma.start);
        self.exec_vma = None;
        Ok(())
    }

    /// Unmaps every whole page intersecting `[start, start+len)`, splitting
    /// VMAs as needed and discarding page contents.
    ///
    /// # Errors
    ///
    /// Fails if the range is not page-aligned.
    pub fn unmap(&mut self, start: u64, len: u64) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start | len));
        }
        let end = start + len;
        let mut next: Vec<Vma> = Vec::with_capacity(self.vmas.len() + 1);
        for vma in self.vmas.drain(..) {
            if !vma.overlaps(start, end) {
                next.push(vma);
                continue;
            }
            if vma.start < start {
                next.push(Vma::new(vma.start, start, vma.perms, &vma.name));
            }
            if vma.end > end {
                next.push(Vma::new(end, vma.end, vma.perms, &vma.name));
            }
        }
        next.sort_by_key(|vma| vma.start);
        self.vmas = next;
        let doomed: Vec<u64> = self
            .pages
            .range(start..end)
            .map(|(&base, _)| base)
            .collect();
        for base in doomed {
            self.pages.remove(&base);
            self.dirty.remove(&base);
        }
        self.bump_code_gens(start, end);
        self.exec_vma = None;
        Ok(())
    }

    /// Changes the permissions of `[start, start+len)`, splitting VMAs as
    /// needed.
    ///
    /// # Errors
    ///
    /// Fails if the range is unaligned or not fully covered by VMAs.
    pub fn protect(&mut self, start: u64, len: u64, perms: Perms) -> Result<(), VmError> {
        if !start.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned(start | len));
        }
        let end = start + len;
        // Verify coverage first so the operation is atomic.
        let mut cursor = start;
        for vma in self.vmas.iter().filter(|v| v.overlaps(start, end)) {
            if vma.start > cursor {
                return Err(VmError::BadAccess {
                    addr: cursor,
                    kind: "mprotect",
                });
            }
            cursor = cursor.max(vma.end);
        }
        if cursor < end {
            return Err(VmError::BadAccess {
                addr: cursor,
                kind: "mprotect",
            });
        }
        let mut next: Vec<Vma> = Vec::with_capacity(self.vmas.len() + 2);
        for vma in self.vmas.drain(..) {
            if !vma.overlaps(start, end) {
                next.push(vma);
                continue;
            }
            if vma.start < start {
                next.push(Vma::new(vma.start, start, vma.perms, &vma.name));
            }
            let mid_start = vma.start.max(start);
            let mid_end = vma.end.min(end);
            next.push(Vma::new(mid_start, mid_end, perms, &vma.name));
            if vma.end > end {
                next.push(Vma::new(end, vma.end, vma.perms, &vma.name));
            }
        }
        next.sort_by_key(|vma| vma.start);
        self.vmas = next;
        self.bump_code_gens(start, end);
        self.exec_vma = None;
        Ok(())
    }

    /// The VMA containing `addr`, if any.
    pub fn vma_at(&self, addr: u64) -> Option<&Vma> {
        match self.vmas.binary_search_by_key(&addr, |vma| vma.start) {
            Ok(i) => Some(&self.vmas[i]),
            Err(0) => None,
            Err(i) => {
                let vma = &self.vmas[i - 1];
                vma.contains(addr).then_some(vma)
            }
        }
    }

    /// All VMAs in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Finds `len` bytes of unmapped space at or above `hint`, page-aligned.
    pub fn find_free(&self, hint: u64, len: u64) -> u64 {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut candidate = hint.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        loop {
            match self
                .vmas
                .iter()
                .find(|vma| vma.overlaps(candidate, candidate + len))
            {
                None => return candidate,
                Some(vma) => candidate = vma.end,
            }
        }
    }

    fn check(&self, addr: u64, len: u64, access: Access) -> Result<(), VmError> {
        let mut cursor = addr;
        let end = addr.checked_add(len).ok_or(VmError::BadAccess {
            addr,
            kind: access_name(access),
        })?;
        while cursor < end {
            let vma = self.vma_at(cursor).ok_or(VmError::BadAccess {
                addr: cursor,
                kind: access_name(access),
            })?;
            let allowed = match access {
                Access::Read => vma.perms.read,
                Access::Write => vma.perms.write,
                Access::Exec => vma.perms.exec,
            };
            if !allowed {
                return Err(VmError::BadAccess {
                    addr: cursor,
                    kind: access_name(access),
                });
            }
            cursor = vma.end.min(end);
        }
        Ok(())
    }

    /// Guest read (permission-checked).
    pub(crate) fn read_checked(&self, addr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        self.check(addr, buf.len() as u64, Access::Read)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Guest write (permission-checked).
    pub(crate) fn write_checked(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmError> {
        self.check(addr, bytes.len() as u64, Access::Write)?;
        self.copy_in(addr, bytes);
        Ok(())
    }

    /// Instruction fetch through the software iTLB: a fetch wholly
    /// inside the last executable VMA skips the permission walk. Any
    /// mapping change ([`map`](AddressSpace::map),
    /// [`unmap`](AddressSpace::unmap),
    /// [`protect`](AddressSpace::protect)) clears the memo, so the fast
    /// path can never outlive the VMA it memoised.
    pub(crate) fn fetch_exec(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        let end = addr.checked_add(buf.len() as u64).ok_or(VmError::BadAccess {
            addr,
            kind: "exec",
        })?;
        match self.exec_vma {
            Some((lo, hi)) if addr >= lo && end <= hi => {}
            _ => {
                self.check(addr, buf.len() as u64, Access::Exec)?;
                // Memoise only single-VMA fetches; a fetch spanning two
                // executable VMAs stays on the slow path.
                if let Some(vma) = self.vma_at(addr) {
                    if end <= vma.end {
                        self.exec_vma = Some((vma.start, vma.end));
                    }
                }
            }
        }
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Host-side read ignoring permissions (checkpointing, debuggers).
    /// Unmapped bytes read as zero.
    pub fn read_unchecked(&self, addr: u64, buf: &mut [u8]) {
        self.copy_out(addr, buf);
    }

    /// Host-side write ignoring permissions (loader, restore, rewriter).
    pub fn write_unchecked(&mut self, addr: u64, bytes: &[u8]) {
        self.copy_in(addr, bytes);
    }

    fn copy_out(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.pages.get(&page_base) {
                Some(page) => buf[done..done + chunk].copy_from_slice(&page[in_page..in_page + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
    }

    fn copy_in(&mut self, addr: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(bytes.len() - done);
            let page = self
                .pages
                .entry(page_base)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            page[in_page..in_page + chunk].copy_from_slice(&bytes[done..done + chunk]);
            self.dirty.insert(page_base);
            if let Some(gen) = self.code_gen.get_mut(&page_base) {
                *gen += 1;
            }
            done += chunk;
        }
    }

    /// Whether the page containing `addr` has been populated (written).
    pub fn page_present(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr & !(PAGE_SIZE - 1)))
    }

    /// Iterates over populated pages as `(page_base, bytes)`.
    pub fn populated_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&base, page)| (base, &page[..]))
    }

    /// Number of populated pages.
    pub fn populated_page_count(&self) -> usize {
        self.pages.len()
    }

    /// Drops the backing page (if populated) so its contents read as zero
    /// again. The mapping itself remains. Used by the rewriter's
    /// wipe-policy analogue of `madvise(MADV_DONTNEED)`.
    pub fn drop_page(&mut self, addr: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        self.pages.remove(&base);
        self.dirty.remove(&base);
        if let Some(gen) = self.code_gen.get_mut(&base) {
            *gen += 1;
        }
    }

    /// Iterates over the bases of pages written since the last
    /// [`mark_clean`](AddressSpace::mark_clean) sweep, in address order.
    ///
    /// Every dirty page is populated (`dirty_pages() ⊆ populated_pages()`):
    /// unmapping or dropping a page clears its dirty bit.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of dirty pages.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Whether the page containing `addr` is dirty.
    pub fn page_dirty(&self, addr: u64) -> bool {
        self.dirty.contains(&(addr & !(PAGE_SIZE - 1)))
    }

    /// Clears the dirty bitmap. The checkpoint layer calls this once a
    /// dump has established a new on-disk baseline, so the next
    /// incremental dump only carries pages written after this point.
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    /// Re-marks the page containing `addr` dirty — the rollback inverse
    /// of [`mark_clean`](AddressSpace::mark_clean), used when a failed
    /// customization must restore the dirty bitmap a pre-dump already
    /// swept. A no-op for unpopulated pages, preserving
    /// `dirty_pages() ⊆ populated_pages()`.
    pub fn mark_dirty(&mut self, addr: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        if self.pages.contains_key(&base) {
            self.dirty.insert(base);
        }
    }

    /// Registers the page containing `addr` as holding cached code and
    /// returns its current generation. The block cache calls this for
    /// every page a decoded block spans; from then on any mutation of
    /// the page — stores, host patches, unmap, mprotect, page drops —
    /// bumps the generation, invalidating every block that snapshotted
    /// the old value. Entries are never removed (see the field docs).
    pub fn note_code_page(&mut self, addr: u64) -> u64 {
        let base = addr & !(PAGE_SIZE - 1);
        *self.code_gen.entry(base).or_insert(0)
    }

    /// The current generation of the page containing `addr`: 0 until
    /// the page is first registered via
    /// [`note_code_page`](AddressSpace::note_code_page), bumped on every
    /// mutation thereafter.
    pub fn code_page_gen(&self, addr: u64) -> u64 {
        let base = addr & !(PAGE_SIZE - 1);
        self.code_gen.get(&base).copied().unwrap_or(0)
    }

    /// Bumps the generation of every registered code page intersecting
    /// `[start, end)`.
    fn bump_code_gens(&mut self, start: u64, end: u64) {
        let first = start & !(PAGE_SIZE - 1);
        for (_, gen) in self.code_gen.range_mut(first..end) {
            *gen += 1;
        }
    }
}

fn access_name(access: Access) -> &'static str {
    match access {
        Access::Read => "read",
        Access::Write => "write",
        Access::Exec => "exec",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with(start: u64, len: u64, perms: Perms) -> AddressSpace {
        let mut space = AddressSpace::new();
        space.map(start, len, perms, "test").unwrap();
        space
    }

    #[test]
    fn map_rejects_unaligned_and_overlap() {
        let mut space = AddressSpace::new();
        assert!(matches!(
            space.map(0x1001, PAGE_SIZE, Perms::RW, "x"),
            Err(VmError::Unaligned(_))
        ));
        assert!(matches!(
            space.map(0x1000, 100, Perms::RW, "x"),
            Err(VmError::Unaligned(_))
        ));
        space.map(0x1000, 2 * PAGE_SIZE, Perms::RW, "a").unwrap();
        assert!(matches!(
            space.map(0x2000, PAGE_SIZE, Perms::RW, "b"),
            Err(VmError::MappingOverlap { .. })
        ));
    }

    #[test]
    fn read_of_unwritten_page_is_zero() {
        let space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        let mut buf = [0xFFu8; 8];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0; 8]);
        assert!(!space.page_present(0x1000));
    }

    #[test]
    fn write_then_read_round_trips_across_pages() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        space.write_checked(0x1800, &data).unwrap();
        let mut buf = vec![0u8; 5000];
        space.read_checked(0x1800, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(space.populated_page_count(), 2);
    }

    #[test]
    fn permissions_are_enforced() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::R);
        let mut buf = [0u8; 4];
        assert!(space.read_checked(0x1000, &mut buf).is_ok());
        assert!(matches!(
            space.write_checked(0x1000, &[1]),
            Err(VmError::BadAccess { kind: "write", .. })
        ));
        assert!(matches!(
            space.fetch_exec(0x1000, &mut buf),
            Err(VmError::BadAccess { kind: "exec", .. })
        ));
    }

    #[test]
    fn unmapped_access_faults() {
        let space = AddressSpace::new();
        let mut buf = [0u8; 1];
        assert!(space.read_checked(0x5000, &mut buf).is_err());
    }

    #[test]
    fn access_spanning_two_vmas_checks_both() {
        let mut space = AddressSpace::new();
        space.map(0x1000, PAGE_SIZE, Perms::RW, "a").unwrap();
        space.map(0x2000, PAGE_SIZE, Perms::R, "b").unwrap();
        // Write across the boundary must fail because `b` is read-only.
        let err = space.write_checked(0x1FFC, &[0; 8]).unwrap_err();
        assert!(matches!(err, VmError::BadAccess { addr: 0x2000, .. }));
        // Read across the boundary is fine.
        let mut buf = [0u8; 8];
        assert!(space.read_checked(0x1FFC, &mut buf).is_ok());
    }

    #[test]
    fn unmap_splits_vma_and_drops_pages() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RW);
        space.write_checked(0x2000, &[7; 16]).unwrap();
        space.unmap(0x2000, PAGE_SIZE).unwrap();
        assert_eq!(space.vmas().len(), 2);
        assert!(space.vma_at(0x2000).is_none());
        assert!(space.vma_at(0x1000).is_some());
        assert!(space.vma_at(0x3000).is_some());
        assert!(!space.page_present(0x2000));
        // Re-map and the old contents are gone.
        space.map(0x2000, PAGE_SIZE, Perms::RW, "fresh").unwrap();
        let mut buf = [0xFFu8; 16];
        space.read_checked(0x2000, &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn protect_splits_vma() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RX);
        space.protect(0x2000, PAGE_SIZE, Perms::NONE).unwrap();
        assert_eq!(space.vmas().len(), 3);
        assert_eq!(space.vma_at(0x1000).unwrap().perms, Perms::RX);
        assert_eq!(space.vma_at(0x2000).unwrap().perms, Perms::NONE);
        assert_eq!(space.vma_at(0x3000).unwrap().perms, Perms::RX);
        let mut buf = [0u8; 1];
        assert!(space.fetch_exec(0x2000, &mut buf).is_err());
    }

    #[test]
    fn fetch_exec_memo_does_not_outlive_the_vma() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RX);
        let mut buf = [0u8; 1];
        assert!(space.fetch_exec(0x1000, &mut buf).is_ok());
        // Second fetch in the same VMA rides the memo.
        assert!(space.fetch_exec(0x1004, &mut buf).is_ok());
        space.protect(0x1000, PAGE_SIZE, Perms::NONE).unwrap();
        assert!(
            space.fetch_exec(0x1000, &mut buf).is_err(),
            "mprotect must clear the iTLB memo"
        );
    }

    #[test]
    fn protect_requires_full_coverage() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        assert!(space.protect(0x1000, 2 * PAGE_SIZE, Perms::R).is_err());
        // Unchanged on failure.
        assert_eq!(space.vma_at(0x1000).unwrap().perms, Perms::RW);
    }

    #[test]
    fn find_free_skips_existing_mappings() {
        let mut space = AddressSpace::new();
        space.map(0x1000, PAGE_SIZE, Perms::RW, "a").unwrap();
        space.map(0x3000, PAGE_SIZE, Perms::RW, "b").unwrap();
        assert_eq!(space.find_free(0x1000, PAGE_SIZE), 0x2000);
        assert_eq!(space.find_free(0x1000, 2 * PAGE_SIZE), 0x4000);
        assert_eq!(space.find_free(0x9000, PAGE_SIZE), 0x9000);
    }

    #[test]
    fn drop_page_zeroes_contents_but_keeps_mapping() {
        let mut space = space_with(0x1000, PAGE_SIZE, Perms::RW);
        space.write_checked(0x1000, &[9; 4]).unwrap();
        space.drop_page(0x1000);
        assert!(!space.page_present(0x1000));
        let mut buf = [0xFFu8; 4];
        space.read_checked(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn writes_mark_pages_dirty_and_mark_clean_sweeps() {
        let mut space = space_with(0x1000, 4 * PAGE_SIZE, Perms::RW);
        assert_eq!(space.dirty_page_count(), 0);
        // A write straddling a page boundary dirties both pages.
        space
            .write_checked(0x2000 - 2, &[1, 2, 3, 4])
            .unwrap();
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000, 0x2000]);
        assert!(space.page_dirty(0x1fff));
        assert!(!space.page_dirty(0x3000));
        space.mark_clean();
        assert_eq!(space.dirty_page_count(), 0);
        assert!(space.page_present(0x1000), "sweep keeps contents");
        // Rewriting the same bytes re-dirties the page.
        space.write_unchecked(0x1000, &[7]);
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
    }

    #[test]
    fn mark_dirty_restores_swept_bits_but_skips_unpopulated_pages() {
        let mut space = space_with(0x1000, 2 * PAGE_SIZE, Perms::RW);
        space.write_unchecked(0x1000, &[1]);
        space.mark_clean();
        space.mark_dirty(0x1008);
        assert!(space.page_dirty(0x1000), "populated page re-marked");
        space.mark_dirty(0x2000);
        assert!(
            !space.page_dirty(0x2000),
            "unpopulated page stays clean: dirty ⊆ populated"
        );
    }

    #[test]
    fn unmap_and_drop_page_clear_dirty_bits() {
        let mut space = space_with(0x1000, 3 * PAGE_SIZE, Perms::RW);
        space.write_unchecked(0x1000, &[1]);
        space.write_unchecked(0x2000, &[2]);
        space.write_unchecked(0x3000, &[3]);
        space.unmap(0x2000, PAGE_SIZE).unwrap();
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000, 0x3000]);
        space.drop_page(0x3000);
        assert_eq!(space.dirty_pages().collect::<Vec<_>>(), vec![0x1000]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Invariant: the dirty set is always a subset of the populated
        /// set, across arbitrary interleavings of writes, page drops,
        /// unmaps, and clean sweeps.
        #[test]
        fn dirty_is_subset_of_populated(
            ops in proptest::collection::vec((0u8..4, 0u64..8), 1..64)
        ) {
            use proptest::prelude::*;
            let mut space = space_with(0x1000, 8 * PAGE_SIZE, Perms::RW);
            for (op, page) in ops {
                let addr = 0x1000 + page * PAGE_SIZE;
                match op {
                    0 => space.write_unchecked(addr, &[page as u8; 16]),
                    1 => space.drop_page(addr),
                    2 => space.mark_clean(),
                    _ => {
                        space.unmap(addr, PAGE_SIZE).unwrap();
                        space.map(addr, PAGE_SIZE, Perms::RW, "test").unwrap();
                    }
                }
                let populated: std::collections::BTreeSet<u64> =
                    space.populated_pages().map(|(base, _)| base).collect();
                for base in space.dirty_pages() {
                    prop_assert!(
                        populated.contains(&base),
                        "dirty page {base:#x} not populated"
                    );
                }
            }
        }
    }
}
