//! The instruction interpreter: fetch, decode, execute, fault.

use crate::bcache::{CachedBlock, MAX_BLOCK_INSNS, MAX_SUPERBLOCK_INSNS};
use crate::cpu::Flags;
use crate::hook::Hook;
use crate::process::Process;
use crate::signal::{
    Signal, SIGFRAME_SIZE, SIG_FRAME_FAULT_ADDR, SIG_FRAME_FLAGS, SIG_FRAME_PC, SIG_FRAME_REGS,
    SIG_FRAME_SIGNO,
};
use dynacut_isa::{decode, Cond, Insn, IsaError, Reg, MAX_INSN_LEN};
use dynacut_obj::PAGE_SIZE;

/// Outcome of the pure-CPU part of execution.
pub(crate) enum Exec {
    Done,
    Fault(Signal, u64),
    Syscall,
}

/// Fetches and decodes the instruction at `pc`.
///
/// Returns the instruction and its length, or the fault signal to raise.
/// Decodes out of a fixed `[u8; MAX_INSN_LEN]` stack buffer (no per-fetch
/// allocation) and goes through the software iTLB
/// ([`AddressSpace::fetch_exec`](crate::AddressSpace::fetch_exec)), which
/// is why it takes `&mut Process`.
pub(crate) fn fetch_insn(proc: &mut Process, pc: u64) -> Result<(Insn, usize), (Signal, u64)> {
    let mut buf = [0u8; MAX_INSN_LEN];
    if proc.mem.fetch_exec(pc, &mut buf[..1]).is_err() {
        return Err((Signal::Sigsegv, pc));
    }
    match decode(&buf[..1], 0) {
        Ok((insn, len)) => Ok((insn, len)),
        Err(IsaError::TruncatedInsn { needed, .. }) if needed <= MAX_INSN_LEN => {
            if proc.mem.fetch_exec(pc, &mut buf[..needed]).is_err() {
                return Err((Signal::Sigsegv, pc));
            }
            match decode(&buf[..needed], 0) {
                Ok((insn, len)) => Ok((insn, len)),
                Err(_) => Err((Signal::Sigill, pc)),
            }
        }
        Err(_) => Err((Signal::Sigill, pc)),
    }
}

/// Decodes the straight-line block entered at `entry`: instructions are
/// appended until (and including) the first terminator or syscall, or
/// until [`MAX_BLOCK_INSNS`].
///
/// Every page the run decodes from is registered with
/// [`AddressSpace::note_code_page`](crate::AddressSpace::note_code_page)
/// and its generation snapshotted, so any later mutation of those pages
/// invalidates the block.
///
/// A decode failure on the *first* instruction is the caller's fault to
/// deliver. A failure later simply ends the block early: execution will
/// reach that pc, miss the cache, and raise the fault with the exact
/// same `(signal, addr)` the uncached interpreter would.
pub(crate) fn decode_block(proc: &mut Process, entry: u64) -> Result<CachedBlock, (Signal, u64)> {
    let mut insns: Vec<(Insn, u8)> = Vec::new();
    let mut pcs: Vec<u64> = Vec::new();
    let mut pages: Vec<(u64, u64)> = Vec::new();
    let mut pc = entry;
    loop {
        let (insn, len) = match fetch_insn(proc, pc) {
            Ok(pair) => pair,
            Err(fault) if insns.is_empty() => return Err(fault),
            Err(_) => break,
        };
        note_insn_pages(proc, &mut pages, pc, len);
        insns.push((insn, len as u8));
        pcs.push(pc);
        pc += len as u64;
        if insn.is_terminator() || matches!(insn, Insn::Syscall) || insns.len() >= MAX_BLOCK_INSNS {
            break;
        }
    }
    Ok(CachedBlock {
        insns: insns.into_boxed_slice(),
        pcs: pcs.into_boxed_slice(),
        pages,
        is_superblock: false,
    })
}

/// Registers (and generation-snapshots) every code page the instruction
/// at `pc` spans, deduplicating against `pages`.
fn note_insn_pages(proc: &mut Process, pages: &mut Vec<(u64, u64)>, pc: u64, len: usize) {
    let mut base = pc & !(PAGE_SIZE - 1);
    let last = (pc + len as u64 - 1) & !(PAGE_SIZE - 1);
    while base <= last {
        if !pages.iter().any(|&(b, _)| b == base) {
            let gen = proc.mem.note_code_page(base);
            pages.push((base, gen));
        }
        base += PAGE_SIZE;
    }
}

/// Re-decodes a hot entry as a **superblock**: the decoder follows the
/// statically *predicted* control flow across direct branches instead
/// of stopping at the first terminator, up to
/// [`MAX_SUPERBLOCK_INSNS`]:
///
/// - `Jmp` and `Call` chain to their (direct) target unconditionally;
/// - a *backward* `Jcc` is predicted taken — it is almost always a loop
///   back-edge, and following it unrolls the loop body into the block;
/// - a *forward* `Jcc` is predicted not-taken and falls through;
/// - indirect branches (`Jmpr`/`Callr`/`Ret`), `Syscall`, `Halt`, and
///   `Trap` end the chain — their successors are data-dependent or
///   leave the pure-CPU path.
///
/// Revisiting a pc (including the entry) is allowed: that *is* the loop
/// unrolling, bounded by the cap. The prediction is pure speculation —
/// the recorded [`CachedBlock::pcs`] let the dispatcher side-exit the
/// moment the guest's actual pc diverges — so a wrong prediction costs
/// a redispatch, never correctness. Page registration and generation
/// snapshots are identical to [`decode_block`], so a planted trap byte
/// anywhere in the chain invalidates the whole superblock.
pub(crate) fn decode_superblock(
    proc: &mut Process,
    entry: u64,
) -> Result<CachedBlock, (Signal, u64)> {
    let mut insns: Vec<(Insn, u8)> = Vec::new();
    let mut pcs: Vec<u64> = Vec::new();
    let mut pages: Vec<(u64, u64)> = Vec::new();
    let mut pc = entry;
    loop {
        let (insn, len) = match fetch_insn(proc, pc) {
            Ok(pair) => pair,
            Err(fault) if insns.is_empty() => return Err(fault),
            Err(_) => break,
        };
        note_insn_pages(proc, &mut pages, pc, len);
        insns.push((insn, len as u8));
        pcs.push(pc);
        let next = pc + len as u64;
        if insns.len() >= MAX_SUPERBLOCK_INSNS {
            break;
        }
        pc = match insn {
            Insn::Jmp(disp) => next.wrapping_add(disp as i64 as u64),
            Insn::Call(disp) => next.wrapping_add(disp as i64 as u64),
            Insn::Jcc(_, disp) if disp < 0 => next.wrapping_add(disp as i64 as u64),
            Insn::Jcc(..) => next,
            Insn::Syscall => break,
            _ if insn.is_terminator() => break,
            _ => next,
        };
    }
    Ok(CachedBlock {
        insns: insns.into_boxed_slice(),
        pcs: pcs.into_boxed_slice(),
        pages,
        is_superblock: true,
    })
}

/// Whether executing the instruction can write guest memory (stores and
/// stack pushes). After one of these retires inside a cached block, the
/// dispatcher must revalidate the block's page generations so
/// self-modifying code takes effect on the very next instruction.
pub(crate) fn writes_memory(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::St(..) | Insn::Push(_) | Insn::Call(_) | Insn::Callr(_)
    )
}

/// Executes one decoded instruction against the process state.
///
/// On success the pc has been advanced (sequentially or to a branch
/// target). Syscall dispatch and faults are returned to the caller.
pub(crate) fn exec_insn(proc: &mut Process, insn: &Insn, len: usize) -> Exec {
    let pc = proc.cpu.pc;
    let next = pc + len as u64;
    macro_rules! binop {
        ($d:expr, $s:expr, $op:expr) => {{
            let a = proc.cpu.reg(*$d);
            let b = proc.cpu.reg(*$s);
            proc.cpu.set_reg(*$d, $op(a, b));
            proc.cpu.pc = next;
        }};
    }
    match insn {
        Insn::Nop => proc.cpu.pc = next,
        Insn::Movi(d, imm) => {
            proc.cpu.set_reg(*d, *imm);
            proc.cpu.pc = next;
        }
        Insn::Mov(d, s) => {
            let v = proc.cpu.reg(*s);
            proc.cpu.set_reg(*d, v);
            proc.cpu.pc = next;
        }
        Insn::Add(d, s) => binop!(d, s, |a: u64, b: u64| a.wrapping_add(b)),
        Insn::Sub(d, s) => binop!(d, s, |a: u64, b: u64| a.wrapping_sub(b)),
        Insn::Mul(d, s) => binop!(d, s, |a: u64, b: u64| a.wrapping_mul(b)),
        Insn::Divu(d, s) => {
            let b = proc.cpu.reg(*s);
            if b == 0 {
                return Exec::Fault(Signal::Sigfpe, pc);
            }
            let a = proc.cpu.reg(*d);
            proc.cpu.set_reg(*d, a / b);
            proc.cpu.pc = next;
        }
        Insn::Modu(d, s) => {
            let b = proc.cpu.reg(*s);
            if b == 0 {
                return Exec::Fault(Signal::Sigfpe, pc);
            }
            let a = proc.cpu.reg(*d);
            proc.cpu.set_reg(*d, a % b);
            proc.cpu.pc = next;
        }
        Insn::And(d, s) => binop!(d, s, |a, b| a & b),
        Insn::Or(d, s) => binop!(d, s, |a, b| a | b),
        Insn::Xor(d, s) => binop!(d, s, |a, b| a ^ b),
        Insn::Shl(d, s) => binop!(d, s, |a: u64, b: u64| a << (b & 63)),
        Insn::Shr(d, s) => binop!(d, s, |a: u64, b: u64| a >> (b & 63)),
        Insn::Addi(d, imm) => {
            let a = proc.cpu.reg(*d);
            proc.cpu.set_reg(*d, a.wrapping_add_signed(*imm as i64));
            proc.cpu.pc = next;
        }
        Insn::Muli(d, imm) => {
            let a = proc.cpu.reg(*d);
            proc.cpu.set_reg(*d, a.wrapping_mul(*imm as i64 as u64));
            proc.cpu.pc = next;
        }
        Insn::Cmp(a, b) => {
            proc.cpu.flags = Flags::compare(proc.cpu.reg(*a), proc.cpu.reg(*b));
            proc.cpu.pc = next;
        }
        Insn::Cmpi(a, imm) => {
            proc.cpu.flags = Flags::compare(proc.cpu.reg(*a), *imm as i64 as u64);
            proc.cpu.pc = next;
        }
        Insn::Lea(d, disp) => {
            proc.cpu.set_reg(*d, next.wrapping_add_signed(*disp as i64));
            proc.cpu.pc = next;
        }
        Insn::Ld(width, d, base, disp) => {
            let addr = proc.cpu.reg(*base).wrapping_add_signed(*disp as i64);
            let mut buf = [0u8; 8];
            let n = width.bytes();
            if proc.mem.read_checked(addr, &mut buf[..n]).is_err() {
                return Exec::Fault(Signal::Sigsegv, addr);
            }
            proc.cpu.set_reg(*d, u64::from_le_bytes(buf));
            proc.cpu.pc = next;
        }
        Insn::St(width, base, disp, s) => {
            let addr = proc.cpu.reg(*base).wrapping_add_signed(*disp as i64);
            let bytes = proc.cpu.reg(*s).to_le_bytes();
            let n = width.bytes();
            if proc.mem.write_checked(addr, &bytes[..n]).is_err() {
                return Exec::Fault(Signal::Sigsegv, addr);
            }
            proc.cpu.pc = next;
        }
        Insn::Jmp(disp) => proc.cpu.pc = next.wrapping_add_signed(*disp as i64),
        Insn::Jcc(cond, disp) => {
            let flags = proc.cpu.flags;
            let taken = match cond {
                Cond::Eq => flags.eq,
                Cond::Ne => !flags.eq,
                Cond::Lt => flags.lt_signed,
                Cond::Le => flags.lt_signed || flags.eq,
                Cond::Gt => !flags.lt_signed && !flags.eq,
                Cond::Ge => !flags.lt_signed,
                Cond::B => flags.lt_unsigned,
                Cond::Be => flags.lt_unsigned || flags.eq,
                Cond::A => !flags.lt_unsigned && !flags.eq,
                Cond::Ae => !flags.lt_unsigned,
            };
            proc.cpu.pc = if taken {
                next.wrapping_add_signed(*disp as i64)
            } else {
                next
            };
        }
        Insn::Jmpr(r) => proc.cpu.pc = proc.cpu.reg(*r),
        Insn::Call(disp) => {
            let sp = proc.cpu.sp().wrapping_sub(8);
            if proc.mem.write_checked(sp, &next.to_le_bytes()).is_err() {
                return Exec::Fault(Signal::Sigsegv, sp);
            }
            proc.cpu.set_sp(sp);
            proc.cpu.pc = next.wrapping_add_signed(*disp as i64);
        }
        Insn::Callr(r) => {
            let target = proc.cpu.reg(*r);
            let sp = proc.cpu.sp().wrapping_sub(8);
            if proc.mem.write_checked(sp, &next.to_le_bytes()).is_err() {
                return Exec::Fault(Signal::Sigsegv, sp);
            }
            proc.cpu.set_sp(sp);
            proc.cpu.pc = target;
        }
        Insn::Ret => {
            let sp = proc.cpu.sp();
            let mut buf = [0u8; 8];
            if proc.mem.read_checked(sp, &mut buf).is_err() {
                return Exec::Fault(Signal::Sigsegv, sp);
            }
            proc.cpu.set_sp(sp + 8);
            proc.cpu.pc = u64::from_le_bytes(buf);
        }
        Insn::Push(r) => {
            let sp = proc.cpu.sp().wrapping_sub(8);
            let value = proc.cpu.reg(*r);
            if proc.mem.write_checked(sp, &value.to_le_bytes()).is_err() {
                return Exec::Fault(Signal::Sigsegv, sp);
            }
            proc.cpu.set_sp(sp);
            proc.cpu.pc = next;
        }
        Insn::Pop(r) => {
            let sp = proc.cpu.sp();
            let mut buf = [0u8; 8];
            if proc.mem.read_checked(sp, &mut buf).is_err() {
                return Exec::Fault(Signal::Sigsegv, sp);
            }
            proc.cpu.set_reg(*r, u64::from_le_bytes(buf));
            proc.cpu.set_sp(sp + 8);
            proc.cpu.pc = next;
        }
        Insn::Syscall => {
            proc.cpu.pc = next;
            return Exec::Syscall;
        }
        Insn::Halt => return Exec::Fault(Signal::Sigill, pc),
        Insn::Trap => return Exec::Fault(Signal::Sigtrap, pc),
    }
    Exec::Done
}

/// Delivers `signal` to the process: either sets up a handler frame on the
/// guest stack or kills the process (default action). Returns whether a
/// handler frame was successfully set up (`false` means the process died).
///
/// `fault_addr` is the faulting instruction or data address, stored in the
/// signal frame where the injected fault handler reads it (paper §3.2.2:
/// "obtain the execution context … update the instruction pointer by
/// adding an offset to the exception address").
pub(crate) fn deliver_signal(
    proc: &mut Process,
    signal: Signal,
    fault_addr: u64,
    hook: Option<&mut (dyn Hook + '_)>,
) -> bool {
    let action = proc.sigactions[signal.number() as usize];
    let handled = action.is_handled() && signal.catchable() && proc.signal_depth < 16;
    if let Some(hook) = hook {
        hook.on_signal(proc.pid, signal, handled);
    }
    if !handled {
        proc.kill(signal);
        return false;
    }
    // Build the signal frame below the current stack pointer.
    let frame = proc.cpu.sp().wrapping_sub(SIGFRAME_SIZE);
    let mut bytes = Vec::with_capacity(SIGFRAME_SIZE as usize);
    bytes.extend_from_slice(&proc.cpu.pc.to_le_bytes()); // SIG_FRAME_PC
    bytes.extend_from_slice(&proc.cpu.flags.to_bits().to_le_bytes()); // SIG_FRAME_FLAGS
    bytes.extend_from_slice(&fault_addr.to_le_bytes()); // SIG_FRAME_FAULT_ADDR
    bytes.extend_from_slice(&signal.number().to_le_bytes()); // SIG_FRAME_SIGNO
    for reg in proc.cpu.regs {
        bytes.extend_from_slice(&reg.to_le_bytes()); // SIG_FRAME_REGS
    }
    debug_assert_eq!(bytes.len() as u64, SIGFRAME_SIZE);
    if proc.mem.write_checked(frame, &bytes).is_err() {
        // Double fault: cannot even build the frame.
        proc.kill(Signal::Sigsegv);
        return false;
    }
    // Push the restorer as the handler's return address.
    let sp = frame.wrapping_sub(8);
    if proc
        .mem
        .write_checked(sp, &action.restorer.to_le_bytes())
        .is_err()
    {
        proc.kill(Signal::Sigsegv);
        return false;
    }
    proc.cpu.set_sp(sp);
    proc.cpu.set_reg(Reg::R1, signal.number());
    proc.cpu.set_reg(Reg::R2, frame);
    proc.cpu.pc = action.handler;
    proc.signal_depth += 1;
    true
}

/// Restores the context saved in the signal frame at `frame` (the
/// `sigreturn` syscall).
pub(crate) fn sigreturn(proc: &mut Process, frame: u64) -> Result<(), ()> {
    let mut bytes = vec![0u8; SIGFRAME_SIZE as usize];
    if proc.mem.read_checked(frame, &mut bytes).is_err() {
        return Err(());
    }
    let word = |off: u64| -> u64 {
        u64::from_le_bytes(bytes[off as usize..off as usize + 8].try_into().expect("in range"))
    };
    let _ = word(SIG_FRAME_FAULT_ADDR);
    let _ = word(SIG_FRAME_SIGNO);
    for i in 0..16 {
        proc.cpu.regs[i] = word(SIG_FRAME_REGS + 8 * i as u64);
    }
    proc.cpu.flags = Flags::from_bits(word(SIG_FRAME_FLAGS));
    proc.cpu.pc = word(SIG_FRAME_PC);
    proc.signal_depth = proc.signal_depth.saturating_sub(1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Pid;
    use crate::signal::SigAction;
    use dynacut_obj::Perms;

    fn proc_with_stack() -> Process {
        let mut proc = Process::new(Pid(1), "t");
        proc.mem
            .map(0x1000, 0x2000, Perms::RW, "[stack]")
            .unwrap();
        proc.cpu.set_sp(0x3000);
        proc
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut proc = proc_with_stack();
        proc.cpu.set_reg(Reg::R1, 10);
        proc.cpu.set_reg(Reg::R2, 3);
        assert!(matches!(
            exec_insn(&mut proc, &Insn::Sub(Reg::R1, Reg::R2), 3),
            Exec::Done
        ));
        assert_eq!(proc.cpu.reg(Reg::R1), 7);
        assert!(matches!(
            exec_insn(&mut proc, &Insn::Cmpi(Reg::R1, 7), 6),
            Exec::Done
        ));
        assert!(proc.cpu.flags.eq);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut proc = proc_with_stack();
        proc.cpu.set_reg(Reg::R1, 10);
        proc.cpu.set_reg(Reg::R2, 0);
        assert!(matches!(
            exec_insn(&mut proc, &Insn::Divu(Reg::R1, Reg::R2), 3),
            Exec::Fault(Signal::Sigfpe, _)
        ));
    }

    #[test]
    fn push_pop_round_trip() {
        let mut proc = proc_with_stack();
        proc.cpu.set_reg(Reg::R3, 0xABCD);
        exec_insn(&mut proc, &Insn::Push(Reg::R3), 2);
        assert_eq!(proc.cpu.sp(), 0x3000 - 8);
        exec_insn(&mut proc, &Insn::Pop(Reg::R4), 2);
        assert_eq!(proc.cpu.reg(Reg::R4), 0xABCD);
        assert_eq!(proc.cpu.sp(), 0x3000);
    }

    #[test]
    fn call_and_ret() {
        let mut proc = proc_with_stack();
        proc.cpu.pc = 100;
        exec_insn(&mut proc, &Insn::Call(50), 5);
        assert_eq!(proc.cpu.pc, 105 + 50);
        exec_insn(&mut proc, &Insn::Ret, 1);
        assert_eq!(proc.cpu.pc, 105);
        assert_eq!(proc.cpu.sp(), 0x3000);
    }

    #[test]
    fn trap_faults_with_sigtrap_at_pc() {
        let mut proc = proc_with_stack();
        proc.cpu.pc = 0x42;
        assert!(matches!(
            exec_insn(&mut proc, &Insn::Trap, 1),
            Exec::Fault(Signal::Sigtrap, 0x42)
        ));
        // pc unchanged so the frame records the trap site.
        assert_eq!(proc.cpu.pc, 0x42);
    }

    #[test]
    fn store_to_unmapped_faults_with_address() {
        let mut proc = proc_with_stack();
        proc.cpu.set_reg(Reg::R1, 0xDEAD_0000);
        assert!(matches!(
            exec_insn(
                &mut proc,
                &Insn::St(dynacut_isa::Width::B8, Reg::R1, 0, Reg::R2),
                7
            ),
            Exec::Fault(Signal::Sigsegv, 0xDEAD_0000)
        ));
    }

    #[test]
    fn unhandled_signal_kills() {
        let mut proc = proc_with_stack();
        deliver_signal(&mut proc, Signal::Sigtrap, 0x42, None);
        assert!(proc.is_exited());
        assert_eq!(proc.fatal_signal, Some(Signal::Sigtrap));
    }

    #[test]
    fn handled_signal_builds_frame_and_sigreturn_restores() {
        let mut proc = proc_with_stack();
        proc.sigactions[Signal::Sigtrap.number() as usize] = SigAction {
            handler: 0x7000,
            restorer: 0x7100,
            mask: 0,
        };
        proc.cpu.pc = 0x1234;
        proc.cpu.set_reg(Reg::R5, 99);
        let before = proc.cpu.clone();

        deliver_signal(&mut proc, Signal::Sigtrap, 0x1234, None);
        assert!(!proc.is_exited());
        assert_eq!(proc.cpu.pc, 0x7000);
        assert_eq!(proc.cpu.reg(Reg::R1), Signal::Sigtrap.number());
        let frame = proc.cpu.reg(Reg::R2);
        assert_eq!(frame, before.sp() - SIGFRAME_SIZE);
        assert_eq!(proc.signal_depth, 1);
        // Return address below the frame is the restorer.
        let mut ra = [0u8; 8];
        proc.mem.read_checked(proc.cpu.sp(), &mut ra).unwrap();
        assert_eq!(u64::from_le_bytes(ra), 0x7100);

        // Handler edits the saved pc (+4), then sigreturn.
        let mut saved_pc = [0u8; 8];
        proc.mem
            .read_checked(frame + SIG_FRAME_PC, &mut saved_pc)
            .unwrap();
        assert_eq!(u64::from_le_bytes(saved_pc), 0x1234);
        proc.mem
            .write_checked(frame + SIG_FRAME_PC, &0x1238u64.to_le_bytes())
            .unwrap();
        sigreturn(&mut proc, frame).unwrap();
        assert_eq!(proc.cpu.pc, 0x1238);
        assert_eq!(proc.cpu.reg(Reg::R5), 99);
        assert_eq!(proc.cpu.sp(), before.sp());
        assert_eq!(proc.signal_depth, 0);
    }

    #[test]
    fn frame_records_fault_addr_and_signo() {
        let mut proc = proc_with_stack();
        proc.sigactions[Signal::Sigtrap.number() as usize] = SigAction {
            handler: 0x7000,
            restorer: 0x7100,
            mask: 0,
        };
        proc.cpu.pc = 0x4444;
        deliver_signal(&mut proc, Signal::Sigtrap, 0x4444, None);
        let frame = proc.cpu.reg(Reg::R2);
        let mut buf = [0u8; 8];
        proc.mem
            .read_checked(frame + SIG_FRAME_FAULT_ADDR, &mut buf)
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0x4444);
        proc.mem
            .read_checked(frame + SIG_FRAME_SIGNO, &mut buf)
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), Signal::Sigtrap.number());
    }

    #[test]
    fn signal_with_unwritable_stack_double_faults() {
        let mut proc = Process::new(Pid(1), "t");
        proc.cpu.set_sp(0x10); // no stack mapped
        proc.sigactions[Signal::Sigtrap.number() as usize] = SigAction {
            handler: 0x7000,
            restorer: 0x7100,
            mask: 0,
        };
        deliver_signal(&mut proc, Signal::Sigtrap, 0, None);
        assert!(proc.is_exited());
        assert_eq!(proc.fatal_signal, Some(Signal::Sigsegv));
    }
}
