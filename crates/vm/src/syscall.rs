//! Syscall numbers and argument conventions.
//!
//! The guest invokes the kernel with the `syscall` instruction: the number
//! in `r0`, arguments in `r1..=r5`, the result back in `r0`. Errors are
//! returned as `u64::MAX - errno` style negative values ([`err_ret`]).

/// Syscall numbers of the DCVM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Sysno {
    /// `exit(code)` — terminate the calling process.
    Exit = 0,
    /// `write(fd, buf, len) -> n` — console, file or socket write.
    Write = 1,
    /// `read(fd, buf, len) -> n` — blocking read.
    Read = 2,
    /// `open(path_ptr, path_len) -> fd` — open a VFS file read-only.
    Open = 3,
    /// `close(fd)`.
    Close = 4,
    /// `socket() -> fd`.
    Socket = 5,
    /// `bind(fd, port)`.
    Bind = 6,
    /// `listen(fd)`.
    Listen = 7,
    /// `accept(fd) -> connfd` — blocking.
    Accept = 8,
    /// `fork() -> child_pid | 0`.
    Fork = 9,
    /// `getpid() -> pid`.
    Getpid = 10,
    /// `nanosleep(ns)`.
    Nanosleep = 11,
    /// `sigaction(signo, handler, restorer, mask)`.
    Sigaction = 12,
    /// `sigreturn(frame_ptr)` — restore context from a signal frame.
    Sigreturn = 13,
    /// `mmap(addr_hint, len, perms) -> addr` — anonymous mapping.
    Mmap = 14,
    /// `munmap(addr, len)`.
    Munmap = 15,
    /// `mprotect(addr, len, perms)`.
    Mprotect = 16,
    /// `clock_gettime() -> ns` — kernel time.
    ClockGettime = 17,
    /// `emit_event(code)` — phase marker for host tooling (nudge channel).
    EmitEvent = 18,
    /// `kill(pid, signo)`.
    Kill = 19,
}

impl Sysno {
    /// Converts a raw syscall number.
    pub fn from_raw(raw: u64) -> Option<Sysno> {
        use Sysno::*;
        Some(match raw {
            0 => Exit,
            1 => Write,
            2 => Read,
            3 => Open,
            4 => Close,
            5 => Socket,
            6 => Bind,
            7 => Listen,
            8 => Accept,
            9 => Fork,
            10 => Getpid,
            11 => Nanosleep,
            12 => Sigaction,
            13 => Sigreturn,
            14 => Mmap,
            15 => Munmap,
            16 => Mprotect,
            17 => ClockGettime,
            18 => EmitEvent,
            19 => Kill,
            _ => return None,
        })
    }
}

/// Encodes a syscall error as a "negative" return value.
pub fn err_ret(errno: u64) -> u64 {
    u64::MAX - errno
}

/// Whether a return value is an error (top bit heuristic like Linux's
/// `-4095..-1` window).
pub fn is_err(value: u64) -> bool {
    value > u64::MAX - 4096
}

/// Perms encoding used by mmap/mprotect arguments: bit0 read, bit1 write,
/// bit2 exec.
pub fn perms_from_bits(bits: u64) -> dynacut_obj::Perms {
    dynacut_obj::Perms {
        read: bits & 1 != 0,
        write: bits & 2 != 0,
        exec: bits & 4 != 0,
    }
}

/// Inverse of [`perms_from_bits`].
pub fn perms_to_bits(perms: dynacut_obj::Perms) -> u64 {
    (perms.read as u64) | (perms.write as u64) << 1 | (perms.exec as u64) << 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_numbers_round_trip() {
        for raw in 0..20u64 {
            let sysno = Sysno::from_raw(raw).expect("defined");
            assert_eq!(sysno as u64, raw);
        }
        assert_eq!(Sysno::from_raw(20), None);
        assert_eq!(Sysno::from_raw(u64::MAX), None);
    }

    #[test]
    fn error_encoding_is_detectable() {
        assert!(is_err(err_ret(1)));
        assert!(is_err(err_ret(4095)));
        assert!(!is_err(0));
        assert!(!is_err(12345));
    }

    #[test]
    fn perms_bits_round_trip() {
        for bits in 0..8u64 {
            assert_eq!(perms_to_bits(perms_from_bits(bits)), bits);
        }
    }
}
