//! Signals, signal actions, and the guest signal frame.

use std::fmt;

/// Signals the DCVM kernel can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Signal {
    /// Breakpoint trap — raised by executing the `0xCC` trap byte. This is
    /// the signal DynaCut's injected fault handler catches (paper §3.2.2).
    Sigtrap = 0,
    /// Invalid memory access (unmapped page or permission violation).
    Sigsegv = 1,
    /// Illegal instruction (undecodable opcode, `halt`).
    Sigill = 2,
    /// Arithmetic fault (division by zero).
    Sigfpe = 3,
    /// Uncatchable kill.
    Sigkill = 4,
    /// Polite termination request.
    Sigterm = 5,
    /// Bad system call — raised when the process's syscall filter blocks
    /// a call (the seccomp analogue, paper §5).
    Sigsys = 6,
}

impl Signal {
    /// Number of distinct signals.
    pub const COUNT: usize = 7;

    /// All signals in number order.
    pub const ALL: [Signal; Signal::COUNT] = [
        Signal::Sigtrap,
        Signal::Sigsegv,
        Signal::Sigill,
        Signal::Sigfpe,
        Signal::Sigkill,
        Signal::Sigterm,
        Signal::Sigsys,
    ];

    /// The signal's number (index into the sigaction table).
    pub fn number(self) -> u64 {
        self as u64
    }

    /// Converts a signal number back to a [`Signal`].
    pub fn from_number(number: u64) -> Option<Signal> {
        Signal::ALL.get(number as usize).copied()
    }

    /// Whether a handler may be registered (everything but `SIGKILL`).
    pub fn catchable(self) -> bool {
        self != Signal::Sigkill
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Signal::Sigtrap => "SIGTRAP",
            Signal::Sigsegv => "SIGSEGV",
            Signal::Sigill => "SIGILL",
            Signal::Sigfpe => "SIGFPE",
            Signal::Sigkill => "SIGKILL",
            Signal::Sigterm => "SIGTERM",
            Signal::Sigsys => "SIGSYS",
        };
        f.write_str(name)
    }
}

/// A registered signal disposition, as stored in the process (and in the
/// CRIU core image's sigaction field, which the process rewriter edits to
/// install the injected handler — paper §3.3 "The core image file").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SigAction {
    /// Guest address of the handler; `0` means default action.
    pub handler: u64,
    /// Guest address of the restorer stub that issues `rt_sigreturn`.
    pub restorer: u64,
    /// Bitmask of signals blocked while the handler runs.
    pub mask: u64,
}

impl SigAction {
    /// Whether a user handler is installed.
    pub fn is_handled(&self) -> bool {
        self.handler != 0
    }
}

/// Byte offset of the saved program counter inside a signal frame.
///
/// The injected fault handler adds an offset to this field so that
/// `sigreturn` resumes at the application's error path instead of the
/// blocked instruction (paper Figure 5, step ③).
pub const SIG_FRAME_PC: u64 = 0;
/// Byte offset of the packed comparison flags.
pub const SIG_FRAME_FLAGS: u64 = 8;
/// Byte offset of the faulting address (the trap instruction's address).
pub const SIG_FRAME_FAULT_ADDR: u64 = 16;
/// Byte offset of the signal number.
pub const SIG_FRAME_SIGNO: u64 = 24;
/// Byte offset of the saved register file (16 × 8 bytes, `r0` first).
pub const SIG_FRAME_REGS: u64 = 32;
/// Total size of a signal frame in bytes.
pub const SIGFRAME_SIZE: u64 = SIG_FRAME_REGS + 16 * 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for signal in Signal::ALL {
            assert_eq!(Signal::from_number(signal.number()), Some(signal));
        }
        assert_eq!(Signal::from_number(99), None);
    }

    #[test]
    fn sigkill_is_uncatchable() {
        assert!(!Signal::Sigkill.catchable());
        assert!(Signal::Sigtrap.catchable());
    }

    #[test]
    fn frame_layout_is_consistent() {
        // Compile-time layout checks (clippy: assertions_on_constants).
        const _: () = {
            assert!(SIG_FRAME_PC < SIG_FRAME_FLAGS);
            assert!(SIG_FRAME_FLAGS < SIG_FRAME_FAULT_ADDR);
            assert!(SIG_FRAME_FAULT_ADDR < SIG_FRAME_SIGNO);
            assert!(SIG_FRAME_SIGNO < SIG_FRAME_REGS);
        };
        assert_eq!(SIGFRAME_SIZE, 32 + 128);
    }

    #[test]
    fn default_action_is_unhandled() {
        assert!(!SigAction::default().is_handled());
        assert!(SigAction {
            handler: 0x1000,
            restorer: 0x2000,
            mask: 0
        }
        .is_handled());
    }
}
