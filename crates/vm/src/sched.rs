//! The MLFQ run-queue and wait-object registry.
//!
//! [`Kernel::run_for`](crate::Kernel::run_for) historically was a
//! cooperative round-robin pump: every loop pass rebuilt a `Vec<Pid>` of
//! runnables and linearly re-checked **every** blocked process
//! (`wake_blocked`) — O(N) bookkeeping per quantum, no priorities. This
//! module replaces that with:
//!
//! * a **multi-level feedback queue** ([`SCHED_LEVELS`] levels, FIFO per
//!   level). A process that burns its full per-level quantum is demoted
//!   one level (it is compute-bound); one that blocks voluntarily keeps
//!   its level (it is latency-sensitive). A periodic priority boost
//!   ([`BOOST_INTERVAL_NS`]) returns every normal-class process to the
//!   top level, bounding starvation. [`SchedClass::Background`]
//!   processes are pinned to the bottom level so customize-driven guest
//!   work never delays serving replicas;
//! * a **wait-object registry** that kills both O(N) scans: sleepers
//!   live in a `BinaryHeap` min-heap keyed by wake time, and
//!   `ReadFd`/`Accept` waiters are indexed by connection id / listener
//!   port, so delivery and block sites wake exactly the affected pids.
//!
//! The registry is deliberately **lazy**: entries are never cancelled
//! in place (a freeze, exit, or signal wake may strand one), they are
//! validated when popped — an entry only wakes a process that is still
//! blocked for that exact reason *and* whose ready condition genuinely
//! holds, so a stale entry can never produce a spurious wake (which
//! would re-execute the blocked syscall and break the bit-identical
//! fingerprint parity with the round-robin oracle).
//!
//! None of this state is guest-observable: it is rebuilt from
//! [`ProcState`](crate::ProcState) on demand, excluded from
//! `state_fingerprint`, and never checkpointed (DESIGN §14).

use crate::net::ConnId;
use crate::process::Pid;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Number of run-queue levels. Level 0 is the highest priority; the
/// per-level quantum doubles with each level.
pub const SCHED_LEVELS: usize = 4;

/// Guest-time period of the priority boost: at least this often, every
/// normal-class process returns to level 0, so even a demoted
/// compute-bound process is scheduled within one boost interval of
/// becoming runnable (the starvation bound the proptest suite pins).
pub const BOOST_INTERVAL_NS: u64 = 100_000;

/// Which run loop [`Kernel::run_for`](crate::Kernel::run_for) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The historical cooperative pump: round-robin over every runnable
    /// process, full `wake_blocked` scan per pass. Kept as a toggleable
    /// oracle (mirroring `set_block_cache_enabled`) — single-process
    /// workloads are bit-identical under `state_fingerprint` between
    /// the two policies.
    RoundRobin,
    /// The preemptive MLFQ with wait-object wake lists (the default).
    #[default]
    Mlfq,
}

/// Scheduling class of a process under [`SchedPolicy::Mlfq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedClass {
    /// Normal feedback scheduling (the default).
    #[default]
    Normal,
    /// Pinned to the bottom run-queue level: the customize engine tags
    /// the process groups of an in-flight cycle as background so
    /// serving replicas preempt their pumped guest work.
    Background,
}

/// A deferred wake note. Block sites and delivery paths push hints
/// (cheap, no process access needed — legal even while a process borrow
/// is live inside the syscall dispatcher); the run loop drains and
/// validates them against the actual ready conditions before waking
/// anyone.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WakeHint {
    /// Bytes, close, or repair-exit touched this connection: re-check
    /// its indexed read-waiters.
    Conn(ConnId),
    /// A connection entered this port's backlog: wake one acceptor.
    Port(u16),
    /// Re-evaluate one pid (signal posted, new/thawed process, or
    /// already-ready at park time).
    Pid(Pid),
}

/// Counters accumulated during a run and flushed to the metrics
/// registry as `sched.*` afterwards.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SchedStats {
    /// Slices dispatched off the run queues.
    pub quanta: u64,
    /// Slices cut short so a higher-level sleeper could run on time.
    pub preemptions: u64,
    /// Full-quantum burns that moved a process down a level.
    pub demotions: u64,
    /// Priority boosts performed.
    pub boosts: u64,
    /// Blocked→runnable transitions via the wait-object registry. The
    /// whole point of the registry is `wakeups ≪ quanta`: the old
    /// round-robin pump re-checked every blocked process every pass.
    pub wakeups: u64,
    /// Guest time fast-forwarded with nothing runnable.
    pub idle_ns: u64,
}

/// The scheduler state owned by the kernel. Pure host-side machinery:
/// never fingerprinted, never checkpointed — a restored process re-parks
/// from its `ProcState` alone.
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    /// Active policy.
    pub(crate) policy: SchedPolicy,
    /// FIFO run queue per level.
    queues: [VecDeque<Pid>; SCHED_LEVELS],
    /// Pids currently sitting in some queue (guards double-enqueue).
    queued: BTreeSet<Pid>,
    /// Current MLFQ level per known pid (absent = level 0).
    level: BTreeMap<Pid, usize>,
    /// Background-class pids (normal-class pids are not stored).
    class: BTreeMap<Pid, SchedClass>,
    /// Sleepers: `(wake_time_ns, pid)` min-heap. Entries are validated
    /// on pop (the process must still be `Blocked(Until(t))` with the
    /// same `t`).
    pub(crate) timers: BinaryHeap<Reverse<(u64, Pid)>>,
    /// Read-blocked pids indexed by the connection they wait on.
    pub(crate) read_waiters: BTreeMap<ConnId, Vec<Pid>>,
    /// Accept-blocked pids indexed by listener port, FIFO so backlog
    /// entries are handed out in arrival order.
    pub(crate) accept_waiters: BTreeMap<u16, VecDeque<Pid>>,
    /// Deferred wake notes, drained at the top of every run-loop pass.
    pub(crate) hints: VecDeque<WakeHint>,
    /// Guest time of the last priority boost.
    pub(crate) last_boost_ns: u64,
    /// Per-run counters (flushed to `sched.*` metrics after each run).
    pub(crate) stats: SchedStats,
    /// Whether dispatches are journalled as `ContextSwitch` events
    /// (off by default: always-on dispatch tracing would flood the
    /// bounded flight ring and evict the stage events tests pin).
    pub(crate) trace: bool,
}

impl Scheduler {
    /// Whether the MLFQ machinery is active.
    pub(crate) fn is_mlfq(&self) -> bool {
        self.policy == SchedPolicy::Mlfq
    }

    /// The process's scheduling class.
    pub(crate) fn class_of(&self, pid: Pid) -> SchedClass {
        self.class.get(&pid).copied().unwrap_or_default()
    }

    /// Sets the scheduling class. Lazy: a queued process finishes its
    /// current residence and re-enqueues at the new effective level.
    pub(crate) fn set_class(&mut self, pid: Pid, class: SchedClass) {
        match class {
            SchedClass::Normal => {
                self.class.remove(&pid);
            }
            SchedClass::Background => {
                self.class.insert(pid, class);
            }
        }
    }

    /// The level the process would be enqueued at: its feedback level,
    /// or the bottom for background-class processes.
    pub(crate) fn effective_level(&self, pid: Pid) -> usize {
        if self.class_of(pid) == SchedClass::Background {
            SCHED_LEVELS - 1
        } else {
            self.level.get(&pid).copied().unwrap_or(0)
        }
    }

    /// Enqueues at the effective level. No-op if already queued (or
    /// under the round-robin oracle).
    pub(crate) fn enqueue(&mut self, pid: Pid) {
        if !self.is_mlfq() || !self.queued.insert(pid) {
            return;
        }
        let level = self.effective_level(pid);
        self.queues[level].push_back(pid);
    }

    /// Pops the next pid in (level, FIFO) order, with the level it was
    /// dispatched from. The caller validates it is still runnable.
    pub(crate) fn pop_next(&mut self) -> Option<(Pid, usize)> {
        for (level, queue) in self.queues.iter_mut().enumerate() {
            if let Some(pid) = queue.pop_front() {
                self.queued.remove(&pid);
                return Some((pid, level));
            }
        }
        None
    }

    /// One level down (burned a full quantum without blocking).
    pub(crate) fn demote(&mut self, pid: Pid) {
        let level = self.level.entry(pid).or_insert(0);
        if *level + 1 < SCHED_LEVELS {
            *level += 1;
            self.stats.demotions += 1;
        }
    }

    /// Priority boost: every normal-class process returns to level 0.
    /// Queued pids are re-enqueued in their current (level, FIFO)
    /// order, so relative order among equals is preserved.
    pub(crate) fn boost(&mut self) {
        self.stats.boosts += 1;
        for level in self.level.values_mut() {
            *level = 0;
        }
        let mut pids: Vec<Pid> = Vec::with_capacity(self.queued.len());
        for queue in &mut self.queues {
            pids.extend(queue.drain(..));
        }
        self.queued.clear();
        for pid in pids {
            self.enqueue(pid);
        }
    }

    /// Pushes a deferred wake note. No-op under the round-robin oracle
    /// (its full scan needs no notes, and nothing would drain them).
    pub(crate) fn note(&mut self, hint: WakeHint) {
        if self.is_mlfq() {
            self.hints.push_back(hint);
        }
    }

    /// Drops a pid from the run queues and the level map (process
    /// removed). Wait-object entries are left to lazy validation; the
    /// class tag survives so a restore swap (remove + insert of the
    /// same pid) keeps an engine-applied background tag.
    pub(crate) fn forget(&mut self, pid: Pid) {
        if self.queued.remove(&pid) {
            for queue in &mut self.queues {
                queue.retain(|&p| p != pid);
            }
        }
        self.level.remove(&pid);
    }

    /// Clears everything rebuilt from process state (policy switch).
    /// Class tags, stats, and the boost clock survive.
    pub(crate) fn clear_dynamic(&mut self) {
        for queue in &mut self.queues {
            queue.clear();
        }
        self.queued.clear();
        self.level.clear();
        self.timers.clear();
        self.read_waiters.clear();
        self.accept_waiters.clear();
        self.hints.clear();
    }

    /// Takes and zeroes the per-run counters.
    pub(crate) fn take_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_is_level_ordered_and_duplicate_free() {
        let mut sched = Scheduler::default();
        sched.enqueue(Pid(1));
        sched.enqueue(Pid(2));
        sched.enqueue(Pid(1)); // duplicate ignored
        sched.demote(Pid(3));
        sched.enqueue(Pid(3)); // level 1
        assert_eq!(sched.pop_next(), Some((Pid(1), 0)));
        assert_eq!(sched.pop_next(), Some((Pid(2), 0)));
        assert_eq!(sched.pop_next(), Some((Pid(3), 1)));
        assert_eq!(sched.pop_next(), None);
    }

    #[test]
    fn demotion_saturates_at_bottom_and_boost_resets() {
        let mut sched = Scheduler::default();
        for _ in 0..10 {
            sched.demote(Pid(7));
        }
        assert_eq!(sched.effective_level(Pid(7)), SCHED_LEVELS - 1);
        assert_eq!(sched.stats.demotions as usize, SCHED_LEVELS - 1);
        sched.enqueue(Pid(7));
        sched.boost();
        assert_eq!(sched.effective_level(Pid(7)), 0);
        assert_eq!(sched.pop_next(), Some((Pid(7), 0)));
    }

    #[test]
    fn background_class_pins_to_bottom_through_boosts() {
        let mut sched = Scheduler::default();
        sched.set_class(Pid(4), SchedClass::Background);
        sched.enqueue(Pid(4));
        assert_eq!(sched.pop_next(), Some((Pid(4), SCHED_LEVELS - 1)));
        sched.enqueue(Pid(4));
        sched.boost();
        assert_eq!(sched.pop_next(), Some((Pid(4), SCHED_LEVELS - 1)));
        sched.set_class(Pid(4), SchedClass::Normal);
        sched.enqueue(Pid(4));
        assert_eq!(sched.pop_next(), Some((Pid(4), 0)));
    }

    #[test]
    fn forget_removes_queue_presence_but_keeps_class() {
        let mut sched = Scheduler::default();
        sched.set_class(Pid(9), SchedClass::Background);
        sched.enqueue(Pid(9));
        sched.forget(Pid(9));
        assert_eq!(sched.pop_next(), None);
        assert_eq!(sched.class_of(Pid(9)), SchedClass::Background);
    }

    #[test]
    fn notes_are_dropped_under_the_round_robin_oracle() {
        let mut sched = Scheduler {
            policy: SchedPolicy::RoundRobin,
            ..Scheduler::default()
        };
        sched.note(WakeHint::Pid(Pid(1)));
        sched.enqueue(Pid(1));
        assert!(sched.hints.is_empty());
        assert_eq!(sched.pop_next(), None);
    }
}
