//! Error type for kernel operations.

use crate::process::Pid;
use std::error::Error;
use std::fmt;

/// Errors raised by the DCVM kernel's host-facing API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// No process with this pid exists.
    NoSuchProcess(Pid),
    /// The operation requires the process to be frozen (or not frozen).
    BadProcessState {
        /// The process in question.
        pid: Pid,
        /// What the operation expected.
        expected: &'static str,
    },
    /// A memory mapping overlaps an existing VMA.
    MappingOverlap {
        /// Requested start address.
        start: u64,
        /// Requested length.
        len: u64,
    },
    /// An address or length is not page-aligned.
    Unaligned(u64),
    /// A guest memory access touched an unmapped or permission-protected
    /// address (host-side accessors only; guest-side faults become
    /// signals).
    BadAccess {
        /// The faulting address.
        addr: u64,
        /// What the access wanted.
        kind: &'static str,
    },
    /// No listener on the requested port.
    ConnectionRefused(u16),
    /// The connection id is unknown or closed.
    BadConnection(u64),
    /// A loader error (propagated from `dynacut-obj`).
    Load(dynacut_obj::ObjError),
    /// Too many processes or file descriptors.
    ResourceExhausted(&'static str),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            VmError::BadProcessState { pid, expected } => {
                write!(f, "process {pid} is not {expected}")
            }
            VmError::MappingOverlap { start, len } => {
                write!(f, "mapping [{start:#x}, +{len:#x}) overlaps an existing vma")
            }
            VmError::Unaligned(addr) => write!(f, "address {addr:#x} is not page-aligned"),
            VmError::BadAccess { addr, kind } => {
                write!(f, "bad {kind} access at {addr:#x}")
            }
            VmError::ConnectionRefused(port) => write!(f, "connection refused on port {port}"),
            VmError::BadConnection(id) => write!(f, "unknown or closed connection {id}"),
            VmError::Load(err) => write!(f, "load error: {err}"),
            VmError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Load(err) => Some(err),
            _ => None,
        }
    }
}

impl From<dynacut_obj::ObjError> for VmError {
    fn from(err: dynacut_obj::ObjError) -> Self {
        VmError::Load(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let samples = [
            VmError::NoSuchProcess(Pid(7)),
            VmError::BadProcessState {
                pid: Pid(1),
                expected: "frozen",
            },
            VmError::MappingOverlap {
                start: 0x1000,
                len: 0x2000,
            },
            VmError::Unaligned(3),
            VmError::BadAccess {
                addr: 0xdead,
                kind: "read",
            },
            VmError::ConnectionRefused(80),
            VmError::BadConnection(9),
            VmError::ResourceExhausted("fds"),
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }
}
