//! Per-process CPU state.

use dynacut_isa::Reg;

/// Comparison flags set by `cmp`/`cmpi` and consumed by `jcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Operands were equal.
    pub eq: bool,
    /// First operand was less than the second, signed.
    pub lt_signed: bool,
    /// First operand was less than the second, unsigned.
    pub lt_unsigned: bool,
}

impl Flags {
    /// Packs the flags into a word (for signal frames and checkpoints).
    pub fn to_bits(self) -> u64 {
        (self.eq as u64) | (self.lt_signed as u64) << 1 | (self.lt_unsigned as u64) << 2
    }

    /// Unpacks flags from a word produced by [`Flags::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        Flags {
            eq: bits & 1 != 0,
            lt_signed: bits & 2 != 0,
            lt_unsigned: bits & 4 != 0,
        }
    }

    /// Computes flags for `cmp a, b`.
    pub fn compare(a: u64, b: u64) -> Self {
        Flags {
            eq: a == b,
            lt_signed: (a as i64) < (b as i64),
            lt_unsigned: a < b,
        }
    }
}

/// A process's register file, program counter and flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuState {
    /// The sixteen general-purpose registers.
    pub regs: [u64; 16],
    /// The program counter.
    pub pc: u64,
    /// Comparison flags.
    pub flags: Flags,
}

impl CpuState {
    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.index()] = value;
    }

    /// The stack pointer (`r15`).
    pub fn sp(&self) -> u64 {
        self.regs[Reg::SP.index()]
    }

    /// Sets the stack pointer (`r15`).
    pub fn set_sp(&mut self, value: u64) {
        self.regs[Reg::SP.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip_through_bits() {
        for bits in 0..8u64 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn compare_distinguishes_signed_and_unsigned() {
        // -1 (as u64::MAX) vs 1: signed less, unsigned greater.
        let flags = Flags::compare(u64::MAX, 1);
        assert!(!flags.eq);
        assert!(flags.lt_signed);
        assert!(!flags.lt_unsigned);

        let flags = Flags::compare(1, u64::MAX);
        assert!(!flags.lt_signed);
        assert!(flags.lt_unsigned);

        let flags = Flags::compare(5, 5);
        assert!(flags.eq);
        assert!(!flags.lt_signed);
        assert!(!flags.lt_unsigned);
    }

    #[test]
    fn sp_is_register_fifteen() {
        let mut cpu = CpuState::default();
        cpu.set_sp(0xBEEF);
        assert_eq!(cpu.regs[15], 0xBEEF);
        assert_eq!(cpu.sp(), 0xBEEF);
    }
}
