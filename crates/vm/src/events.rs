//! The flight recorder: a bounded, typed event journal plus a metrics
//! registry that every layer of the customize cycle reports into.
//!
//! The paper's evaluation hangs off knowing *where downtime goes* during
//! process rewriting (§3.2, Fig. 6/8), and the transactional-customize
//! work needs a durable record of which phases ran and which rollback
//! steps unwound them. This module is that record:
//!
//! * [`FlightEvent`] — a typed event stamped with the guest clock and a
//!   monotonically increasing sequence number,
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of events. Memory
//!   is bounded; when the ring is full the oldest event is evicted and
//!   the [`dropped`](FlightRecorder::dropped) counter incremented, so
//!   loss is **always observable**, never silent,
//! * [`Metrics`] — named monotonic counters plus power-of-two duration
//!   [`Histogram`]s (blocks patched, pages pre-copied vs frozen-copied,
//!   injections, rollbacks, trap hits by policy, per-phase durations).
//!
//! The recorder lives inside the [`Kernel`](crate::Kernel) so producers
//! across crates (the customize orchestrator, the checkpoint layer, the
//! interpreter's `SIGTRAP` path) share one journal, but it is **not**
//! part of the guest-observable state: [`Kernel::state_fingerprint`]
//! ignores it, so a rolled-back customization leaves the kernel
//! bit-identical while the journal still tells the story of the failure.
//!
//! [`Kernel::state_fingerprint`]: crate::Kernel::state_fingerprint

use crate::process::Pid;
use std::collections::{BTreeMap, VecDeque};

/// Bit 63 of a guest `emit_event` code marks a verifier false-positive
/// report; the remaining bits carry the falsely-blocked address (paper
/// §3.2.3). The kernel surfaces such codes as
/// [`EventKind::VerifierReport`] flight events.
pub const VERIFIER_EVENT_BIT: u64 = 1 << 63;

/// Default journal capacity, in events.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A phase of the customize cycle, in execution order.
///
/// The orchestrator brackets each phase with
/// [`EventKind::PhaseStart`]/[`EventKind::PhaseEnd`]; a `PhaseStart`
/// without a matching `PhaseEnd` marks the phase a failed cycle died in.
/// A thaw never appears here because a *successful* cycle replaces the
/// frozen originals instead of thawing them — thaws are rollback work,
/// recorded as [`RollbackStep::Thaw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Incremental pre-copy of clean pages while the guest still runs.
    PreDump,
    /// Freezing the target processes.
    Freeze,
    /// Dumping the frozen processes and serialising to the tmpfs store.
    Dump,
    /// Editing the images: trap bytes, wipes, unmaps, re-enables.
    ImageEdit,
    /// Building and injecting the fault-handler/verifier library.
    Inject,
    /// Building every replacement process (no kernel writes).
    RestorePrepare,
    /// Swapping the replacements in, all-or-nothing.
    RestoreCommit,
    /// Sweeping dirty bits and storing the new incremental baseline.
    BaselineStore,
    /// Serving traffic on a customized canary while watching its
    /// verifier reports (rollout only; the canary cycle stays open so a
    /// report can still demote it).
    Soak,
    /// Promoting the soaked canary image onto one fleet replica via a
    /// shared-image restore (rollout only; no dump, no rewrite).
    Promote,
}

impl Phase {
    /// Stable lower-case name, used as the metrics/JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PreDump => "pre_dump",
            Phase::Freeze => "freeze",
            Phase::Dump => "dump",
            Phase::ImageEdit => "image_edit",
            Phase::Inject => "inject",
            Phase::RestorePrepare => "restore_prepare",
            Phase::RestoreCommit => "restore_commit",
            Phase::BaselineStore => "baseline_store",
            Phase::Soak => "soak",
            Phase::Promote => "promote",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One undo step of a failed customization's rollback (the PR 2
/// transaction journal, made visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RollbackStep {
    /// A committed restore swap was reversed (originals re-inserted).
    UndoRestore,
    /// A process this attempt froze was thawed back to its pre-freeze
    /// scheduler state.
    Thaw,
    /// A target pid's connections were taken out of TCP repair mode.
    Unrepair,
    /// The dirty-page bits the pre-dump swept were re-marked.
    RestoreDirtyBits,
    /// The incremental baseline the attempt displaced was put back.
    RestoreBaseline,
}

impl std::fmt::Display for RollbackStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RollbackStep::UndoRestore => "undo_restore",
            RollbackStep::Thaw => "thaw",
            RollbackStep::Unrepair => "unrepair",
            RollbackStep::RestoreDirtyBits => "restore_dirty_bits",
            RollbackStep::RestoreBaseline => "restore_baseline",
        };
        f.write_str(name)
    }
}

/// What a [`FlightEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A customize cycle started over `pids` processes.
    CustomizeBegin {
        /// Number of target processes.
        pids: usize,
    },
    /// The cycle committed: staged session state folded in.
    CustomizeCommit,
    /// The cycle failed and its rollback completed; the preceding
    /// [`RollbackStep`] events list what was unwound.
    CustomizeRollback,
    /// A phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// A phase completed successfully.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Host wall-clock duration of the phase.
        duration_ns: u64,
    },
    /// The incremental pre-dump copied one process's pages.
    ProcessPreDumped {
        /// Bytes copied while the guest was still running.
        page_bytes: u64,
    },
    /// One frozen process was dumped into its image set.
    ProcessDumped {
        /// Page payload bytes in the dump.
        page_bytes: u64,
    },
    /// One restored process was swapped in for its original.
    ProcessRestored,
    /// A handler/verifier library was injected into one image.
    LibraryInjected {
        /// Base address the library was placed at.
        base: u64,
    },
    /// One undo step of a failed cycle's rollback ran.
    RollbackStep {
        /// Which step.
        step: RollbackStep,
    },
    /// The guest's verifier reported a falsely-blocked address
    /// (an `emit_event` tagged with [`VERIFIER_EVENT_BIT`]).
    VerifierReport {
        /// The absolute address that was blocked but needed.
        addr: u64,
    },
    /// A `SIGTRAP` (patched `int3` byte) fired in the guest.
    TrapHit {
        /// Address of the trap byte.
        pc: u64,
        /// Whether a handler caught it (`false` means the process died
        /// with the formerly-opaque `128 + SIGTRAP` exit code).
        handled: bool,
    },
    /// An untagged guest `emit_event` phase marker.
    GuestMarker {
        /// Application-defined code.
        code: u64,
    },
    /// The staged engine handed one process to a stage (recorded with
    /// that process's pid). Together with [`EventKind::StageRetired`],
    /// a fleet run's journal fully orders how per-process stages
    /// interleaved — in particular that freeze windows never overlap.
    StageScheduled {
        /// The stage, named by the phase it executes.
        stage: Phase,
    },
    /// The staged engine finished a stage for one process.
    StageRetired {
        /// The stage, named by the phase it executes.
        stage: Phase,
        /// Host wall-clock duration of the stage for this process's
        /// group.
        duration_ns: u64,
    },
    /// A canary rollout soaked clean and its image was promoted onto
    /// the rest of the fleet via shared-image restores.
    CanaryPromoted {
        /// Replica processes the image was promoted onto (the canary
        /// itself not included).
        replicas: usize,
        /// Serve slices the canary soaked before promotion.
        soak_slices: u64,
    },
    /// A canary rollout was demoted: a verifier report (or injected
    /// fault) during the soak rolled the canary back through the
    /// customize transaction machinery.
    CanaryDemoted {
        /// Verifier reports observed during the soak.
        reports: usize,
    },
    /// The MLFQ run loop dispatched a process. Only journalled when
    /// dispatch tracing is enabled via
    /// [`Kernel::set_sched_trace`](crate::Kernel::set_sched_trace) —
    /// always-on tracing would flood the bounded ring and evict the
    /// stage/phase events the customize layers rely on.
    ContextSwitch {
        /// Run-queue level the process was dispatched from.
        level: u8,
    },
}

/// One journal entry: an [`EventKind`] plus its envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonically increasing sequence number (never reused, survives
    /// ring eviction — gaps at the front of the journal are exactly the
    /// dropped events).
    pub seq: u64,
    /// Guest-clock timestamp at recording.
    pub time_ns: u64,
    /// The process the event concerns, if any.
    pub pid: Option<Pid>,
    /// The payload.
    pub kind: EventKind,
}

/// A power-of-two-bucketed duration histogram.
///
/// Bucket `i` counts observations whose value has bit length `i`
/// (i.e. `v == 0` lands in bucket 0, `1 ≤ v ≤ 1` in bucket 1,
/// `2 ≤ v ≤ 3` in bucket 2, …). Invariants, asserted by tests:
/// bucket counts sum to [`count`](Histogram::count), and
/// `min ≤ mean ≤ max` whenever `count > 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bit_len = (64 - value.leading_zeros()) as usize;
        self.buckets[bit_len] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(bit_len, &n)| {
                let upper = if bit_len == 0 {
                    0
                } else {
                    ((1u128 << bit_len) - 1) as u64
                };
                (upper, n)
            })
    }
}

/// Named monotonic counters plus duration histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Adds `by` to the named counter. The key is only allocated the
    /// first time a counter is touched, so steady-state increments from
    /// hot paths (trap hits, block-cache stats) are allocation-free.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(value) = self.counters.get_mut(name) {
            *value += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, &v)| (name.as_str(), v))
    }

    /// Records a duration observation into the named histogram.
    pub fn observe(&mut self, name: &str, value_ns: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value_ns);
    }

    /// The named histogram, if anything was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(name, h)| (name.as_str(), h))
    }
}

/// The bounded event journal plus metrics registry.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    metrics: Metrics,
    /// Fault-policy label per pid, set by the orchestrator when a
    /// customization installs a `SIGTRAP` policy — lets the interpreter
    /// attribute trap hits to the policy that planted the byte. The
    /// `trap_hits.<label>` counter key is built once here so the SIGTRAP
    /// hot path never formats a `String` per trap.
    trap_policy: BTreeMap<Pid, PolicyLabel>,
}

/// A trap-policy label plus its pre-built metrics counter key.
#[derive(Debug, Clone)]
struct PolicyLabel {
    label: &'static str,
    counter_key: String,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder with the default ring capacity.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
            metrics: Metrics::default(),
            trap_policy: BTreeMap::new(),
        }
    }

    /// Appends an event, evicting the oldest (and counting the drop) if
    /// the ring is full. Returns the event's sequence number.
    pub fn record(&mut self, time_ns: u64, pid: Option<Pid>, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            seq,
            time_ns,
            pid,
            kind,
        });
        seq
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Events with `seq >= from`, oldest first — scan the journal tail
    /// written after a [`next_seq`](FlightRecorder::next_seq) snapshot.
    pub fn since(&self, from: u64) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter().filter(move |e| e.seq >= from)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sequence number the next event will get; also the total
    /// number of events ever recorded.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the full ring. The accounting invariant
    /// `next_seq() == len() + dropped()` always holds (minus anything
    /// removed by [`drain`](FlightRecorder::drain)).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns every held event, oldest first. Sequence and
    /// drop counters keep their values (they are monotonic by design).
    pub fn drain(&mut self) -> Vec<FlightEvent> {
        self.ring.drain(..).collect()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Labels future `SIGTRAP` hits on `pid` with the fault policy that
    /// installed the trap bytes (`"redirect"`, `"verify"`, …). The
    /// per-policy counter key is formatted once, here.
    pub fn set_trap_policy(&mut self, pid: Pid, label: &'static str) {
        self.trap_policy.insert(
            pid,
            PolicyLabel {
                label,
                counter_key: format!("trap_hits.{label}"),
            },
        );
    }

    /// The trap-policy label for `pid`; `"none"` if no policy was
    /// registered.
    pub fn trap_policy(&self, pid: Pid) -> &'static str {
        self.trap_policy.get(&pid).map_or("none", |p| p.label)
    }

    /// Records one `SIGTRAP` hit on `pid`: bumps the policy-attributed
    /// `trap_hits.<label>` counter (using the key pre-built by
    /// [`set_trap_policy`](FlightRecorder::set_trap_policy) — no
    /// allocation on this path) and journals a [`EventKind::TrapHit`].
    pub fn record_trap_hit(&mut self, time_ns: u64, pid: Pid, pc: u64, handled: bool) {
        match self.trap_policy.get(&pid) {
            Some(policy) => self.metrics.incr(&policy.counter_key, 1),
            None => self.metrics.incr("trap_hits.none", 1),
        }
        self.record(time_ns, Some(pid), EventKind::TrapHit { pc, handled });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic_and_dense() {
        let mut rec = FlightRecorder::with_capacity(8);
        for _ in 0..5 {
            rec.record(0, None, EventKind::CustomizeCommit);
        }
        let seqs: Vec<u64> = rec.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.next_seq(), 5);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::with_capacity(3);
        for code in 0..10u64 {
            rec.record(code, None, EventKind::GuestMarker { code });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7, "loss is counted, never silent");
        // The survivors are the newest three, seq intact.
        let seqs: Vec<u64> = rec.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        // Accounting invariant.
        assert_eq!(rec.next_seq(), rec.len() as u64 + rec.dropped());
    }

    #[test]
    fn since_scans_the_tail() {
        let mut rec = FlightRecorder::new();
        rec.record(0, None, EventKind::CustomizeBegin { pids: 1 });
        let mark = rec.next_seq();
        rec.record(1, Some(Pid(7)), EventKind::CustomizeCommit);
        let tail: Vec<&FlightEvent> = rec.since(mark).collect();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, EventKind::CustomizeCommit);
        assert_eq!(tail[0].pid, Some(Pid(7)));
    }

    #[test]
    fn drain_empties_but_keeps_counters() {
        let mut rec = FlightRecorder::with_capacity(2);
        for code in 0..4u64 {
            rec.record(0, None, EventKind::GuestMarker { code });
        }
        let drained = rec.drain();
        assert_eq!(drained.len(), 2);
        assert!(rec.is_empty());
        assert_eq!(rec.next_seq(), 4);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 5_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let bucket_total: u64 = h.buckets().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, h.count(), "no observation lost");
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.min() <= h.mean() && h.mean() <= h.max());
    }

    #[test]
    fn histogram_bucket_bounds_cover_extremes() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        let bounds: Vec<u64> = h.buckets().map(|(ub, _)| ub).collect();
        assert_eq!(bounds, vec![0, u64::MAX]);
    }

    #[test]
    fn metrics_counters_accumulate() {
        let mut m = Metrics::default();
        m.incr("blocks_patched", 3);
        m.incr("blocks_patched", 2);
        assert_eq!(m.counter("blocks_patched"), 5);
        assert_eq!(m.counter("never_touched"), 0);
        m.observe("phase.freeze", 1000);
        m.observe("phase.freeze", 3000);
        let h = m.histogram("phase.freeze").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4000);
        assert_eq!(h.mean(), 2000);
    }

    #[test]
    fn trap_policy_labels_default_to_none() {
        let mut rec = FlightRecorder::new();
        assert_eq!(rec.trap_policy(Pid(1)), "none");
        rec.set_trap_policy(Pid(1), "redirect");
        assert_eq!(rec.trap_policy(Pid(1)), "redirect");
    }

    #[test]
    fn record_trap_hit_attributes_the_policy_counter_and_journals() {
        let mut rec = FlightRecorder::new();
        rec.record_trap_hit(10, Pid(1), 0x40, false);
        assert_eq!(rec.metrics().counter("trap_hits.none"), 1);
        rec.set_trap_policy(Pid(1), "redirect");
        rec.record_trap_hit(11, Pid(1), 0x40, true);
        rec.record_trap_hit(12, Pid(1), 0x40, true);
        assert_eq!(rec.metrics().counter("trap_hits.redirect"), 2);
        assert!(matches!(
            rec.iter().last().unwrap().kind,
            EventKind::TrapHit {
                pc: 0x40,
                handled: true
            }
        ));
    }
}
