//! Execution hooks for tracers.

use crate::process::Pid;
use crate::signal::Signal;

/// Observer of guest execution, installed with
/// [`Kernel::set_hook`](crate::Kernel::set_hook).
///
/// The drcov-style coverage collector in `dynacut-trace` implements this —
/// it is the reproduction's stand-in for running the target binary under
/// DynamoRIO (paper §3.3, "Trace Collection").
pub trait Hook {
    /// Called after each retired instruction with the pc it executed at.
    fn on_insn(&mut self, pid: Pid, pc: u64);

    /// Called on every syscall entry (used by the syscall-quiescence
    /// init-phase detector).
    fn on_syscall(&mut self, pid: Pid, nr: u64) {
        let _ = (pid, nr);
    }

    /// Called when a signal is delivered to a guest handler or kills the
    /// process.
    fn on_signal(&mut self, pid: Pid, signal: Signal, handled: bool) {
        let _ = (pid, signal, handled);
    }

    /// Called when the guest issues the `emit_event` syscall (the nudge /
    /// phase-marker channel, mirroring DynamoRIO nudges).
    fn on_event(&mut self, pid: Pid, code: u64) {
        let _ = (pid, code);
    }

    /// Called when a process forks, with the child's pid.
    fn on_fork(&mut self, parent: Pid, child: Pid) {
        let _ = (parent, child);
    }
}

/// A hook that observes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHook;

impl Hook for NullHook {
    fn on_insn(&mut self, _pid: Pid, _pc: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hook_accepts_all_defaults() {
        let mut hook = NullHook;
        hook.on_insn(Pid(1), 0x40_0000);
        hook.on_syscall(Pid(1), 2);
        hook.on_signal(Pid(1), Signal::Sigtrap, true);
        hook.on_event(Pid(1), 7);
        hook.on_fork(Pid(1), Pid(2));
    }
}
