//! Simulated TCP: listeners, connections, and checkpoint-safe "repair
//! mode".
//!
//! CRIU's `TCP_REPAIR` lets it freeze established connections during a
//! checkpoint and re-establish them on restore (paper §3.3). The DCVM
//! reproduces the observable behaviour: while a server process is dumped
//! and rewritten, its connections persist inside the kernel's network
//! state; client bytes sent during the freeze window queue up and are
//! served after restore — which is exactly what produces Figure 8's
//! throughput dip-and-recover shape.

use std::collections::{BTreeMap, VecDeque};

/// Identifies one TCP connection inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Established and usable.
    Established,
    /// Frozen by a checkpoint (repair mode): data queues, nothing drains.
    Repair,
    /// Closed by either end.
    Closed,
}

/// One bidirectional byte stream.
#[derive(Debug, Clone)]
pub struct TcpConn {
    /// Connection id.
    pub id: ConnId,
    /// Server port the client connected to.
    pub port: u16,
    /// Bytes travelling client → server.
    pub to_server: VecDeque<u8>,
    /// Bytes travelling server → client.
    pub to_client: VecDeque<u8>,
    /// Lifecycle state.
    pub state: TcpState,
}

/// Kernel network state: listeners, pending accepts, live connections.
#[derive(Debug, Default)]
pub(crate) struct NetStack {
    next_conn: u64,
    /// port → backlog of connections awaiting `accept`.
    backlog: BTreeMap<u16, VecDeque<ConnId>>,
    /// Listening ports.
    listeners: BTreeMap<u16, ()>,
    conns: BTreeMap<ConnId, TcpConn>,
}

impl NetStack {
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port, ());
        self.backlog.entry(port).or_default();
    }

    pub fn is_listening(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Removes the listener on `port` (rollback of a restore). Any
    /// connections already queued in the backlog are dropped with it.
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
        self.backlog.remove(&port);
    }

    /// Writes a canonical dump of the whole network state into `out` —
    /// part of [`Kernel::state_fingerprint`](crate::Kernel::state_fingerprint).
    pub fn fingerprint(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "net next_conn={}", self.next_conn);
        for port in self.listeners.keys() {
            let _ = writeln!(out, "listener {port}");
        }
        for (port, queue) in &self.backlog {
            let _ = writeln!(out, "backlog {port}:{queue:?}");
        }
        for (id, conn) in &self.conns {
            let _ = writeln!(
                out,
                "conn {} port={} state={:?} to_server={:?} to_client={:?}",
                id.0, conn.port, conn.state, conn.to_server, conn.to_client
            );
        }
    }

    /// Client-side connect: creates a connection and queues it for accept.
    pub fn connect(&mut self, port: u16) -> Option<ConnId> {
        if !self.is_listening(port) {
            return None;
        }
        self.next_conn += 1;
        let id = ConnId(self.next_conn);
        self.conns.insert(
            id,
            TcpConn {
                id,
                port,
                to_server: VecDeque::new(),
                to_client: VecDeque::new(),
                state: TcpState::Established,
            },
        );
        self.backlog.entry(port).or_default().push_back(id);
        Some(id)
    }

    /// Server-side accept: pops a pending connection, if any.
    pub fn accept(&mut self, port: u16) -> Option<ConnId> {
        self.backlog.get_mut(&port)?.pop_front()
    }

    /// Whether any connection awaits `accept` on the port.
    pub fn has_backlog(&self, port: u16) -> bool {
        self.backlog.get(&port).is_some_and(|queue| !queue.is_empty())
    }

    pub fn conn(&self, id: ConnId) -> Option<&TcpConn> {
        self.conns.get(&id)
    }

    pub fn conn_mut(&mut self, id: ConnId) -> Option<&mut TcpConn> {
        self.conns.get_mut(&id)
    }

    /// Puts every connection on `port` into repair mode (checkpoint).
    pub fn enter_repair(&mut self, ids: &[ConnId]) {
        for id in ids {
            if let Some(conn) = self.conns.get_mut(id) {
                if conn.state == TcpState::Established {
                    conn.state = TcpState::Repair;
                }
            }
        }
    }

    /// Re-establishes repaired connections (restore).
    pub fn leave_repair(&mut self, ids: &[ConnId]) {
        for id in ids {
            if let Some(conn) = self.conns.get_mut(id) {
                if conn.state == TcpState::Repair {
                    conn.state = TcpState::Established;
                }
            }
        }
    }

    pub fn close(&mut self, id: ConnId) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.state = TcpState::Closed;
        }
    }

    /// Garbage-collects closed connections with no buffered data.
    pub fn reap(&mut self) {
        self.conns.retain(|_, conn| {
            conn.state != TcpState::Closed
                || !conn.to_client.is_empty()
                || !conn.to_server.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_listener() {
        let mut net = NetStack::default();
        assert!(net.connect(80).is_none());
        net.listen(80);
        assert!(net.connect(80).is_some());
    }

    #[test]
    fn accept_pops_in_fifo_order() {
        let mut net = NetStack::default();
        net.listen(80);
        let a = net.connect(80).unwrap();
        let b = net.connect(80).unwrap();
        assert_eq!(net.accept(80), Some(a));
        assert_eq!(net.accept(80), Some(b));
        assert_eq!(net.accept(80), None);
    }

    #[test]
    fn repair_mode_round_trips() {
        let mut net = NetStack::default();
        net.listen(80);
        let id = net.connect(80).unwrap();
        net.enter_repair(&[id]);
        assert_eq!(net.conn(id).unwrap().state, TcpState::Repair);
        // Bytes can still be queued by the client during the freeze.
        net.conn_mut(id).unwrap().to_server.extend(b"GET /");
        net.leave_repair(&[id]);
        assert_eq!(net.conn(id).unwrap().state, TcpState::Established);
        assert_eq!(net.conn(id).unwrap().to_server.len(), 5);
    }

    #[test]
    fn reap_keeps_closed_conns_with_pending_data() {
        let mut net = NetStack::default();
        net.listen(80);
        let id = net.connect(80).unwrap();
        net.conn_mut(id).unwrap().to_client.extend(b"bye");
        net.close(id);
        net.reap();
        assert!(net.conn(id).is_some(), "pending data keeps it alive");
        net.conn_mut(id).unwrap().to_client.clear();
        net.reap();
        assert!(net.conn(id).is_none());
    }
}
