//! # dynacut-vm — the DCVM kernel
//!
//! A deterministic user-space "operating system" that the DynaCut
//! reproduction customises, exactly the way the paper's prototype
//! customises Linux processes. It provides every kernel facility the
//! paper's mechanisms depend on:
//!
//! * **Processes** with paged address spaces, per-VMA permissions and
//!   `fork` ([`Process`], [`AddressSpace`], [`Vma`]) — the master/worker
//!   Nginx analogue is a real two-process program here,
//! * an **interpreter** that raises `SIGSEGV` on non-executable fetches
//!   and `SIGTRAP` on the `0xCC` trap byte ([`Signal`]), delivering
//!   signals through registered handlers with an editable **signal frame**
//!   (the injected fault handler updates the saved instruction pointer,
//!   paper §3.2.2, Figure 5),
//! * **syscalls** (exit/read/write/socket/accept/fork/sigaction/…,
//!   [`Sysno`]),
//! * a simulated **TCP stack** whose connections survive a
//!   checkpoint/restore cycle ([`Kernel::client_connect`]) — the
//!   `TCP_REPAIR` behaviour CRIU relies on (paper §3.3),
//! * a deterministic **nanosecond clock** advanced by instruction
//!   retirement, giving reproducible throughput timelines (Figure 8),
//! * **hooks** ([`Hook`]) for the drcov-style coverage tracer.
//!
//! The kernel exposes dump/restore accessors ([`Kernel::freeze`], VMA and
//! page iteration, register access) consumed by the `dynacut-criu` crate.

mod bcache;
mod cpu;
mod error;
pub mod events;
pub mod fault;
mod fs;
mod hook;
mod interp;
mod kernel;
mod loader;
mod mem;
mod net;
mod process;
mod sched;
mod signal;
mod syscall;
mod vma;

pub use bcache::BlockCache;
pub use cpu::{CpuState, Flags};
pub use error::VmError;
pub use events::{
    EventKind, FlightEvent, FlightRecorder, Histogram, Metrics, Phase, RollbackStep,
    VERIFIER_EVENT_BIT,
};
pub use fs::{FdTable, FileDesc, VfsFile};
pub use hook::{Hook, NullHook};
pub use kernel::{
    ClientConn, ExitStatus, Kernel, RunOutcome, DEFAULT_EVENT_CAPACITY, DEFAULT_PUMP_CHUNK_NS,
};
pub use loader::{LoadSpec, LoadedModule, EXE_BASE, LIB_BASE, STACK_BASE, STACK_SIZE};
pub use mem::{AddressSpace, SharedFrame};
pub use net::{ConnId, TcpConn, TcpState};
pub use process::{Pid, Process, ProcState, SYSCALL_FILTER_BITS};
pub use sched::{SchedClass, SchedPolicy, BOOST_INTERVAL_NS, SCHED_LEVELS};
pub use signal::{
    SigAction, Signal, SIGFRAME_SIZE, SIG_FRAME_FAULT_ADDR, SIG_FRAME_FLAGS, SIG_FRAME_PC,
    SIG_FRAME_REGS, SIG_FRAME_SIGNO,
};
pub use kernel::Event;
pub use syscall::{err_ret, is_err, perms_from_bits, perms_to_bits, Sysno};
pub use vma::Vma;

pub use dynacut_obj::{Perms, PAGE_SIZE};
