//! Preemptive MLFQ scheduler battery (DESIGN §14).
//!
//! PR 9 replaced the cooperative round-robin pump with a four-level
//! MLFQ plus a wait-object registry (timer heap, per-connection read
//! wake lists, per-port accept wake lists). These tests pin the
//! contracts the rest of the suite leans on:
//!
//! * every runnable process makes progress within a boost window — no
//!   starvation regardless of level,
//! * blocked processes burn zero quanta (the registry wakes them, the
//!   run loop never polls them),
//! * wake lists never wake the wrong process — traffic on one
//!   connection leaves a reader blocked on another untouched,
//! * a single-process workload is bit-identical under MLFQ and the
//!   round-robin oracle (`state_fingerprint` parity),
//! * `run_until_event` survives event-ring wrap (the raw-index scan
//!   regression), and the pump chunk is one named tunable.

use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::{
    Kernel, LoadSpec, Pid, RunOutcome, SchedPolicy, Sysno, BOOST_INTERVAL_NS,
    DEFAULT_PUMP_CHUNK_NS,
};
use proptest::prelude::*;

fn build_exe(asm: &mut Assembler, configure: impl FnOnce(&mut ModuleBuilder)) -> Image {
    let mut builder = ModuleBuilder::new("sched_app", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    configure(&mut builder);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

/// Compute-bound guest: increments a register forever. Never blocks,
/// never exits — the pure CPU hog every fairness property needs.
fn busy_loop() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("spin");
    asm.push(Insn::Addi(Reg::R5, 1));
    asm.jmp("spin");
    build_exe(&mut asm, |_| {})
}

/// Guest that blocks forever: `read(0, buf, 1)` on the console never
/// becomes ready, so after a handful of setup instructions the process
/// parks in `Blocked(ReadFd)` for good.
fn console_reader() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 1));
    asm.push(Insn::Syscall);
    build_exe(&mut asm, |b| {
        b.bss("buf", 8);
    })
}

/// Guest that sleeps in a loop: `nanosleep(period)` forever. Exercises
/// the timer heap and the idle fast-forward.
fn sleeper(period_ns: u64) -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("zzz");
    asm.push(Insn::Movi(Reg::R0, Sysno::Nanosleep as u64));
    asm.push(Insn::Movi(Reg::R1, period_ns));
    asm.push(Insn::Syscall);
    asm.jmp("zzz");
    build_exe(&mut asm, |_| {})
}

/// Guest that emits one event code and exits.
fn emitter(code: u64) -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, code));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    build_exe(&mut asm, |_| {})
}

/// Echo server on `port`, emitting `ready_code` once listening.
fn echo_server(port: u16, ready_code: u64) -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, port as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, ready_code));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Mov(Reg::R12, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Mov(Reg::R3, Reg::R12));
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");
    build_exe(&mut asm, |b| {
        b.bss("buf", 64);
    })
}

fn retired(kernel: &Kernel, pid: Pid) -> u64 {
    kernel.process(pid).unwrap().insns_retired
}

// ----- run_until_event: ring wrap regression (satellite fix) ------------

/// `run_until_event` used to anchor its incremental rescans on the raw
/// buffer index (`scanned = events.len()`): once the bounded ring
/// dropped its oldest entries, the index pointed past every new event
/// and the scan silently missed them. Pre-fill the ring to capacity so
/// the guest's event forces a drop, then demand the event is still
/// found — anchoring on the monotonic `seq` instead of the index.
#[test]
fn run_until_event_survives_ring_wrap() {
    let mut kernel = Kernel::new();
    kernel.set_event_capacity(4);
    let pid = kernel.spawn(&LoadSpec::exe_only(emitter(42))).unwrap();
    // Fill the ring: seqs 0..=3 occupy all four slots, so the guest's
    // event (seq 4) evicts seq 0 and lands at buffer index 3 — behind
    // the old raw-index anchor of 4.
    for _ in 0..4 {
        kernel.inject_event(pid, 7);
    }
    assert_eq!(kernel.event_seq(), 4);
    assert_eq!(kernel.events_dropped(), 0);

    let event = kernel
        .run_until_event(42, 1_000_000)
        .expect("event found despite the ring dropping its oldest entry");
    assert_eq!(event.code, 42);
    assert_eq!(event.seq, 4);
    assert_eq!(kernel.events_dropped(), 1, "capacity 4 dropped exactly one");
}

/// With headroom in the ring nothing is dropped and the same scan
/// still terminates on the first match.
#[test]
fn run_until_event_unwrapped_baseline() {
    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(emitter(42))).unwrap();
    let event = kernel.run_until_event(42, 1_000_000).expect("event");
    assert_eq!(event.code, 42);
    assert_eq!(kernel.events_dropped(), 0);
}

// ----- pump chunk: one named tunable ------------------------------------

#[test]
fn pump_chunk_is_tunable_and_clamped() {
    let mut kernel = Kernel::new();
    assert_eq!(kernel.pump_chunk_ns(), DEFAULT_PUMP_CHUNK_NS);
    kernel.set_pump_chunk_ns(123);
    assert_eq!(kernel.pump_chunk_ns(), 123);
    // A zero chunk would spin `run_until_*` forever without moving the
    // clock: clamped to 1.
    kernel.set_pump_chunk_ns(0);
    assert_eq!(kernel.pump_chunk_ns(), 1);

    // The pumps still make progress at a pathological chunk size.
    kernel.set_pump_chunk_ns(100);
    kernel.spawn(&LoadSpec::exe_only(emitter(9))).unwrap();
    assert!(kernel.run_until_event(9, 1_000_000).is_some());
}

// ----- scheduler metrics and dispatch trace -----------------------------

/// Compute-bound guests burn full quanta, so they demote level by
/// level; a long enough run crosses the boost interval and promotes
/// them back. All of it shows up in the `sched.*` counters, and the
/// dispatch trace stays out of the flight journal unless asked for.
#[test]
fn mlfq_counters_and_optional_trace() {
    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
    kernel.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
    kernel.run_for(3 * BOOST_INTERVAL_NS);

    let metrics = kernel.flight().metrics();
    assert!(metrics.counter("sched.quanta") > 0);
    assert!(
        metrics.counter("sched.demotions") > 0,
        "busy loops burn full quanta and demote"
    );
    assert!(
        metrics.counter("sched.boosts") > 0,
        "a 3x boost-interval run crosses the boost at least once"
    );
    assert_eq!(
        kernel.flight().len(),
        0,
        "dispatch trace is off by default — it would flood the journal"
    );

    kernel.set_sched_trace(true);
    kernel.run_for(10_000);
    assert!(
        !kernel.flight().is_empty(),
        "ContextSwitch events journalled once tracing is on"
    );
}

/// A lone sleeper leaves the run queues empty between wake-ups: the
/// loop fast-forwards the clock off the timer heap instead of spinning,
/// and accounts the skipped time as idle.
#[test]
fn idle_fast_forward_accounts_idle_time() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(sleeper(5_000))).unwrap();
    let outcome = kernel.run_for(100_000);
    // The window ends mid-sleep with nothing runnable: Idle, at the
    // full deadline.
    assert_eq!(outcome, RunOutcome::Idle);
    assert_eq!(kernel.clock_ns(), 100_000);
    assert!(
        kernel.flight().metrics().counter("sched.idle_ns") > 50_000,
        "most of the window is idle between sleeps"
    );
    // The sleeper kept waking: ~20 sleep cycles of a few insns each.
    assert!(retired(&kernel, pid) > 20);
    assert!(kernel.flight().metrics().counter("sched.wakeups") >= 10);
}

// ----- proptest battery -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No starvation: every compute-bound guest retires instructions
    /// within two boost windows, regardless of how many compete —
    /// demotion can never push a runnable process off the CPU for good.
    #[test]
    fn every_runnable_guest_progresses(n in 1usize..6) {
        let mut kernel = Kernel::new();
        let pids: Vec<Pid> = (0..n)
            .map(|_| kernel.spawn(&LoadSpec::exe_only(busy_loop())).unwrap())
            .collect();
        kernel.run_for(2 * BOOST_INTERVAL_NS);
        for pid in pids {
            prop_assert!(
                retired(&kernel, pid) > 0,
                "pid {pid} starved across two boost windows"
            );
        }
    }

    /// Blocked guests burn zero quanta: once the console reader parks,
    /// arbitrary further scheduling of busy guests never dispatches it.
    #[test]
    fn blocked_guests_burn_zero_quanta(
        slices in proptest::collection::vec(1_000u64..30_000, 1..8),
    ) {
        let mut kernel = Kernel::new();
        let reader = kernel.spawn(&LoadSpec::exe_only(console_reader())).unwrap();
        kernel.run_for(10_000);
        let parked_at = retired(&kernel, reader);
        prop_assert!(!kernel.process(reader).unwrap().is_runnable());

        kernel.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
        kernel.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
        for ns in slices {
            kernel.run_for(ns);
        }
        prop_assert_eq!(
            retired(&kernel, reader),
            parked_at,
            "a console read never becomes ready; the reader must not run"
        );
        prop_assert!(!kernel.process(reader).unwrap().is_runnable());
    }

    /// Wake lists target the right process: with two echo servers each
    /// blocked reading its own connection, traffic on one leaves the
    /// other's instruction count untouched.
    #[test]
    fn wake_lists_never_wake_the_wrong_pid(first in any::<bool>()) {
        let mut kernel = Kernel::new();
        // Boot sequentially: `run_until_event` only scans events newer
        // than the call, so booting both at once would let B's
        // readiness marker land during A's wait and be skipped.
        let pid_a = kernel
            .spawn(&LoadSpec::exe_only(echo_server(8080, 1)))
            .unwrap();
        kernel.run_until_event(1, 10_000_000).expect("a ready");
        let pid_b = kernel
            .spawn(&LoadSpec::exe_only(echo_server(8081, 2)))
            .unwrap();
        kernel.run_until_event(2, 10_000_000).expect("b ready");
        let conn_a = kernel.client_connect(8080).unwrap();
        let conn_b = kernel.client_connect(8081).unwrap();
        // Both servers accept, then block reading their connection.
        kernel.run_for(100_000);
        prop_assert!(!kernel.process(pid_a).unwrap().is_runnable());
        prop_assert!(!kernel.process(pid_b).unwrap().is_runnable());

        let (hot_conn, hot, cold) = if first {
            (conn_a, pid_a, pid_b)
        } else {
            (conn_b, pid_b, pid_a)
        };
        let cold_retired = retired(&kernel, cold);
        let reply = kernel.client_request(hot_conn, b"ping", 1_000_000).unwrap();
        prop_assert_eq!(reply, b"ping".to_vec());
        prop_assert!(retired(&kernel, hot) > cold_retired.min(retired(&kernel, hot)));
        prop_assert_eq!(
            retired(&kernel, cold),
            cold_retired,
            "traffic on one connection woke the other server"
        );
    }

    /// Single-process parity: with one guest there is nothing to
    /// interleave, so the MLFQ and the round-robin oracle must be
    /// bit-identical under `state_fingerprint` after every pump — the
    /// policies may slice differently but the guest cannot tell.
    #[test]
    fn single_process_fingerprint_matches_round_robin(
        slices in proptest::collection::vec(500u64..40_000, 1..12),
    ) {
        let mut mlfq = Kernel::new();
        let mut rr = Kernel::new();
        rr.set_scheduler(SchedPolicy::RoundRobin);
        mlfq.spawn(&LoadSpec::exe_only(sleeper(3_000))).unwrap();
        rr.spawn(&LoadSpec::exe_only(sleeper(3_000))).unwrap();
        for ns in &slices {
            mlfq.run_for(*ns);
            rr.run_for(*ns);
            prop_assert_eq!(mlfq.state_fingerprint(), rr.state_fingerprint());
        }

        let mut mlfq = Kernel::new();
        let mut rr = Kernel::new();
        rr.set_scheduler(SchedPolicy::RoundRobin);
        mlfq.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
        rr.spawn(&LoadSpec::exe_only(busy_loop())).unwrap();
        for ns in &slices {
            mlfq.run_for(*ns);
            rr.run_for(*ns);
            prop_assert_eq!(mlfq.state_fingerprint(), rr.state_fingerprint());
        }
    }
}
