//! Regression pins for serve-slice deadline overshoot.
//!
//! `client_request` used to run `5_000.min(remaining).max(1)` — the
//! `.max(1)` executed a 1 ns slice *past* an already-expired deadline —
//! and `run_for` handed every runnable process a full `QUANTUM`-sized
//! slice even with less time than that left, overshooting by up to a
//! quarter microsecond. A rollout's serve slice is a promise ("serve at
//! most `serve_slice_ns` between soak checks"); the clock must never
//! pass the deadline on the instruction path. (A syscall retiring as
//! the final instruction still costs its fixed `SYSCALL_COST_NS`, the
//! same quantisation a hardware timer tick has, so the pins below run
//! syscall-free loops where the bound is exact.)

use dynacut_isa::{encode, Insn};
use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, Pid, Process, RunOutcome};

const TEXT: u64 = 0x1000;

/// Boots one process spinning on a syscall-free nop loop (1 ns per
/// retired instruction, forever runnable).
fn boot_spinner() -> (Kernel, Pid) {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let mut bytes = Vec::new();
    for insn in &insns {
        bytes.extend(encode(insn));
    }
    let pid = Pid(1);
    let mut proc = Process::new(pid, "spinner");
    proc.mem.map(TEXT, PAGE_SIZE, Perms::RX, "text").unwrap();
    proc.mem.write_unchecked(TEXT, &bytes);
    proc.cpu.pc = TEXT;
    let mut kernel = Kernel::new();
    kernel.insert_process(proc).unwrap();
    (kernel, pid)
}

/// `run_for(ns)` with a runnable compute loop stops the clock exactly
/// at the deadline — budgets below, at, and above one scheduling
/// quantum.
#[test]
fn run_for_never_executes_past_its_deadline() {
    for ns in [1, 7, 100, 255, 256, 300, 1_000, 10_000] {
        let (mut kernel, _) = boot_spinner();
        // Desynchronise clock from zero so the bound is not an artifact
        // of a fresh kernel.
        kernel.run_for(333);
        let start = kernel.clock_ns();
        let outcome = kernel.run_for(ns);
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(
            kernel.clock_ns() <= start + ns,
            "run_for({ns}) ran to {} — {} ns past its deadline",
            kernel.clock_ns(),
            kernel.clock_ns() - (start + ns)
        );
        assert_eq!(
            kernel.clock_ns(),
            start + ns,
            "a spinning process consumes the whole budget exactly"
        );
    }
}

/// An expired (zero) `client_request` deadline must not run the machine
/// at all — this is the `.max(1)` overshoot pin.
#[test]
fn client_request_with_expired_deadline_runs_nothing() {
    let (mut kernel, pid) = boot_spinner();
    kernel.restore_listener(4000);
    let conn = kernel.client_connect(4000).unwrap();
    let retired_before = kernel.process(pid).unwrap().insns_retired;
    let clock_before = kernel.clock_ns();
    let out = kernel.client_request(conn, b"ping", 0).unwrap();
    assert!(out.is_empty(), "no time to serve means no response");
    assert_eq!(
        kernel.clock_ns(),
        clock_before,
        "a zero budget must not advance the clock"
    );
    assert_eq!(
        kernel.process(pid).unwrap().insns_retired,
        retired_before,
        "a zero budget must not execute instructions"
    );
}

/// `client_request(max_ns)` against a server that never answers stops
/// serving at its deadline, never beyond.
#[test]
fn client_request_clock_never_exceeds_its_deadline() {
    for max_ns in [1, 10, 100, 5_000, 12_345] {
        let (mut kernel, _) = boot_spinner();
        kernel.restore_listener(4000);
        let conn = kernel.client_connect(4000).unwrap();
        let start = kernel.clock_ns();
        let out = kernel.client_request(conn, b"ping", max_ns).unwrap();
        assert!(out.is_empty(), "the spinner never answers");
        assert!(
            kernel.clock_ns() <= start + max_ns,
            "client_request(max_ns={max_ns}) served until {} — past its \
             deadline of {}",
            kernel.clock_ns(),
            start + max_ns
        );
    }
}
