//! Host-facing kernel API behaviour: timeouts, event scanning, freeze
//! state machine.

use dynacut_isa::{Assembler, Insn, Reg};
use dynacut_obj::{ModuleBuilder, ObjectKind};
use dynacut_vm::{Kernel, LoadSpec, RunOutcome, Sysno, VmError};

fn sleeper() -> dynacut_obj::Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("zzz");
    asm.push(Insn::Movi(Reg::R0, Sysno::Nanosleep as u64));
    asm.push(Insn::Movi(Reg::R1, 1_000_000));
    asm.push(Insn::Syscall);
    asm.jmp("zzz");
    let mut builder = ModuleBuilder::new("sleeper", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

#[test]
fn run_until_event_times_out_with_none() {
    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(sleeper())).unwrap();
    let before = kernel.clock_ns();
    assert!(kernel.run_until_event(42, 500_000).is_none());
    assert!(kernel.clock_ns() >= before + 500_000);
}

#[test]
fn run_until_exit_times_out_with_none_for_immortals() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(sleeper())).unwrap();
    assert!(kernel.run_until_exit(pid, 300_000).is_none());
    assert!(kernel.exit_status(pid).is_none());
}

#[test]
fn sleeping_process_advances_clock_without_work() {
    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(sleeper())).unwrap();
    let outcome = kernel.run_for(5_000_000);
    // The sleeper never exits; depending on where the deadline falls the
    // run ends at the deadline or idles on the final sleep.
    assert_ne!(outcome, RunOutcome::AllExited);
    assert!(kernel.clock_ns() >= 5_000_000);
    // Almost no instructions retired relative to the elapsed time.
    let pid = kernel.pids()[0];
    assert!(kernel.process(pid).unwrap().insns_retired < 1_000);
}

#[test]
fn freeze_state_machine_is_strict() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(sleeper())).unwrap();
    // Thawing a non-frozen process fails.
    assert!(matches!(
        kernel.thaw(pid),
        Err(VmError::BadProcessState { .. })
    ));
    kernel.freeze(pid).unwrap();
    // Double-freeze is idempotent-ish: freezing a frozen process is fine
    // (it is still not exited).
    kernel.freeze(pid).unwrap();
    kernel.thaw(pid).unwrap();
    assert!(matches!(
        kernel.thaw(pid),
        Err(VmError::BadProcessState { .. })
    ));
    // Unknown pids are reported.
    assert!(matches!(
        kernel.freeze(dynacut_vm::Pid(999)),
        Err(VmError::NoSuchProcess(_))
    ));
}

#[test]
fn drained_events_do_not_reappear() {
    let mut asm = Assembler::new();
    asm.func("_start");
    for code in [7u64, 8, 9] {
        asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
        asm.push(Insn::Movi(Reg::R1, code));
        asm.push(Insn::Syscall);
    }
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("emitter", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();

    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_for(100_000);
    let events = kernel.drain_events();
    assert_eq!(
        events.iter().map(|e| e.code).collect::<Vec<_>>(),
        vec![7, 8, 9]
    );
    assert!(kernel.events().is_empty());
    assert!(kernel.drain_events().is_empty());
}
