//! Regression pins for syscall argument truncation.
//!
//! The handlers used to narrow guest arguments with `as` casts —
//! `args[0] as u32` for descriptors, `Pid(args[0] as u32)` for kill —
//! so fd `0x1_0000_0000` silently aliased fd `0` (the console) and pid
//! `0x1_0000_0001` aliased pid `1`. The same truncation defect class as
//! the PR 3 drcov offset bug, except here the wild argument could
//! *succeed* against an unrelated open descriptor or deliver a signal
//! to an unrelated process. A value that does not fit the descriptor
//! (or pid) space must fail with the typed errno the kernel uses for
//! "no such descriptor" (EBADF) / "no such process" (ESRCH).

use dynacut_isa::{encode, Insn, Reg};
use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{err_ret, Kernel, Pid, Process, Sysno};

const TEXT: u64 = 0x1000;
const STACK: u64 = 0x8000;

/// One past `u32::MAX`: truncation maps it to fd 0 / pid 0's space.
const ALIAS_FD_0: u64 = 0x1_0000_0000;
/// Aliases pid 1 under truncation.
const ALIAS_PID_1: u64 = 0x1_0000_0001;

const EBADF: u64 = 9;
const ESRCH: u64 = 3;
const SIGKILL_NUMBER: u64 = 4;

/// Boots one process running `insns`, which must end by exiting with
/// the interesting syscall's return value: `Mov(R1, R0); exit`.
fn boot(insns: &[Insn]) -> (Kernel, Pid) {
    let mut bytes = Vec::new();
    for insn in insns {
        bytes.extend(encode(insn));
    }
    assert!(bytes.len() as u64 <= PAGE_SIZE, "test program fits one page");
    let pid = Pid(1);
    let mut proc = Process::new(pid, "sys_args");
    proc.mem.map(TEXT, PAGE_SIZE, Perms::RX, "text").unwrap();
    proc.mem.write_unchecked(TEXT, &bytes);
    proc.mem.map(STACK, PAGE_SIZE, Perms::RW, "[stack]").unwrap();
    proc.cpu.set_sp(STACK + PAGE_SIZE);
    proc.cpu.pc = TEXT;
    let mut kernel = Kernel::new();
    kernel.insert_process(proc).unwrap();
    (kernel, pid)
}

/// Issues `nr(arg0, arg1, arg2)` and exits with its return value.
fn call_then_exit(nr: Sysno, arg0: u64, arg1: u64, arg2: u64) -> Vec<Insn> {
    vec![
        Insn::Movi(Reg::R0, nr as u64),
        Insn::Movi(Reg::R1, arg0),
        Insn::Movi(Reg::R2, arg1),
        Insn::Movi(Reg::R3, arg2),
        Insn::Syscall,
        Insn::Mov(Reg::R1, Reg::R0),
        Insn::Movi(Reg::R0, Sysno::Exit as u64),
        Insn::Syscall,
    ]
}

/// `write(0x1_0000_0000, buf, 1)` used to truncate to fd 0 and happily
/// write the console. It must be EBADF, and the console must stay
/// empty.
#[test]
fn write_does_not_alias_huge_fd_onto_the_console() {
    let (mut kernel, pid) = boot(&call_then_exit(Sysno::Write, ALIAS_FD_0, STACK, 1));
    let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
    assert_eq!(status.fatal_signal, None);
    assert_eq!(status.code, err_ret(EBADF), "EBADF, not a console write");
    assert!(
        kernel.process(pid).unwrap().console_text().is_empty(),
        "nothing leaked through the aliased descriptor"
    );
}

/// `read(0x1_0000_0000, ...)` used to truncate to the console fd and
/// block forever waiting for input. It must fail fast with EBADF.
#[test]
fn read_does_not_alias_huge_fd_onto_the_console() {
    let (mut kernel, pid) = boot(&call_then_exit(Sysno::Read, ALIAS_FD_0, STACK, 1));
    let status = kernel
        .run_until_exit(pid, 1_000_000)
        .expect("EBADF, not a blocked console read");
    assert_eq!(status.code, err_ret(EBADF));
}

/// `close(0x1_0000_0000)` used to truncate to fd 0 and close the
/// console out from under the process.
#[test]
fn close_does_not_alias_huge_fd_onto_the_console() {
    let (mut kernel, pid) = boot(&call_then_exit(Sysno::Close, ALIAS_FD_0, 0, 0));
    let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
    assert_eq!(status.code, err_ret(EBADF));
    let proc = kernel.process(pid).unwrap();
    assert!(
        matches!(proc.fds.get(0), Some(dynacut_vm::FileDesc::Console)),
        "fd 0 is still the console"
    );
}

/// The remaining descriptor-taking syscalls reject out-of-range fds the
/// same way.
#[test]
fn bind_listen_accept_reject_out_of_range_fds() {
    for nr in [Sysno::Bind, Sysno::Listen, Sysno::Accept] {
        let (mut kernel, pid) = boot(&call_then_exit(nr, ALIAS_FD_0, 80, 0));
        let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
        assert_eq!(
            status.code,
            err_ret(EBADF),
            "{nr:?} must EBADF an fd wider than u32"
        );
    }
}

/// `bind(fd, port)` with a port wider than u16 is EINVAL, not a bind to
/// the truncated low 16 bits.
#[test]
fn bind_rejects_out_of_range_ports() {
    let program = vec![
        // socket() -> fd in r0
        Insn::Movi(Reg::R0, Sysno::Socket as u64),
        Insn::Syscall,
        Insn::Mov(Reg::R1, Reg::R0), // fd
        Insn::Movi(Reg::R2, 0x1_0050), // would truncate to port 80
        Insn::Movi(Reg::R0, Sysno::Bind as u64),
        Insn::Syscall,
        Insn::Mov(Reg::R1, Reg::R0),
        Insn::Movi(Reg::R0, Sysno::Exit as u64),
        Insn::Syscall,
    ];
    let (mut kernel, pid) = boot(&program);
    let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
    assert_eq!(status.code, err_ret(22), "EINVAL, not a bind to port 80");
    assert!(!kernel.is_listening(80));
}

/// `kill(0x1_0000_0001, SIGKILL)` used to truncate the target to pid 1
/// — the caller itself here — and kill it. It must be ESRCH and deliver
/// nothing.
#[test]
fn kill_does_not_alias_huge_pid_onto_an_existing_process() {
    let (mut kernel, pid) = boot(&call_then_exit(
        Sysno::Kill,
        ALIAS_PID_1,
        SIGKILL_NUMBER,
        0,
    ));
    let status = kernel
        .run_until_exit(pid, 1_000_000)
        .expect("the caller survives its own wild kill");
    assert_eq!(status.fatal_signal, None, "no signal was delivered");
    assert_eq!(status.code, err_ret(ESRCH), "ESRCH, same as a vacant pid");
}
