//! Regression pins for the decoded-block translation cache (DESIGN §11).
//!
//! The invariant under test: no stale cached block may survive a write,
//! remap, or page drop that overlaps it — a cached block hiding a
//! freshly planted `0xCC` trap byte would let code DynaCut disabled keep
//! executing, the exact security failure the paper's design rules out.
//! And with no invalidation event at all, cached and uncached execution
//! must be bit-identical under `state_fingerprint()`.

use dynacut_isa::{encode, Insn, Reg, Width, TRAP_OPCODE};
use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, Pid, Process, SharedFrame, Signal, Sysno};

const TEXT: u64 = 0x1000;
const STACK: u64 = 0x8000;

const RWX: Perms = Perms {
    read: true,
    write: true,
    exec: true,
};

/// Encodes `insns` back to back and returns the bytes plus the start
/// offset of each instruction (so tests can name patch targets).
fn assemble(insns: &[Insn]) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    let mut offsets = Vec::new();
    for insn in insns {
        offsets.push(bytes.len() as u64);
        bytes.extend(encode(insn));
    }
    (bytes, offsets)
}

/// A kernel running one hand-built process whose text starts at `TEXT`.
/// Text is RWX so guests can modify their own code.
fn boot(insns: &[Insn]) -> (Kernel, Pid, Vec<u64>) {
    let (bytes, offsets) = assemble(insns);
    assert!(bytes.len() as u64 <= PAGE_SIZE, "test program fits one page");
    let pid = Pid(1);
    let mut proc = Process::new(pid, "bc_test");
    proc.mem.map(TEXT, PAGE_SIZE, RWX, "text").unwrap();
    proc.mem.write_unchecked(TEXT, &bytes);
    proc.mem.map(STACK, PAGE_SIZE, Perms::RW, "[stack]").unwrap();
    proc.cpu.set_sp(STACK + PAGE_SIZE);
    proc.cpu.pc = TEXT;
    let mut kernel = Kernel::new();
    kernel.insert_process(proc).unwrap();
    (kernel, pid, offsets.iter().map(|off| TEXT + off).collect())
}

/// A compute loop: `r1 = 0; for r2 in 0..iters { r1 += r2 }; exit(r1 & 0xff)`.
fn compute_loop(iters: u64) -> Vec<Insn> {
    vec![
        Insn::Movi(Reg::R1, 0),
        Insn::Movi(Reg::R2, iters),
        // loop:
        Insn::Add(Reg::R1, Reg::R2),
        Insn::Addi(Reg::R2, -1),
        Insn::Cmpi(Reg::R2, 0),
        // Back to loop: Add(3) + Addi(6) + Cmpi(6) + Jcc(5) bytes.
        Insn::Jcc(dynacut_isa::Cond::Ne, -20),
        Insn::Movi(Reg::R3, 0xff),
        Insn::And(Reg::R1, Reg::R3),
        Insn::Movi(Reg::R0, Sysno::Exit as u64),
        Insn::Syscall,
    ]
}

/// The guest overwrites its own *next* instruction with a trap byte; the
/// trap must fire on that very instruction even though it sits inside
/// the currently executing cached block.
#[test]
fn self_modifying_guest_traps_on_its_own_patch() {
    let insns = [
        Insn::Movi(Reg::R1, 0),                      // patched below: target addr
        Insn::Movi(Reg::R2, u64::from(TRAP_OPCODE)), // the int3 byte
        Insn::St(Width::B1, Reg::R1, 0, Reg::R2),    // plant it
        Insn::Nop,                                   // <- overwritten mid-block
        Insn::Movi(Reg::R0, Sysno::Exit as u64),     // never reached
        Insn::Syscall,
    ];
    let (bytes, offsets) = assemble(&insns);
    let nop_addr = TEXT + offsets[3];
    // Re-assemble with the real target address in R1.
    let mut insns = insns;
    insns[0] = Insn::Movi(Reg::R1, nop_addr);
    let (bytes2, _) = assemble(&insns);
    assert_eq!(bytes.len(), bytes2.len(), "patching the imm keeps layout");

    let (mut kernel, pid, _) = boot(&insns);
    assert!(kernel.block_cache_enabled(), "cache is on by default");
    let status = kernel.run_until_exit(pid, 1_000_000).expect("terminates");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        nop_addr,
        "the very next instruction after the store is the planted trap"
    );
    let invalidations = kernel
        .flight()
        .metrics()
        .counter("block_cache.invalidations");
    assert!(
        invalidations >= 1,
        "the self-modifying store invalidated the running block \
         (invalidations={invalidations})"
    );
}

/// A host-side patch (how DynaCut plants `int3` into live memory) fires
/// the next time control reaches the patched pc, even though the loop's
/// block is hot in the cache.
#[test]
fn host_planted_trap_fires_despite_hot_cache() {
    let insns = [
        // loop: nop; nop; nop; jmp loop
        Insn::Nop,
        Insn::Nop,
        Insn::Nop,
        Insn::Jmp(-8), // back over 3 nops + the 5-byte jmp
    ];
    let (mut kernel, pid, addrs) = boot(&insns);
    kernel.run_for(2_000);
    let hits_before = kernel.flight().metrics().counter("block_cache.hits");
    assert!(hits_before > 0, "loop block is hot (hits={hits_before})");

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .write_unchecked(addrs[1], &[TRAP_OPCODE]);
    let status = kernel.run_until_exit(pid, 1_000_000).expect("trap kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        addrs[1],
        "death at exactly the patched byte, not a stale cached copy"
    );
}

/// Unmapping cached text must not leave the old block executable: the
/// next dispatch faults exactly like an uncached fetch would.
#[test]
fn unmapped_text_faults_instead_of_executing_stale_blocks() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(2_000);
    assert!(kernel.flight().metrics().counter("block_cache.hits") > 0);

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .unmap(TEXT, PAGE_SIZE)
        .unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("segv kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// `mprotect` to non-executable must stop cached execution too.
#[test]
fn protect_revokes_cached_execution() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(2_000);

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .protect(TEXT, PAGE_SIZE, Perms::RW)
        .unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("segv kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// Cached and uncached runs of the same program are bit-identical under
/// `state_fingerprint()` — including a program that modifies itself.
#[test]
fn fingerprints_match_cached_vs_uncached() {
    let programs: Vec<Vec<Insn>> = vec![
        compute_loop(500),
        vec![
            // Exercise call/ret/push/pop through the cache.
            Insn::Call(1),                           // over the halt
            Insn::Halt,                              // skipped
            Insn::Push(Reg::R1),
            Insn::Pop(Reg::R2),
            Insn::Movi(Reg::R0, Sysno::Exit as u64),
            Insn::Movi(Reg::R1, 0),
            Insn::Syscall,
        ],
    ];
    for (i, insns) in programs.iter().enumerate() {
        let (mut cached, pid, _) = boot(insns);
        let (mut uncached, _, _) = boot(insns);
        uncached.set_block_cache_enabled(false);
        let a = cached.run_until_exit(pid, 10_000_000);
        let b = uncached.run_until_exit(pid, 10_000_000);
        assert_eq!(a, b, "same exit status");
        assert_eq!(
            cached.state_fingerprint(),
            uncached.state_fingerprint(),
            "cache must be invisible to guest-observable state"
        );
        assert!(cached.flight().metrics().counter("block_cache.misses") > 0);
        if i == 0 {
            // Only the loop re-enters its blocks; straight-line code is
            // all compulsory misses.
            assert!(cached.flight().metrics().counter("block_cache.hits") > 0);
        }
        assert_eq!(uncached.flight().metrics().counter("block_cache.hits"), 0);
    }
}

/// Pads `insns` to a whole page and wraps them in a [`SharedFrame`],
/// the way a zero-copy restore hands out PageStore pages.
fn shared_text_frame(insns: &[Insn]) -> (SharedFrame, Vec<u64>) {
    let (bytes, offsets) = assemble(insns);
    assert!(bytes.len() as u64 <= PAGE_SIZE, "test program fits one page");
    let mut page = vec![0u8; PAGE_SIZE as usize];
    page[..bytes.len()].copy_from_slice(&bytes);
    (
        SharedFrame::new(&page),
        offsets.iter().map(|off| TEXT + off).collect(),
    )
}

/// Boots `replicas` processes whose text pages all alias one shared
/// frame — the fleet shape a zero-copy restore produces (DESIGN §12).
fn boot_shared(insns: &[Insn], replicas: u32) -> (Kernel, Vec<Pid>, Vec<u64>, SharedFrame) {
    let (frame, addrs) = shared_text_frame(insns);
    let mut kernel = Kernel::new();
    let mut pids = Vec::new();
    for i in 0..replicas {
        let pid = Pid(1 + i);
        let mut proc = Process::new(pid, "bc_shared");
        proc.mem.map(TEXT, PAGE_SIZE, RWX, "text").unwrap();
        proc.mem.install_shared_page(TEXT, frame.clone());
        proc.mem.map(STACK, PAGE_SIZE, Perms::RW, "[stack]").unwrap();
        proc.cpu.set_sp(STACK + PAGE_SIZE);
        proc.cpu.pc = TEXT;
        kernel.insert_process(proc).unwrap();
        pids.push(pid);
    }
    (kernel, pids, addrs, frame)
}

/// A write to a shared *code* page must take a CoW fault, bump the
/// page's generation and evict the decoded block — the planted trap
/// fires instead of the stale cached loop.
#[test]
fn cow_on_shared_code_page_bumps_generation_and_evicts_blocks() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pids, addrs, _frame) = boot_shared(&insns, 1);
    let pid = pids[0];
    kernel.run_for(2_000);
    assert!(kernel.flight().metrics().counter("block_cache.hits") > 0);
    let proc = kernel.process(pid).unwrap();
    assert!(proc.mem.page_shared(TEXT), "execution alone never CoWs");
    let gen_before = proc.mem.code_page_gen(TEXT);

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .write_unchecked(addrs[1], &[TRAP_OPCODE]);
    let proc = kernel.process(pid).unwrap();
    assert!(!proc.mem.page_shared(TEXT), "the write privatised the page");
    assert_eq!(proc.mem.cow_fault_count(), 1, "exactly one CoW fault");
    assert!(
        proc.mem.code_page_gen(TEXT) > gen_before,
        "CoW bumps the code page generation so cached blocks cannot \
         revalidate"
    );

    let status = kernel.run_until_exit(pid, 1_000_000).expect("trap kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        addrs[1],
        "death at the patched byte, not a stale cached copy"
    );
}

/// Two replicas restored from one shared image: patching one must not
/// leak into the other through the frame *or* through resurrected
/// cached blocks — the sibling keeps running the original code.
#[test]
fn cow_in_one_replica_leaves_siblings_on_the_shared_image() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pids, addrs, frame) = boot_shared(&insns, 2);
    let (a, b) = (pids[0], pids[1]);
    kernel.run_for(4_000);
    assert!(kernel.flight().metrics().counter("block_cache.hits") > 0);

    // Patch replica B only.
    kernel
        .process_mut(b)
        .unwrap()
        .mem
        .write_unchecked(addrs[1], &[TRAP_OPCODE]);
    let status = kernel.run_until_exit(b, 1_000_000).expect("B traps");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(kernel.process(b).unwrap().cpu.pc, addrs[1]);

    // The frame itself is untouched: CoW copied, it never wrote through.
    let trap_off = (addrs[1] - TEXT) as usize;
    assert_ne!(
        frame.bytes()[trap_off],
        TRAP_OPCODE,
        "the shared frame still holds the original byte"
    );

    // Replica A keeps spinning on the shared image, unpatched.
    let retired_before = kernel.process(a).unwrap().insns_retired;
    kernel.run_for(4_000);
    let proc_a = kernel.process(a).unwrap();
    assert!(
        proc_a.insns_retired > retired_before,
        "A still executes after B's death"
    );
    assert_eq!(proc_a.fatal_signal, None, "B's trap never reached A");
    assert!(proc_a.mem.page_shared(TEXT), "A never took a CoW fault");
    assert_eq!(proc_a.mem.cow_fault_count(), 0);
}

/// A restore that drops a *different* shared image onto hot text must
/// evict the old decoded blocks: the replica runs the new program, not
/// the cached old one.
#[test]
fn shared_image_restore_does_not_resurrect_stale_blocks() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(2_000);
    assert!(kernel.flight().metrics().counter("block_cache.hits") > 0);

    // Restore installs a new image over the same page via a shared
    // frame; the old loop block must not survive the swap.
    let (frame, _) = shared_text_frame(&[
        Insn::Movi(Reg::R1, 42),
        Insn::Movi(Reg::R0, Sysno::Exit as u64),
        Insn::Syscall,
    ]);
    let proc = kernel.process_mut(pid).unwrap();
    proc.mem.install_shared_page(TEXT, frame);
    proc.cpu.pc = TEXT;
    let status = kernel.run_until_exit(pid, 1_000_000).expect("new image");
    assert_eq!(status.fatal_signal, None, "no stale loop, clean exit");
    assert_eq!(status.code, 42, "the restored program ran, byte for byte");
}

/// Cached and uncached runs over shared frames agree bit-for-bit under
/// `state_fingerprint()`, including a run that CoWs its own text.
#[test]
fn fingerprints_match_cached_vs_uncached_over_shared_frames() {
    let insns = [
        Insn::Movi(Reg::R1, 0), // patched below: target addr
        Insn::Movi(Reg::R2, u64::from(TRAP_OPCODE)),
        Insn::St(Width::B1, Reg::R1, 0, Reg::R2), // CoW fault on own text
        Insn::Nop,                                // <- becomes the trap
        Insn::Halt,
    ];
    let (_, offsets) = assemble(&insns);
    let mut insns = insns;
    insns[0] = Insn::Movi(Reg::R1, TEXT + offsets[3]);

    let (mut cached, pids, _, _) = boot_shared(&insns, 1);
    let (mut uncached, _, _, _) = boot_shared(&insns, 1);
    uncached.set_block_cache_enabled(false);
    let a = cached.run_until_exit(pids[0], 1_000_000);
    let b = uncached.run_until_exit(pids[0], 1_000_000);
    assert_eq!(a, b, "same exit status");
    assert_eq!(
        cached.state_fingerprint(),
        uncached.state_fingerprint(),
        "shared frames and CoW are invisible to guest-observable state"
    );
    assert_eq!(cached.process(pids[0]).unwrap().mem.cow_fault_count(), 1);
}

/// The flight metrics expose the cache and the retirement counter used
/// for MIPS, and the counter agrees with per-process accounting.
#[test]
fn metrics_surface_cache_stats_and_insns_retired() {
    let (mut kernel, pid, _) = boot(&compute_loop(200));
    let status = kernel.run_until_exit(pid, 10_000_000).expect("exits");
    assert_eq!(status.fatal_signal, None);
    let metrics = kernel.flight().metrics();
    assert!(metrics.counter("block_cache.hits") > 0);
    assert!(metrics.counter("block_cache.misses") > 0);
    assert!(
        metrics.counter("block_cache.superblocks") > 0,
        "a 200-iteration loop crosses the hot threshold"
    );
    assert_eq!(
        metrics.counter("insns_retired"),
        kernel.process(pid).unwrap().insns_retired,
        "metrics counter mirrors per-process retirement"
    );
}

// ----- superblocks ------------------------------------------------------

/// Uncached, plain-cached, and superblocked runs of a hot loop are
/// bit-identical under `state_fingerprint()` — including the loop's
/// final iteration, where the backward branch the superblock predicted
/// taken falls through instead (the side-exit path).
#[test]
fn fingerprints_match_across_uncached_cached_and_superblocked() {
    let insns = compute_loop(500);
    let (mut superblocked, pid, _) = boot(&insns);
    let (mut plain, _, _) = boot(&insns);
    plain.set_superblocks_enabled(false);
    let (mut uncached, _, _) = boot(&insns);
    uncached.set_block_cache_enabled(false);

    let a = superblocked.run_until_exit(pid, 10_000_000);
    let b = plain.run_until_exit(pid, 10_000_000);
    let c = uncached.run_until_exit(pid, 10_000_000);
    assert_eq!(a, b, "same exit status (superblocked vs plain cache)");
    assert_eq!(b, c, "same exit status (plain cache vs uncached)");
    assert_eq!(
        superblocked.state_fingerprint(),
        plain.state_fingerprint(),
        "superblocks must be invisible to guest-observable state"
    );
    assert_eq!(
        plain.state_fingerprint(),
        uncached.state_fingerprint(),
        "the cache must be invisible to guest-observable state"
    );
    assert!(superblocked.flight().metrics().counter("block_cache.superblocks") > 0);
    assert_eq!(
        plain.flight().metrics().counter("block_cache.superblocks"),
        0,
        "the toggle really disabled promotion"
    );
}

/// A host-planted trap byte fires at the exact patched pc even when the
/// patch lands in the *middle* of a hot superblock's chained run: the
/// per-page generation snapshot covers every chained instruction, so
/// the store-side revalidation evicts the whole superblock.
#[test]
fn host_planted_trap_fires_mid_superblock() {
    let insns = [
        // loop: nop x3; jmp loop — one 4-insn block, chained across the
        // jmp into a ~64-iteration superblock once hot.
        Insn::Nop,
        Insn::Nop,
        Insn::Nop,
        Insn::Jmp(-8),
    ];
    let (mut kernel, pid, addrs) = boot(&insns);
    kernel.run_for(5_000);
    let superblocks = kernel.flight().metrics().counter("block_cache.superblocks");
    assert!(
        superblocks > 0,
        "the loop was promoted before the patch (superblocks={superblocks})"
    );

    // Patch the *second* nop: inside the block body, not at the entry.
    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .write_unchecked(addrs[1], &[TRAP_OPCODE]);
    let status = kernel.run_until_exit(pid, 1_000_000).expect("trap kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        addrs[1],
        "death at exactly the patched byte, mid-superblock"
    );
}

/// A guest store from *inside* a running superblock that hits the
/// block's own text page evicts it on the spot: the after-every-store
/// revalidation holds for chained runs too, so a self-planted trap
/// byte executes instead of the stale cached instruction.
#[test]
fn self_modifying_store_invalidates_the_running_superblock() {
    let insns = [
        Insn::Movi(Reg::R1, 0), // patched below: store target (data page)
        Insn::Movi(Reg::R2, 0), // patched below: iteration count
        Insn::Movi(Reg::R3, 0), // the stored byte (0 while warming)
        // loop: plant r3 at [r1]; count down; back-edge while r2 != 0
        Insn::St(Width::B1, Reg::R1, 0, Reg::R3),
        Insn::Addi(Reg::R2, -1),
        Insn::Cmpi(Reg::R2, 0),
        Insn::Jcc(dynacut_isa::Cond::Ne, 0), // placeholder, fixed below
        Insn::Nop,                           // <- phase 2's store target
        Insn::Halt,
    ];
    let (_, offs) = assemble(&insns);
    let nop_addr = TEXT + offs[7];
    let back_edge = -((offs[7] - offs[3]) as i32); // jcc target: the store
    let mut insns = insns;
    insns[0] = Insn::Movi(Reg::R1, STACK); // harmless data-page target
    insns[1] = Insn::Movi(Reg::R2, 100_000);
    insns[6] = Insn::Jcc(dynacut_isa::Cond::Ne, back_edge);

    // Phase 1: the store lands on the data page — no code-page
    // generation moves, the loop stays valid, goes hot, and is
    // promoted to a superblock.
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(5_000);
    let superblocks = kernel.flight().metrics().counter("block_cache.superblocks");
    assert!(
        superblocks > 0,
        "the loop was promoted while hot (superblocks={superblocks})"
    );
    assert_eq!(kernel.process(pid).unwrap().fatal_signal, None);

    // Phase 2: aim the very same store at the nop in the loop's own
    // text page and make it plant the trap byte. The next store retires
    // *inside* the hot superblock, must evict it, and when the loop
    // runs out the freshly planted 0xCC executes — not the cached nop.
    let proc = kernel.process_mut(pid).unwrap();
    proc.cpu.set_reg(Reg::R1, nop_addr);
    proc.cpu.set_reg(Reg::R3, u64::from(TRAP_OPCODE));
    proc.cpu.set_reg(Reg::R2, 4);
    let status = kernel.run_until_exit(pid, 1_000_000).expect("trap kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(kernel.process(pid).unwrap().cpu.pc, nop_addr);
}
