//! Regression pins for the decoded-block translation cache (DESIGN §11).
//!
//! The invariant under test: no stale cached block may survive a write,
//! remap, or page drop that overlaps it — a cached block hiding a
//! freshly planted `0xCC` trap byte would let code DynaCut disabled keep
//! executing, the exact security failure the paper's design rules out.
//! And with no invalidation event at all, cached and uncached execution
//! must be bit-identical under `state_fingerprint()`.

use dynacut_isa::{encode, Insn, Reg, Width, TRAP_OPCODE};
use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, Pid, Process, Signal, Sysno};

const TEXT: u64 = 0x1000;
const STACK: u64 = 0x8000;

const RWX: Perms = Perms {
    read: true,
    write: true,
    exec: true,
};

/// Encodes `insns` back to back and returns the bytes plus the start
/// offset of each instruction (so tests can name patch targets).
fn assemble(insns: &[Insn]) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    let mut offsets = Vec::new();
    for insn in insns {
        offsets.push(bytes.len() as u64);
        bytes.extend(encode(insn));
    }
    (bytes, offsets)
}

/// A kernel running one hand-built process whose text starts at `TEXT`.
/// Text is RWX so guests can modify their own code.
fn boot(insns: &[Insn]) -> (Kernel, Pid, Vec<u64>) {
    let (bytes, offsets) = assemble(insns);
    assert!(bytes.len() as u64 <= PAGE_SIZE, "test program fits one page");
    let pid = Pid(1);
    let mut proc = Process::new(pid, "bc_test");
    proc.mem.map(TEXT, PAGE_SIZE, RWX, "text").unwrap();
    proc.mem.write_unchecked(TEXT, &bytes);
    proc.mem.map(STACK, PAGE_SIZE, Perms::RW, "[stack]").unwrap();
    proc.cpu.set_sp(STACK + PAGE_SIZE);
    proc.cpu.pc = TEXT;
    let mut kernel = Kernel::new();
    kernel.insert_process(proc).unwrap();
    (kernel, pid, offsets.iter().map(|off| TEXT + off).collect())
}

/// A compute loop: `r1 = 0; for r2 in 0..iters { r1 += r2 }; exit(r1 & 0xff)`.
fn compute_loop(iters: u64) -> Vec<Insn> {
    vec![
        Insn::Movi(Reg::R1, 0),
        Insn::Movi(Reg::R2, iters),
        // loop:
        Insn::Add(Reg::R1, Reg::R2),
        Insn::Addi(Reg::R2, -1),
        Insn::Cmpi(Reg::R2, 0),
        // Back to loop: Add(3) + Addi(6) + Cmpi(6) + Jcc(5) bytes.
        Insn::Jcc(dynacut_isa::Cond::Ne, -20),
        Insn::Movi(Reg::R3, 0xff),
        Insn::And(Reg::R1, Reg::R3),
        Insn::Movi(Reg::R0, Sysno::Exit as u64),
        Insn::Syscall,
    ]
}

/// The guest overwrites its own *next* instruction with a trap byte; the
/// trap must fire on that very instruction even though it sits inside
/// the currently executing cached block.
#[test]
fn self_modifying_guest_traps_on_its_own_patch() {
    let insns = [
        Insn::Movi(Reg::R1, 0),                      // patched below: target addr
        Insn::Movi(Reg::R2, u64::from(TRAP_OPCODE)), // the int3 byte
        Insn::St(Width::B1, Reg::R1, 0, Reg::R2),    // plant it
        Insn::Nop,                                   // <- overwritten mid-block
        Insn::Movi(Reg::R0, Sysno::Exit as u64),     // never reached
        Insn::Syscall,
    ];
    let (bytes, offsets) = assemble(&insns);
    let nop_addr = TEXT + offsets[3];
    // Re-assemble with the real target address in R1.
    let mut insns = insns;
    insns[0] = Insn::Movi(Reg::R1, nop_addr);
    let (bytes2, _) = assemble(&insns);
    assert_eq!(bytes.len(), bytes2.len(), "patching the imm keeps layout");

    let (mut kernel, pid, _) = boot(&insns);
    assert!(kernel.block_cache_enabled(), "cache is on by default");
    let status = kernel.run_until_exit(pid, 1_000_000).expect("terminates");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        nop_addr,
        "the very next instruction after the store is the planted trap"
    );
    let invalidations = kernel
        .flight()
        .metrics()
        .counter("block_cache.invalidations");
    assert!(
        invalidations >= 1,
        "the self-modifying store invalidated the running block \
         (invalidations={invalidations})"
    );
}

/// A host-side patch (how DynaCut plants `int3` into live memory) fires
/// the next time control reaches the patched pc, even though the loop's
/// block is hot in the cache.
#[test]
fn host_planted_trap_fires_despite_hot_cache() {
    let insns = [
        // loop: nop; nop; nop; jmp loop
        Insn::Nop,
        Insn::Nop,
        Insn::Nop,
        Insn::Jmp(-8), // back over 3 nops + the 5-byte jmp
    ];
    let (mut kernel, pid, addrs) = boot(&insns);
    kernel.run_for(2_000);
    let hits_before = kernel.flight().metrics().counter("block_cache.hits");
    assert!(hits_before > 0, "loop block is hot (hits={hits_before})");

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .write_unchecked(addrs[1], &[TRAP_OPCODE]);
    let status = kernel.run_until_exit(pid, 1_000_000).expect("trap kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
    assert_eq!(
        kernel.process(pid).unwrap().cpu.pc,
        addrs[1],
        "death at exactly the patched byte, not a stale cached copy"
    );
}

/// Unmapping cached text must not leave the old block executable: the
/// next dispatch faults exactly like an uncached fetch would.
#[test]
fn unmapped_text_faults_instead_of_executing_stale_blocks() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(2_000);
    assert!(kernel.flight().metrics().counter("block_cache.hits") > 0);

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .unmap(TEXT, PAGE_SIZE)
        .unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("segv kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// `mprotect` to non-executable must stop cached execution too.
#[test]
fn protect_revokes_cached_execution() {
    let insns = [Insn::Nop, Insn::Nop, Insn::Nop, Insn::Jmp(-8)];
    let (mut kernel, pid, _) = boot(&insns);
    kernel.run_for(2_000);

    kernel
        .process_mut(pid)
        .unwrap()
        .mem
        .protect(TEXT, PAGE_SIZE, Perms::RW)
        .unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("segv kills");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// Cached and uncached runs of the same program are bit-identical under
/// `state_fingerprint()` — including a program that modifies itself.
#[test]
fn fingerprints_match_cached_vs_uncached() {
    let programs: Vec<Vec<Insn>> = vec![
        compute_loop(500),
        vec![
            // Exercise call/ret/push/pop through the cache.
            Insn::Call(1),                           // over the halt
            Insn::Halt,                              // skipped
            Insn::Push(Reg::R1),
            Insn::Pop(Reg::R2),
            Insn::Movi(Reg::R0, Sysno::Exit as u64),
            Insn::Movi(Reg::R1, 0),
            Insn::Syscall,
        ],
    ];
    for (i, insns) in programs.iter().enumerate() {
        let (mut cached, pid, _) = boot(insns);
        let (mut uncached, _, _) = boot(insns);
        uncached.set_block_cache_enabled(false);
        let a = cached.run_until_exit(pid, 10_000_000);
        let b = uncached.run_until_exit(pid, 10_000_000);
        assert_eq!(a, b, "same exit status");
        assert_eq!(
            cached.state_fingerprint(),
            uncached.state_fingerprint(),
            "cache must be invisible to guest-observable state"
        );
        assert!(cached.flight().metrics().counter("block_cache.misses") > 0);
        if i == 0 {
            // Only the loop re-enters its blocks; straight-line code is
            // all compulsory misses.
            assert!(cached.flight().metrics().counter("block_cache.hits") > 0);
        }
        assert_eq!(uncached.flight().metrics().counter("block_cache.hits"), 0);
    }
}

/// The flight metrics expose the cache and the retirement counter used
/// for MIPS, and the counter agrees with per-process accounting.
#[test]
fn metrics_surface_cache_stats_and_insns_retired() {
    let (mut kernel, pid, _) = boot(&compute_loop(200));
    let status = kernel.run_until_exit(pid, 10_000_000).expect("exits");
    assert_eq!(status.fatal_signal, None);
    let metrics = kernel.flight().metrics();
    assert!(metrics.counter("block_cache.hits") > 0);
    assert!(metrics.counter("block_cache.misses") > 0);
    assert_eq!(
        metrics.counter("insns_retired"),
        kernel.process(pid).unwrap().insns_retired,
        "metrics counter mirrors per-process retirement"
    );
}
