//! Robustness: arbitrary guest code and hostile syscall arguments must
//! never panic the host — the guest dies with a signal instead. This is
//! the reproduction's equivalent of the paper's TCB assumption: the
//! kernel survives anything the rewritten process does.

use dynacut_isa::{Assembler, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, LoadSpec, Pid, Process, Sysno};
use proptest::prelude::*;

#[allow(dead_code)]
fn exit_program() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("probe", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Executing random bytes either terminates the process with a fault
    /// signal or keeps running until the budget expires — the kernel
    /// itself never panics.
    #[test]
    fn random_bytes_never_panic_the_kernel(bytes in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut kernel = Kernel::new();
        let mut proc = Process::new(Pid(1), "fuzz");
        proc.mem.map(0x1000, 2 * PAGE_SIZE, Perms::RX, "fuzz.text").unwrap();
        proc.mem.write_unchecked(0x1000, &bytes);
        proc.mem
            .map(0x10000, 4 * PAGE_SIZE, Perms::RW, "[stack]")
            .unwrap();
        proc.cpu.set_sp(0x10000 + 4 * PAGE_SIZE - 64);
        proc.cpu.pc = 0x1000;
        kernel.insert_process(proc).unwrap();
        // Whatever happens — illegal opcodes, wild jumps, traps, random
        // syscalls — the host survives.
        kernel.run_for(200_000);
    }

    /// Random syscall numbers and arguments from a well-formed loop never
    /// panic the kernel either.
    #[test]
    fn random_syscalls_never_panic_the_kernel(
        nr in any::<u64>(),
        args in proptest::array::uniform5(any::<u64>()),
    ) {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.push(Insn::Movi(Reg::R0, nr));
        asm.push(Insn::Movi(Reg::R1, args[0]));
        asm.push(Insn::Movi(Reg::R2, args[1]));
        asm.push(Insn::Movi(Reg::R3, args[2]));
        asm.push(Insn::Movi(Reg::R4, args[3]));
        asm.push(Insn::Movi(Reg::R5, args[4]));
        asm.push(Insn::Syscall);
        asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
        asm.push(Insn::Movi(Reg::R1, 0));
        asm.push(Insn::Syscall);
        let mut builder = ModuleBuilder::new("sysfuzz", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        let exe = builder.link(&[]).unwrap();
        let mut kernel = Kernel::new();
        kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
        kernel.run_for(500_000);
    }
}

#[test]
fn bad_fd_operations_return_errors_not_panics() {
    let mut asm = Assembler::new();
    asm.func("_start");
    // write(999, 0, 0), read(999, ...), close(999), accept(0 = console),
    // bind(42, 1), listen(7): all must fail gracefully with EBADF-style
    // returns.
    for (nr, fd) in [
        (Sysno::Write, 999u64),
        (Sysno::Read, 999),
        (Sysno::Close, 999),
        (Sysno::Accept, 0),
        (Sysno::Bind, 42),
        (Sysno::Listen, 7),
    ] {
        asm.push(Insn::Movi(Reg::R0, nr as u64));
        asm.push(Insn::Movi(Reg::R1, fd));
        asm.push(Insn::Movi(Reg::R2, 0));
        asm.push(Insn::Movi(Reg::R3, 0));
        asm.push(Insn::Syscall);
    }
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 7));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("badfd", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
    assert_eq!(status.code, 7, "reached the end despite bad fds");
}

#[test]
fn sigaction_on_sigkill_is_rejected() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigaction as u64));
    asm.push(Insn::Movi(Reg::R1, dynacut_vm::Signal::Sigkill.number()));
    asm.push(Insn::Movi(Reg::R2, 0x1234));
    asm.push(Insn::Movi(Reg::R3, 0x5678));
    asm.push(Insn::Syscall);
    // Return value is the exit code (error expected).
    asm.push(Insn::Mov(Reg::R1, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("sigkill", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert!(dynacut_vm::is_err(status.code), "EINVAL returned");
}

#[test]
fn runaway_infinite_loop_is_bounded_by_run_for() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("forever");
    asm.jmp("forever");
    let mut builder = ModuleBuilder::new("loop", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let outcome = kernel.run_for(100_000);
    assert_eq!(outcome, dynacut_vm::RunOutcome::Deadline);
    assert!(kernel.exit_status(pid).is_none(), "still spinning, contained");
    assert!(kernel.clock_ns() >= 100_000);
}

#[test]
fn stack_overflow_becomes_sigsegv() {
    // Infinite recursion: call self.
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.label("recurse");
    asm.call("recurse");
    let mut builder = ModuleBuilder::new("overflow", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 50_000_000).expect("dies");
    assert_eq!(status.fatal_signal, Some(dynacut_vm::Signal::Sigsegv));
}
