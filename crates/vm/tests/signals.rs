//! Signal-delivery edge cases: nested handlers, hostile sigreturn frames,
//! depth limits, and handler faults — the machinery DynaCut's injected
//! fault handler depends on must be watertight.

use dynacut_isa::{Assembler, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::{
    Kernel, LoadSpec, Signal, Sysno, SIG_FRAME_PC,
};

fn build(asm: &mut Assembler) -> Image {
    let mut builder = ModuleBuilder::new("sig_test", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("counter", 8);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

fn emit_sigaction(asm: &mut Assembler, handler: &str, restorer: &str) {
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigaction as u64));
    asm.push(Insn::Movi(Reg::R1, Signal::Sigtrap.number()));
    asm.lea(Reg::R2, handler);
    asm.lea(Reg::R3, restorer);
    asm.push(Insn::Movi(Reg::R4, 0));
    asm.push(Insn::Syscall);
}

fn emit_restorer(asm: &mut Assembler, name: &str) {
    asm.func(name);
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigreturn as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::SP));
    asm.push(Insn::Syscall);
}

/// A handler that itself executes a trap: nested delivery works, both
/// frames unwind, and the program completes. The activation count lives
/// in **memory** — registers mutated inside a handler are rolled back by
/// `sigreturn`, exactly like a real sigframe restore.
#[test]
fn nested_signal_delivery_unwinds_correctly() {
    let mut asm = Assembler::new();
    asm.func("_start");
    emit_sigaction(&mut asm, "handler", "restorer");
    asm.push(Insn::Trap);
    // Reached after the handler skips the trap: exit(counter).
    asm.lea_ext(Reg::R4, "counter", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R1, Reg::R4, 0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Syscall);

    asm.func("handler");
    // counter += 1 (in memory: survives sigreturn).
    asm.lea_ext(Reg::R4, "counter", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R9, Reg::R4, 0));
    asm.push(Insn::Addi(Reg::R9, 1));
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R9));
    // Only nest once: the second activation skips its own trap.
    asm.push(Insn::Cmpi(Reg::R9, 1));
    asm.jcc(dynacut_isa::Cond::Ne, "skip_nest");
    asm.push(Insn::Trap); // nested SIGTRAP inside the handler
    asm.label("skip_nest");
    // Advance the saved pc past the faulting one-byte trap.
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R2, SIG_FRAME_PC as i32));
    asm.push(Insn::Addi(Reg::R3, 1));
    asm.push(Insn::St(Width::B8, Reg::R2, SIG_FRAME_PC as i32, Reg::R3));
    asm.push(Insn::Ret);
    emit_restorer(&mut asm, "restorer");

    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 5_000_000).expect("completes");
    assert_eq!(status.fatal_signal, None);
    assert_eq!(status.code, 2, "handler ran twice (outer + nested)");
}

/// The inverse of the memory-counter behaviour: plain register writes in
/// a handler are rolled back on sigreturn, because the frame is
/// authoritative.
#[test]
fn register_writes_in_handlers_are_rolled_back() {
    let mut asm = Assembler::new();
    asm.func("_start");
    emit_sigaction(&mut asm, "handler", "restorer");
    asm.push(Insn::Movi(Reg::R7, 5));
    asm.push(Insn::Trap);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R7));
    asm.push(Insn::Syscall);
    asm.func("handler");
    asm.push(Insn::Movi(Reg::R7, 99)); // rolled back by sigreturn
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R2, SIG_FRAME_PC as i32));
    asm.push(Insn::Addi(Reg::R3, 1));
    asm.push(Insn::St(Width::B8, Reg::R2, SIG_FRAME_PC as i32, Reg::R3));
    asm.push(Insn::Ret);
    emit_restorer(&mut asm, "restorer");

    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 5_000_000).expect("completes");
    assert_eq!(status.code, 5, "r7 restored from the frame, not the handler");
}

/// sigreturn with a garbage frame pointer kills the process instead of
/// corrupting the kernel.
#[test]
fn bogus_sigreturn_frame_is_fatal_not_corrupting() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigreturn as u64));
    asm.push(Insn::Movi(Reg::R1, 0xDEAD_BEEF_0000));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("dies");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// A handler that traps unboundedly (never fixes the pc) hits the
/// nesting-depth limit and the process dies rather than looping forever.
#[test]
fn unbounded_handler_recursion_is_capped() {
    let mut asm = Assembler::new();
    asm.func("_start");
    emit_sigaction(&mut asm, "handler", "restorer");
    asm.push(Insn::Trap);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    asm.func("handler");
    asm.push(Insn::Trap); // always re-trap, never sigreturn
    asm.push(Insn::Ret);
    emit_restorer(&mut asm, "restorer");

    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 10_000_000).expect("capped");
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
}

/// The saved register file in the frame is authoritative: a handler that
/// rewrites a saved register changes the resumed program's state — the
/// mechanism a richer fault policy could use to return error codes
/// (paper §3.2: "return a customized error code but keep the program
/// alive").
#[test]
fn handler_can_rewrite_saved_registers() {
    let mut asm = Assembler::new();
    asm.func("_start");
    emit_sigaction(&mut asm, "handler", "restorer");
    asm.push(Insn::Movi(Reg::R7, 1111));
    asm.push(Insn::Trap);
    // Exit with whatever is in r7 after resumption.
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R7));
    asm.push(Insn::Syscall);

    asm.func("handler");
    // saved_r7 = 42 (frame regs at offset SIG_FRAME_REGS + 7*8).
    asm.push(Insn::Movi(Reg::R4, 42));
    asm.push(Insn::St(
        Width::B8,
        Reg::R2,
        (dynacut_vm::SIG_FRAME_REGS + 7 * 8) as i32,
        Reg::R4,
    ));
    // And skip the trap.
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R2, SIG_FRAME_PC as i32));
    asm.push(Insn::Addi(Reg::R3, 1));
    asm.push(Insn::St(Width::B8, Reg::R2, SIG_FRAME_PC as i32, Reg::R3));
    asm.push(Insn::Ret);
    emit_restorer(&mut asm, "restorer");

    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 5_000_000).expect("completes");
    assert_eq!(status.code, 42, "handler rewrote the saved r7");
}

/// SIGSEGV inside a SIGTRAP handler (no SIGSEGV disposition) is fatal —
/// no infinite fault loops.
#[test]
fn fault_inside_handler_is_fatal() {
    let mut asm = Assembler::new();
    asm.func("_start");
    emit_sigaction(&mut asm, "handler", "restorer");
    asm.push(Insn::Trap);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    asm.func("handler");
    // Wild store: unmapped address.
    asm.push(Insn::Movi(Reg::R4, 0xDEAD_0000_0000));
    asm.push(Insn::St(Width::B8, Reg::R4, 0, Reg::R4));
    asm.push(Insn::Ret);
    emit_restorer(&mut asm, "restorer");

    let exe = build(&mut asm);
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 5_000_000).expect("dies");
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}
