//! End-to-end kernel tests: assemble guest programs, run them, observe
//! behaviour through the host API.

use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::{
    Kernel, LoadSpec, RunOutcome, Signal, Sysno, SIG_FRAME_PC,
};

fn build_exe(asm: &mut Assembler, configure: impl FnOnce(&mut ModuleBuilder)) -> Image {
    let mut builder = ModuleBuilder::new("test_app", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    configure(&mut builder);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

/// `exit(7)`.
#[test]
fn exit_code_is_observable() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 7));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |_| {});

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).expect("exits");
    assert_eq!(status.code, 7);
    assert_eq!(status.fatal_signal, None);
}

/// `write(0, "hello\n", 6)` to the console.
#[test]
fn console_write() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Movi(Reg::R1, 0)); // console fd
    asm.lea_ext(Reg::R2, "msg", 0);
    asm.push(Insn::Movi(Reg::R3, 6));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |b| {
        b.rodata("msg", b"hello\n");
    });

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(kernel.process(pid).unwrap().console_text(), "hello\n");
}

/// Echo server: accept one connection, read, write back, loop.
fn echo_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    // r10 = listener fd
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8080));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    // Signal readiness to the host.
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0)); // conn fd
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop"); // client closed
    asm.push(Insn::Mov(Reg::R12, Reg::R0)); // n
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Mov(Reg::R3, Reg::R12));
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");
    build_exe(&mut asm, |b| {
        b.bss("buf", 64);
    })
}

#[test]
fn echo_server_round_trip() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(echo_server())).unwrap();
    kernel
        .run_until_event(1, 10_000_000)
        .expect("server signals readiness");
    let conn = kernel.client_connect(8080).unwrap();
    let reply = kernel.client_request(conn, b"ping", 1_000_000).unwrap();
    assert_eq!(reply, b"ping");
    let reply = kernel.client_request(conn, b"pong!", 1_000_000).unwrap();
    assert_eq!(reply, b"pong!");
    assert!(!kernel.process(pid).unwrap().is_exited());
}

#[test]
fn connect_to_closed_port_is_refused() {
    let mut kernel = Kernel::new();
    kernel.spawn(&LoadSpec::exe_only(echo_server())).unwrap();
    // Server not yet run: nothing listening.
    assert!(kernel.client_connect(9999).is_err());
}

/// Fork: the child and parent write different letters.
#[test]
fn fork_duplicates_the_process() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Fork as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "child");
    // parent: write "P"
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.lea_ext(Reg::R2, "p_msg", 0);
    asm.push(Insn::Movi(Reg::R3, 1));
    asm.push(Insn::Syscall);
    asm.jmp("done");
    asm.label("child");
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.lea_ext(Reg::R2, "c_msg", 0);
    asm.push(Insn::Movi(Reg::R3, 1));
    asm.push(Insn::Syscall);
    asm.label("done");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |b| {
        b.rodata("p_msg", b"P");
        b.rodata("c_msg", b"C");
    });

    let mut kernel = Kernel::new();
    let parent = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let outcome = kernel.run_for(1_000_000);
    assert_eq!(outcome, RunOutcome::AllExited);
    let pids = kernel.pids();
    assert_eq!(pids.len(), 2);
    let texts: Vec<String> = pids
        .iter()
        .map(|&pid| kernel.process(pid).unwrap().console_text())
        .collect();
    assert!(texts.contains(&"P".to_owned()));
    assert!(texts.contains(&"C".to_owned()));
    assert_eq!(
        kernel.process(pids[1]).unwrap().parent,
        Some(parent),
        "child records its parent"
    );
}

/// An unhandled trap kills the process with SIGTRAP — the behaviour of
/// debloated code in RAZOR-style systems (and DynaCut without an injected
/// handler).
#[test]
fn unhandled_trap_kills_process() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Trap);
    let exe = build_exe(&mut asm, |_| {});

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
}

/// A guest-installed SIGTRAP handler that advances the saved pc past the
/// trap — the core control-flow-redirection mechanism of DynaCut's fault
/// handler (paper Figure 5).
#[test]
fn sigtrap_handler_skips_trap_and_continues() {
    let mut asm = Assembler::new();
    asm.func("_start");
    // sigaction(SIGTRAP, handler, restorer, 0)
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigaction as u64));
    asm.push(Insn::Movi(Reg::R1, Signal::Sigtrap.number()));
    asm.lea(Reg::R2, "handler");
    asm.lea(Reg::R3, "restorer");
    asm.push(Insn::Movi(Reg::R4, 0));
    asm.push(Insn::Syscall);
    // Execute a trap; the handler skips it (+1 byte).
    asm.push(Insn::Trap);
    // Reached only via the handler's pc edit.
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 42));
    asm.push(Insn::Syscall);

    asm.func("handler");
    // r2 = frame; saved_pc += 1 (trap is one byte).
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R2, SIG_FRAME_PC as i32));
    asm.push(Insn::Addi(Reg::R3, 1));
    asm.push(Insn::St(Width::B8, Reg::R2, SIG_FRAME_PC as i32, Reg::R3));
    asm.push(Insn::Ret);

    asm.func("restorer");
    // After `ret`, sp points at the frame base.
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigreturn as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R15));
    asm.push(Insn::Syscall);

    let exe = build_exe(&mut asm, |_| {});
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(status.fatal_signal, None);
    assert_eq!(status.code, 42);
}

/// nanosleep advances the simulated clock without busy-work.
#[test]
fn nanosleep_advances_clock() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Nanosleep as u64));
    asm.push(Insn::Movi(Reg::R1, 500_000));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |_| {});

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 10_000_000).unwrap();
    assert_eq!(status.code, 0);
    assert!(kernel.clock_ns() >= 500_000);
    assert!(kernel.clock_ns() < 5_000_000, "did not busy-wait");
}

/// mmap'd memory is usable; munmap'd memory faults.
#[test]
fn mmap_munmap_lifecycle() {
    let mut asm = Assembler::new();
    asm.func("_start");
    // r10 = mmap(0, 8192, RW)
    asm.push(Insn::Movi(Reg::R0, Sysno::Mmap as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Movi(Reg::R2, 8192));
    asm.push(Insn::Movi(Reg::R3, 0b011));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    // Store then load back.
    asm.push(Insn::Movi(Reg::R1, 0x1122334455667788));
    asm.push(Insn::St(Width::B8, Reg::R10, 16, Reg::R1));
    asm.push(Insn::Ld(Width::B8, Reg::R2, Reg::R10, 16));
    asm.push(Insn::Cmp(Reg::R2, Reg::R1));
    asm.jcc(Cond::Ne, "fail");
    // munmap then touch -> SIGSEGV kills us (expected path).
    asm.push(Insn::Movi(Reg::R0, Sysno::Munmap as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8192));
    asm.push(Insn::Syscall);
    asm.push(Insn::Ld(Width::B8, Reg::R2, Reg::R10, 16));
    asm.label("fail");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |_| {});

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(status.fatal_signal, Some(Signal::Sigsegv));
}

/// Reading a VFS config file, as the servers do during initialization.
#[test]
fn vfs_open_read() {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Open as u64));
    asm.lea_ext(Reg::R1, "path", 0);
    asm.push(Insn::Movi(Reg::R2, 9)); // "/etc/conf"
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    // Echo what we read to the console.
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let exe = build_exe(&mut asm, |b| {
        b.rodata("path", b"/etc/conf");
        b.bss("buf", 64);
    });

    let mut kernel = Kernel::new();
    kernel.add_file("/etc/conf", b"port=8080");
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(kernel.process(pid).unwrap().console_text(), "port=8080");
}

/// Host-posted SIGKILL terminates a blocked server.
#[test]
fn post_signal_kills_blocked_process() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(echo_server())).unwrap();
    kernel.run_until_event(1, 10_000_000).unwrap();
    // Server is blocked in accept.
    kernel.post_signal(pid, Signal::Sigkill).unwrap();
    let status = kernel.run_until_exit(pid, 1_000_000).unwrap();
    assert_eq!(status.fatal_signal, Some(Signal::Sigkill));
}

/// Freeze stops scheduling; thaw resumes; a request sent during the freeze
/// is answered afterwards (the TCP-repair property Figure 8 relies on).
#[test]
fn freeze_thaw_preserves_pending_requests() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(echo_server())).unwrap();
    kernel.run_until_event(1, 10_000_000).unwrap();
    let conn = kernel.client_connect(8080).unwrap();
    // Warm up the connection so the server is in its serve loop.
    let reply = kernel.client_request(conn, b"a", 1_000_000).unwrap();
    assert_eq!(reply, b"a");

    kernel.freeze(pid).unwrap();
    kernel.client_send(conn, b"queued").unwrap();
    let outcome = kernel.run_for(100_000);
    assert_eq!(outcome, RunOutcome::Idle, "frozen server cannot answer");
    assert!(kernel.client_recv(conn).unwrap().is_empty());

    kernel.thaw(pid).unwrap();
    kernel.run_for(200_000);
    assert_eq!(kernel.client_recv(conn).unwrap(), b"queued");
}
