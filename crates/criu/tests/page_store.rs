//! Property tests for the content-addressed page store: dedup and
//! refcount bookkeeping over arbitrary intern/release interleavings,
//! bit-identical round trips through the store-backed delta chain
//! (including unmap-remap inside the delta window), and the regression
//! the refactor must hold — restoring through the store matches the
//! pre-refactor full-dump path exactly.

use dynacut_criu::{
    dump_incremental, dump_many, mark_clean_after_dump, restore_many, CheckpointStore, CriuError,
    DumpOptions, ModuleRegistry, PageStore, PagesImage, SharedPages,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, LoadSpec, Pid, Sysno};
use proptest::prelude::*;

/// Page payloads drawn from a tiny alphabet so random inputs actually
/// collide — the dedup paths are pointless to test on unique pages.
fn arb_pages() -> impl Strategy<Value = PagesImage> {
    proptest::collection::vec(0u8..4, 0..12).prop_map(|fills| {
        let mut bytes = Vec::with_capacity(fills.len() * PAGE_SIZE as usize);
        for fill in fills {
            bytes.extend(std::iter::repeat_n(fill, PAGE_SIZE as usize));
        }
        PagesImage { bytes }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning any payload and materializing it back is bit-identical,
    /// and the store never holds more unique pages than the payload has
    /// distinct page contents.
    #[test]
    fn intern_materialize_round_trips_bit_identically(pages in arb_pages()) {
        let mut store = PageStore::new();
        let shared = SharedPages::intern(&mut store, &pages).unwrap();
        prop_assert_eq!(shared.pages_bytes(), pages.bytes.len());
        let back = shared.materialize(&store).expect("all pages present");
        prop_assert_eq!(&back.bytes, &pages.bytes);

        let mut distinct: Vec<&[u8]> = pages.bytes.chunks(PAGE_SIZE as usize).collect();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(store.unique_pages(), distinct.len());
        prop_assert_eq!(store.logical_bytes(), pages.bytes.len());
        prop_assert!(store.dedup_ratio() >= 1.0);

        // Releasing the only reference empties the store.
        shared.release(&mut store).unwrap();
        prop_assert_eq!(store.unique_pages(), 0);
        prop_assert_eq!(store.logical_bytes(), 0);
    }

    /// Arbitrary interleavings of intern and release keep the refcount
    /// accounting exact: the logical footprint always equals the sum
    /// over live handles, every handle still materializes bit-identically
    /// however many twins were interned or released around it, and
    /// releasing the survivors drains the store to empty.
    #[test]
    fn refcounts_balance_over_arbitrary_interleavings(
        ops in proptest::collection::vec(
            (arb_pages(), any::<bool>(), any::<proptest::sample::Index>()),
            1..24,
        ),
    ) {
        let mut store = PageStore::new();
        let mut live: Vec<(SharedPages, PagesImage)> = Vec::new();
        for (pages, do_release, victim) in ops {
            let shared = SharedPages::intern(&mut store, &pages).unwrap();
            live.push((shared, pages));
            if do_release && !live.is_empty() {
                let (shared, _) = live.swap_remove(victim.index(live.len()));
                shared.release(&mut store).unwrap();
            }
            let logical: usize = live.iter().map(|(s, _)| s.pages_bytes()).sum();
            prop_assert_eq!(store.logical_bytes(), logical);
            for (shared, pages) in &live {
                let back = shared.materialize(&store).expect("live handle");
                prop_assert_eq!(&back.bytes, &pages.bytes);
            }
        }
        for (shared, _) in live.drain(..) {
            shared.release(&mut store).unwrap();
        }
        prop_assert_eq!(store.unique_pages(), 0);
        prop_assert_eq!(store.unique_bytes(), 0);
    }

    /// A handle whose pages were released out from under it reports the
    /// missing page instead of fabricating bytes — the store-level
    /// missing-parent analogue.
    #[test]
    fn materialize_after_release_errors_cleanly(pages in arb_pages()) {
        prop_assume!(!pages.bytes.is_empty());
        let mut store = PageStore::new();
        let shared = SharedPages::intern(&mut store, &pages).unwrap();
        shared.release(&mut store).unwrap();
        prop_assert!(matches!(
            shared.materialize(&store),
            Err(CriuError::Inconsistent(_))
        ));
    }
}

// ----- live-guest regressions -------------------------------------------

/// The echo server from the incremental tests: a multi-page BSS scratch
/// area makes guest writes dirty a predictable handful of pages.
fn echo_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8080));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new("echo_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("buf", 4 * PAGE_SIZE);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

struct Setup {
    kernel: Kernel,
    pid: Pid,
    registry: ModuleRegistry,
}

fn boot() -> Setup {
    let exe = echo_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(std::sync::Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("server up");
    Setup {
        kernel,
        pid,
        registry,
    }
}

/// Base of a writable page the tests can scribble on (the BSS area).
fn writable_page(setup: &Setup, index: u64) -> u64 {
    let proc = setup.kernel.process(setup.pid).unwrap();
    let vma = proc
        .mem
        .vmas()
        .iter()
        .find(|v| v.perms.write && v.end - v.start >= 4 * PAGE_SIZE)
        .expect("bss vma")
        .clone();
    vma.start + index * PAGE_SIZE
}

/// The refactor's acceptance regression: a checkpoint pushed through the
/// content-addressed store materializes bit-identically to the dump that
/// produced it, and restoring from the store yields the exact kernel
/// state the pre-refactor direct-restore path produced.
#[test]
fn store_round_trip_matches_pre_refactor_full_dump_path() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();

    let mut store = CheckpointStore::new();
    let id = store.put_full(full.clone()).unwrap();
    let materialized = store.materialize(id).unwrap();
    assert_eq!(materialized, full);
    assert_eq!(materialized.to_bytes(), full.to_bytes());

    // Restore path A (pre-refactor): directly from the dumped image.
    setup.kernel.remove_process(setup.pid).unwrap();
    restore_many(&mut setup.kernel, &full, &setup.registry).unwrap();
    let direct_fingerprint = setup.kernel.state_fingerprint();

    // Restore path B: through the store.
    setup.kernel.remove_process(setup.pid).unwrap();
    store
        .restore(&mut setup.kernel, id, &setup.registry)
        .unwrap();
    assert_eq!(setup.kernel.state_fingerprint(), direct_fingerprint);

    // And the restored process still serves (restore leaves it runnable).
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup
        .kernel
        .client_request(conn, b"still-here", 1_000_000)
        .unwrap();
    assert_eq!(reply, b"still-here");
}

/// A store-backed delta chain spanning an unmap-remap window resolves to
/// exactly the full dump taken at the same instant — the PR 1
/// materialization property, now read back through interned pages.
#[test]
fn store_backed_chain_with_unmap_remap_materializes_exactly() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let gone = writable_page(&setup, 0);
    let recycled = writable_page(&setup, 1);
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.write_unchecked(gone, &[0x11; 16]);
        mem.write_unchecked(recycled, &[0x22; 16]);
    }
    let parent = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    mark_clean_after_dump(&mut setup.kernel, &[setup.pid]).unwrap();

    let mut store = CheckpointStore::new();
    let parent_id = store.put_full(parent.clone()).unwrap();

    // Delta window: one page unmapped for good, one recycled (unmap,
    // remap fresh, rewrite).
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.unmap(gone, PAGE_SIZE).unwrap();
        mem.unmap(recycled, PAGE_SIZE).unwrap();
        mem.map(recycled, PAGE_SIZE, Perms::RW, "recycled").unwrap();
        mem.write_unchecked(recycled, &[0x33; 16]);
    }
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        parent_id,
        &parent,
    )
    .unwrap();
    let id = store.put_delta(delta).unwrap();

    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let materialized = store.materialize(id).unwrap();
    assert_eq!(materialized, full);
    assert_eq!(materialized.to_bytes(), full.to_bytes());
    let image = &materialized.procs[0];
    assert!(!image.pagemap.pages.contains(&gone));
    let index = image.pagemap.pages.binary_search(&recycled).unwrap();
    let bytes = &image.pages.bytes[index * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
    assert_eq!(&bytes[..16], &[0x33; 16]);
}

/// Two identical processes checkpointed into one store share every page:
/// the fleet dedup claim at its smallest scale, plus the refcount
/// lifecycle across a release.
#[test]
fn identical_processes_share_pages_and_release_drops_refs() {
    let exe = echo_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(std::sync::Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let spec = LoadSpec::exe_only(exe);
    let a = kernel.spawn(&spec).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("first up");
    let b = kernel.spawn(&spec).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("second up");

    kernel.freeze(a).unwrap();
    kernel.freeze(b).unwrap();
    let mut store = CheckpointStore::new();
    let id_a = store.put_full(dump_many(&mut kernel, &[a], &DumpOptions::default()).unwrap()).unwrap();
    let unique_after_a = store.unique_pages_bytes();
    let id_b = store.put_full(dump_many(&mut kernel, &[b], &DumpOptions::default()).unwrap()).unwrap();

    // The second replica's pages were already present: the unique
    // footprint barely moves while the logical footprint doubles.
    assert!(store.unique_pages_bytes() <= unique_after_a + 2 * PAGE_SIZE as usize);
    assert!(store.dedup_ratio() > 1.5, "ratio {}", store.dedup_ratio());
    let logical = store.logical_pages_bytes();
    assert_eq!(
        store.shared_pages_bytes(),
        logical - store.unique_pages_bytes()
    );

    // Releasing one checkpoint halves the logical footprint but keeps
    // every page the survivor still references materializable.
    store.release(id_a).unwrap();
    assert!(store.logical_pages_bytes() < logical);
    assert!(store.materialize(id_b).is_ok());
    assert!(matches!(
        store.materialize(id_a),
        Err(CriuError::MissingParent(_))
    ));
    store.release(id_b).unwrap();
    assert_eq!(store.unique_pages_bytes(), 0);
}
