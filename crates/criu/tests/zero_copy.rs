//! The zero-copy restore battery (DESIGN §12): arbitrary
//! restore-via-handle / guest-write-CoW / release interleavings must
//! keep the PageStore's refcounts exact and every materialized page
//! bit-identical to what the copying restore would have produced; live
//! guests restored through `restore_shared` must be fingerprint-equal
//! to the copying path, take CoW faults only on first write, and never
//! write through a shared frame into a sibling replica or the store.

use std::collections::{BTreeMap, BTreeSet};

use dynacut_criu::{
    dump_incremental, dump_many, mark_clean_after_dump, CheckpointStore, CriuError, DumpOptions,
    ModuleRegistry, PageStore, PagesImage, RestoreTransaction, SharedPages,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, Perms, PAGE_SIZE};
use dynacut_vm::{AddressSpace, Kernel, LoadSpec, Pid, Sysno};
use proptest::prelude::*;
use proptest::sample::Index;

// ----- property tests over handle/CoW/release interleavings -------------

/// Page payloads drawn from a tiny alphabet so random inputs actually
/// collide and exercise the dedup paths.
fn arb_pages() -> impl Strategy<Value = PagesImage> {
    proptest::collection::vec(0u8..4, 0..8).prop_map(|fills| {
        let mut bytes = Vec::with_capacity(fills.len() * PAGE_SIZE as usize);
        for fill in fills {
            bytes.extend(std::iter::repeat_n(fill, PAGE_SIZE as usize));
        }
        PagesImage { bytes }
    })
}

/// One step of the interleaving the tentpole must survive.
#[derive(Debug, Clone)]
enum Op {
    /// Checkpoint a payload into the store (takes store refs).
    Intern(PagesImage),
    /// Restore a live checkpoint into a fresh address space by handing
    /// out frames — the zero-copy path; takes **no** store refs.
    Restore(Index),
    /// Guest write into a restored space: first touch per page CoWs.
    GuestWrite { space: Index, page: Index, fill: u8 },
    /// Tear a replica down (drops its frame handles).
    DropSpace(Index),
    /// Release a checkpoint's store refs.
    Release(Index),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_pages().prop_map(Op::Intern),
        any::<Index>().prop_map(Op::Restore),
        (any::<Index>(), any::<Index>(), any::<u8>())
            .prop_map(|(space, page, fill)| Op::GuestWrite { space, page, fill }),
        any::<Index>().prop_map(Op::DropSpace),
        any::<Index>().prop_map(Op::Release),
    ]
}

/// Where restored pages land in the model address spaces.
const BASE: u64 = 0x10_0000;

/// A restored replica plus the byte-exact model of what the *copying*
/// restore path would have produced for it.
struct Replica {
    space: AddressSpace,
    /// page base → expected bytes (updated on guest writes).
    model: BTreeMap<u64, Vec<u8>>,
    /// pages the model says have taken a CoW fault.
    privatised: BTreeSet<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's core safety argument, stated as a property:
    /// however intern / restore-via-handle / guest-write-CoW / drop /
    /// release interleave, (1) the store's refcounts are exactly the
    /// live checkpoint handles — mapping frames into guests never moves
    /// them, (2) every restored page reads back bit-identical to the
    /// copying path, before and after CoW, and (3) CoW faults happen
    /// exactly once per written page.
    #[test]
    fn interleavings_keep_refcounts_exact_and_bytes_identical(
        ops in proptest::collection::vec(arb_op(), 1..32),
    ) {
        let mut store = PageStore::new();
        let mut handles: Vec<(SharedPages, PagesImage)> = Vec::new();
        let mut replicas: Vec<Replica> = Vec::new();

        for op in ops {
            match op {
                Op::Intern(pages) => {
                    let shared = SharedPages::intern(&mut store, &pages).unwrap();
                    handles.push((shared, pages));
                }
                Op::Restore(which) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (handle, pages) = &handles[which.index(handles.len())];
                    let mut space = AddressSpace::new();
                    let mut model = BTreeMap::new();
                    for (i, key) in handle.keys().iter().enumerate() {
                        let addr = BASE + i as u64 * PAGE_SIZE;
                        let frame = store.frame(*key).expect("live handle");
                        space.install_shared_page(addr, frame);
                        let bytes = &pages.bytes[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
                        model.insert(addr, bytes.to_vec());
                    }
                    replicas.push(Replica { space, model, privatised: BTreeSet::new() });
                }
                Op::GuestWrite { space, page, fill } => {
                    if replicas.is_empty() {
                        continue;
                    }
                    let chosen = space.index(replicas.len());
                    let replica = &mut replicas[chosen];
                    if replica.model.is_empty() {
                        continue;
                    }
                    let bases: Vec<u64> = replica.model.keys().copied().collect();
                    let base = bases[page.index(bases.len())];
                    // Scribble a short run mid-page, like a guest would.
                    let offset = 7u64.min(PAGE_SIZE - 16);
                    replica.space.write_unchecked(base + offset, &[fill; 16]);
                    let expect = replica.model.get_mut(&base).expect("modelled page");
                    expect[offset as usize..offset as usize + 16].fill(fill);
                    replica.privatised.insert(base);
                }
                Op::DropSpace(which) => {
                    if replicas.is_empty() {
                        continue;
                    }
                    replicas.swap_remove(which.index(replicas.len()));
                }
                Op::Release(which) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (handle, _) = handles.swap_remove(which.index(handles.len()));
                    handle.release(&mut store).unwrap();
                }
            }

            // (1) Refcount exactness: the store's logical footprint is
            // the sum over live checkpoint handles and nothing else —
            // restores, CoW faults and teardowns never move it.
            let logical: usize = handles.iter().map(|(h, _)| h.pages_bytes()).sum();
            prop_assert_eq!(store.logical_bytes(), logical);

            // (2) Byte identity with the copying path, per replica.
            for replica in &replicas {
                let actual: BTreeMap<u64, Vec<u8>> = replica
                    .space
                    .populated_pages()
                    .map(|(base, bytes)| (base, bytes.to_vec()))
                    .collect();
                prop_assert_eq!(&actual, &replica.model);
                // (3) Exactly one CoW fault per written page; untouched
                // pages stay on their shared frames.
                prop_assert_eq!(
                    replica.space.cow_fault_count(),
                    replica.privatised.len() as u64
                );
                for &base in replica.model.keys() {
                    prop_assert_eq!(
                        replica.space.page_shared(base),
                        !replica.privatised.contains(&base)
                    );
                }
            }
        }

        // Draining the checkpoint handles empties the store even while
        // replicas still hold frames: mapped guests never pin store
        // entries, only the frames themselves.
        for (handle, _) in handles.drain(..) {
            handle.release(&mut store).unwrap();
        }
        prop_assert_eq!(store.unique_pages(), 0);
        prop_assert_eq!(store.logical_bytes(), 0);
        for replica in &replicas {
            let actual: BTreeMap<u64, Vec<u8>> = replica
                .space
                .populated_pages()
                .map(|(base, bytes)| (base, bytes.to_vec()))
                .collect();
            prop_assert_eq!(&actual, &replica.model);
        }
    }
}

// ----- live-guest regressions -------------------------------------------

/// The echo server from the incremental tests: a multi-page BSS scratch
/// area makes guest writes dirty a predictable handful of pages.
fn echo_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8080));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new("echo_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("buf", 4 * PAGE_SIZE);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

struct Setup {
    kernel: Kernel,
    pid: Pid,
    registry: ModuleRegistry,
}

/// Base of the first restored page still backed by a shared frame —
/// the target for host-side patches that must arrive as CoW faults.
fn first_shared_page(kernel: &Kernel, pid: Pid) -> u64 {
    let mem = &kernel.process(pid).unwrap().mem;
    mem.populated_pages()
        .map(|(base, _)| base)
        .find(|&base| mem.page_shared(base))
        .expect("restored process has shared pages")
}

fn boot() -> Setup {
    let exe = echo_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(std::sync::Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("server up");
    Setup {
        kernel,
        pid,
        registry,
    }
}

/// `restore_shared` is guest-invisible: fingerprint-equal to the
/// copying restore, zero bytes physically copied by the restore itself,
/// the store's refcounts untouched — and the replica still serves, its
/// first writes arriving as CoW faults.
#[test]
fn restore_shared_matches_copying_restore_bit_for_bit() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();

    let mut store = CheckpointStore::new();
    let id = store.put_full(full).unwrap();

    // Copying path first, as the oracle.
    setup.kernel.remove_process(setup.pid).unwrap();
    store
        .restore(&mut setup.kernel, id, &setup.registry)
        .unwrap();
    let copying_fingerprint = setup.kernel.state_fingerprint();
    assert_eq!(
        setup
            .kernel
            .process(setup.pid)
            .unwrap()
            .mem
            .shared_page_count(),
        0,
        "the copying restore owns every page privately"
    );

    // Zero-copy path: no page bytes move, no store refs move.
    let copied_before = store.page_store().copied_bytes();
    let logical_before = store.logical_pages_bytes();
    setup.kernel.remove_process(setup.pid).unwrap();
    store
        .restore_shared(&mut setup.kernel, id, &setup.registry)
        .unwrap();
    assert_eq!(
        setup.kernel.state_fingerprint(),
        copying_fingerprint,
        "zero-copy restore is bit-identical under state_fingerprint()"
    );
    assert_eq!(
        store.page_store().copied_bytes(),
        copied_before,
        "the restore itself copied zero page bytes"
    );
    assert_eq!(
        store.logical_pages_bytes(),
        logical_before,
        "handing out frames takes no store refs"
    );
    let proc = setup.kernel.process(setup.pid).unwrap();
    assert!(
        proc.mem.shared_page_count() > 0,
        "restored pages are backed by shared frames"
    );
    assert_eq!(proc.mem.cow_fault_count(), 0, "no write yet, no CoW yet");

    // The replica serves (restore left it runnable)...
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup
        .kernel
        .client_request(conn, b"still-here", 1_000_000)
        .unwrap();
    assert_eq!(reply, b"still-here");

    // ...and a host-side patch to a restored page — how the rewriter
    // edits a replica — arrives as exactly one CoW fault.
    let target = first_shared_page(&setup.kernel, setup.pid);
    let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
    let faults_before = mem.cow_fault_count();
    mem.write_unchecked(target, &[0xAB; 8]);
    assert_eq!(mem.cow_fault_count(), faults_before + 1);
    assert!(!mem.page_shared(target), "the patch privatised the page");
}

/// Two kernels restored from one store share frames; one diverging via
/// CoW never leaks into the other, and the store still materializes the
/// original checkpoint bit-for-bit afterwards.
#[test]
fn cow_divergence_is_invisible_to_sibling_replicas_and_the_store() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let mut store = CheckpointStore::new();
    let id = store.put_full(full.clone()).unwrap();

    // Two fresh kernels, both restored zero-copy from the same store:
    // their frames alias, their guest state is identical.
    let mut kernel_a = Kernel::new();
    store
        .restore_shared(&mut kernel_a, id, &setup.registry)
        .unwrap();
    let mut kernel_b = Kernel::new();
    store
        .restore_shared(&mut kernel_b, id, &setup.registry)
        .unwrap();
    assert_eq!(
        kernel_a.state_fingerprint(),
        kernel_b.state_fingerprint(),
        "both replicas restore to identical guest state"
    );

    // Patch A on a shared page; B and the store must not move.
    let fingerprint_b = kernel_b.state_fingerprint();
    let target = first_shared_page(&kernel_a, setup.pid);
    {
        let mem = &mut kernel_a.process_mut(setup.pid).unwrap().mem;
        mem.write_unchecked(target, &[0x5A; 8]);
    }
    let proc_a = kernel_a.process(setup.pid).unwrap();
    assert_eq!(proc_a.mem.cow_fault_count(), 1, "A diverged via CoW");
    let mut patched = [0u8; 8];
    proc_a.mem.read_unchecked(target, &mut patched);
    assert_eq!(patched, [0x5A; 8]);

    let proc_b = kernel_b.process(setup.pid).unwrap();
    assert_eq!(proc_b.mem.cow_fault_count(), 0, "B never faulted");
    assert_eq!(
        kernel_b.state_fingerprint(),
        fingerprint_b,
        "A's writes are invisible to B"
    );
    assert_eq!(
        store.materialize(id).unwrap(),
        full,
        "the store's frames are immutable: the checkpoint still \
         materializes bit-for-bit after A diverged"
    );
}

/// A store-backed delta chain spanning an unmap-remap window restores
/// zero-copy to exactly the state the materialize-then-restore path
/// produces — newest-wins key resolution agrees with byte replay.
#[test]
fn delta_chain_restore_shared_matches_materialized_restore() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let bss = {
        let proc = setup.kernel.process(setup.pid).unwrap();
        proc.mem
            .vmas()
            .iter()
            .find(|v| v.perms.write && v.end - v.start >= 4 * PAGE_SIZE)
            .expect("bss vma")
            .start
    };
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.write_unchecked(bss, &[0x11; 16]);
        mem.write_unchecked(bss + PAGE_SIZE, &[0x22; 16]);
    }
    let parent = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    mark_clean_after_dump(&mut setup.kernel, &[setup.pid]).unwrap();
    let mut store = CheckpointStore::new();
    let parent_id = store.put_full(parent.clone()).unwrap();

    // Delta window: one page unmapped for good, one recycled.
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.unmap(bss, PAGE_SIZE).unwrap();
        mem.unmap(bss + PAGE_SIZE, PAGE_SIZE).unwrap();
        mem.map(bss + PAGE_SIZE, PAGE_SIZE, Perms::RW, "recycled")
            .unwrap();
        mem.write_unchecked(bss + PAGE_SIZE, &[0x33; 16]);
    }
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        parent_id,
        &parent,
    )
    .unwrap();
    let id = store.put_delta(delta).unwrap();

    // Oracle: materialize the chain and restore by copying.
    setup.kernel.remove_process(setup.pid).unwrap();
    store
        .restore(&mut setup.kernel, id, &setup.registry)
        .unwrap();
    let copying_fingerprint = setup.kernel.state_fingerprint();

    // Zero-copy chain restore.
    let copied_before = store.page_store().copied_bytes();
    setup.kernel.remove_process(setup.pid).unwrap();
    store
        .restore_shared(&mut setup.kernel, id, &setup.registry)
        .unwrap();
    assert_eq!(setup.kernel.state_fingerprint(), copying_fingerprint);
    assert_eq!(store.page_store().copied_bytes(), copied_before);
    let mem = &setup.kernel.process(setup.pid).unwrap().mem;
    assert!(!mem.page_present(bss), "unmapped page stayed gone");
    let mut back = [0u8; 16];
    mem.read_unchecked(bss + PAGE_SIZE, &mut back);
    assert_eq!(back, [0x33; 16], "newest delta won the recycled page");
}

/// `prepare_shared` against a store that already holds the checkpoint
/// copies nothing and leaves the refcounts exactly as found — on the
/// success path here; the fault-injection battery covers the error
/// paths.
#[test]
fn prepare_shared_is_refcount_neutral_and_copy_free_on_a_warm_store() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let mut store = CheckpointStore::new();
    store.put_full(full.clone()).unwrap();

    let copied_before = store.page_store().copied_bytes();
    let logical_before = store.page_store().logical_bytes();
    let unique_before = store.page_store().unique_pages();

    let txn = RestoreTransaction::prepare_shared(
        &setup.kernel,
        &full,
        &setup.registry,
        store.page_store_mut(),
    )
    .unwrap();
    assert_eq!(
        store.page_store().copied_bytes(),
        copied_before,
        "every page hash-hit the stored baseline: zero bytes copied"
    );
    assert_eq!(store.page_store().logical_bytes(), logical_before);
    assert_eq!(store.page_store().unique_pages(), unique_before);

    setup.kernel.remove_process(setup.pid).unwrap();
    txn.commit(&mut setup.kernel).unwrap();
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup
        .kernel
        .client_request(conn, b"warm", 1_000_000)
        .unwrap();
    assert_eq!(reply, b"warm");
}

/// Restoring a released checkpoint fails cleanly with `MissingParent`
/// and leaves the kernel untouched.
#[test]
fn restore_shared_after_release_fails_without_touching_the_kernel() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let mut store = CheckpointStore::new();
    let id = store.put_full(full).unwrap();
    store.release(id).unwrap();

    let before = setup.kernel.state_fingerprint();
    let err = store
        .restore_shared(&mut setup.kernel, id, &setup.registry)
        .unwrap_err();
    assert!(matches!(err, CriuError::MissingParent(_)), "got {err}");
    assert_eq!(setup.kernel.state_fingerprint(), before);
}
