//! Incremental checkpointing: dirty-page deltas, the two-phase pre-dump,
//! and the delta-chain store — exercised end to end on a live guest.
//!
//! The load-bearing property throughout: a delta chain materializes
//! **bit-identically** to the full dump taken at the same instant.

use dynacut_criu::{
    dump_incremental, dump_many, mark_clean_after_dump, materialize_chain, pre_dump,
    restore_chain, CheckpointImage, CheckpointStore, CkptId, CriuError, DeltaImage, DumpOptions,
    ModuleRegistry,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind, Perms, PAGE_SIZE};
use dynacut_vm::{Kernel, LoadSpec, Pid, Sysno};

/// A small echo server with a multi-page BSS scratch area, so guest
/// activity between checkpoints dirties a predictable handful of pages.
fn echo_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8080));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Mov(Reg::R3, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new("echo_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("buf", 4 * PAGE_SIZE);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

struct Setup {
    kernel: Kernel,
    pid: Pid,
    registry: ModuleRegistry,
}

fn boot() -> Setup {
    let exe = echo_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(std::sync::Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("server up");
    Setup {
        kernel,
        pid,
        registry,
    }
}

/// Base of a writable page the tests can scribble on (the BSS area).
fn writable_page(setup: &Setup, index: u64) -> u64 {
    let proc = setup.kernel.process(setup.pid).unwrap();
    let vma = proc
        .mem
        .vmas()
        .iter()
        .find(|v| v.perms.write && v.end - v.start >= 4 * PAGE_SIZE)
        .expect("bss vma")
        .clone();
    vma.start + index * PAGE_SIZE
}

/// Takes a full baseline dump of the (frozen) process and sweeps the
/// dirty bitmap, returning the baseline.
fn baseline(setup: &mut Setup) -> CheckpointImage {
    let parent = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    mark_clean_after_dump(&mut setup.kernel, &[setup.pid]).unwrap();
    parent
}

#[test]
fn incremental_dump_materializes_bit_identically_after_guest_writes() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let parent = baseline(&mut setup);
    setup.kernel.thaw(setup.pid).unwrap();

    // Real guest activity: the server reads the request into its buffer
    // and echoes it back, dirtying the buffer and stack pages.
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup
        .kernel
        .client_request(conn, b"hello", 1_000_000)
        .unwrap();
    assert_eq!(reply, b"hello");

    setup.kernel.freeze(setup.pid).unwrap();
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        CkptId(0),
        &parent,
    )
    .unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();

    // The delta moves strictly fewer page bytes, but materializes to the
    // exact same image — down to the serialized byte stream.
    assert!(delta.pages_bytes() > 0, "guest writes must show up");
    assert!(
        delta.pages_bytes() < full.pages_bytes(),
        "delta ({}) not smaller than full ({})",
        delta.pages_bytes(),
        full.pages_bytes()
    );
    let materialized = materialize_chain(&parent, [&delta]).unwrap();
    assert_eq!(materialized, full);
    assert_eq!(materialized.to_bytes(), full.to_bytes());

    // And restoring the chain yields a live, serving process.
    setup.kernel.remove_process(setup.pid).unwrap();
    restore_chain(&mut setup.kernel, &parent, [&delta], &setup.registry).unwrap();
    let reply = setup
        .kernel
        .client_request(conn, b"again", 1_000_000)
        .unwrap();
    assert_eq!(reply, b"again");
}

#[test]
fn clean_process_yields_empty_delta() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let parent = baseline(&mut setup);
    // Nothing ran since the sweep: dump → mark_clean → dump is empty.
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        CkptId(0),
        &parent,
    )
    .unwrap();
    assert_eq!(delta.pages_bytes(), 0);
    assert!(delta.procs.iter().all(|p| p.dirty.pages.is_empty()));
    let materialized = materialize_chain(&parent, [&delta]).unwrap();
    assert_eq!(materialized.procs, parent.procs);
}

#[test]
fn delta_codec_round_trips_and_rejects_corruption() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let parent = baseline(&mut setup);
    let page = writable_page(&setup, 1);
    setup
        .kernel
        .process_mut(setup.pid)
        .unwrap()
        .mem
        .write_unchecked(page, &[0xAB; 32]);
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        CkptId(3),
        &parent,
    )
    .unwrap();

    let bytes = delta.to_bytes();
    let parsed = DeltaImage::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, delta);
    assert_eq!(parsed.parent, CkptId(3));

    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(DeltaImage::from_bytes(&bytes[..cut]).is_err());
    }
    // Magic bytes keep full checkpoints and deltas from being confused.
    assert!(CheckpointImage::from_bytes(&bytes).is_err());
    assert!(DeltaImage::from_bytes(&parent.to_bytes()).is_err());
}

#[test]
fn delta_referencing_missing_parent_errors_cleanly() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let parent = baseline(&mut setup);
    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        CkptId(41),
        &parent,
    )
    .unwrap();

    let mut store = CheckpointStore::new();
    let parent_id = store.put_full(parent).unwrap();
    assert_eq!(parent_id, CkptId(0));
    // The delta names checkpoint 41, which the store has never seen.
    match store.put_delta(delta) {
        Err(CriuError::MissingParent(id)) => assert_eq!(id, CkptId(41)),
        other => panic!("expected MissingParent, got {other:?}"),
    }
    // Materializing an unknown id fails the same way.
    match store.materialize(CkptId(7)) {
        Err(CriuError::MissingParent(id)) => assert_eq!(id, CkptId(7)),
        other => panic!("expected MissingParent, got {other:?}"),
    }
}

#[test]
fn unmap_and_remap_inside_the_delta_window_materialize_exactly() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    // Ensure two BSS pages are populated in the baseline.
    let gone = writable_page(&setup, 0);
    let recycled = writable_page(&setup, 1);
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.write_unchecked(gone, &[0x11; 16]);
        mem.write_unchecked(recycled, &[0x22; 16]);
    }
    let parent = baseline(&mut setup);
    assert!(parent.procs[0].pagemap.pages.contains(&gone));

    // Delta window: one page is unmapped for good, the other is unmapped
    // and remapped (fresh zero page) then written.
    {
        let mem = &mut setup.kernel.process_mut(setup.pid).unwrap().mem;
        mem.unmap(gone, PAGE_SIZE).unwrap();
        mem.unmap(recycled, PAGE_SIZE).unwrap();
        mem.map(recycled, PAGE_SIZE, Perms::RW, "recycled").unwrap();
        mem.write_unchecked(recycled, &[0x33; 16]);
    }

    let delta = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        CkptId(0),
        &parent,
    )
    .unwrap();
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let materialized = materialize_chain(&parent, [&delta]).unwrap();
    assert_eq!(materialized, full);

    // The vanished page is gone from the materialized pagemap; the
    // recycled page carries the post-remap contents, not the parent's.
    let image = &materialized.procs[0];
    assert!(!image.pagemap.pages.contains(&gone));
    let index = image.pagemap.pages.binary_search(&recycled).unwrap();
    let bytes = &image.pages.bytes[index * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
    assert_eq!(&bytes[..16], &[0x33; 16]);
}

#[test]
fn pre_dump_moves_clean_pages_before_the_freeze() {
    let mut setup = boot();
    // Phase one runs against the live (unfrozen) process.
    let pre = pre_dump(&mut setup.kernel, &[setup.pid]).unwrap();
    assert!(pre.page_bytes() > 0);

    // The guest keeps running and dirties a little residue.
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup.kernel.client_request(conn, b"go", 1_000_000).unwrap();
    assert_eq!(reply, b"go");

    setup.kernel.freeze(setup.pid).unwrap();
    let (checkpoint, stats) = pre
        .complete(&mut setup.kernel, &[setup.pid], &DumpOptions::default())
        .unwrap();

    // The completed dump is bit-identical to a plain full dump taken at
    // this instant, but only the residue crossed the freeze window.
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    assert_eq!(checkpoint, full);
    assert_eq!(stats.total_page_bytes(), full.pages_bytes());
    assert!(stats.frozen_page_bytes > 0, "the residue is never empty");
    assert!(
        stats.frozen_page_bytes < stats.total_page_bytes(),
        "freeze window must shrink: frozen {} of {}",
        stats.frozen_page_bytes,
        stats.total_page_bytes()
    );
    assert!(stats.prewritten_page_bytes > 0);
}

#[test]
fn store_materializes_a_chain_of_deltas() {
    let mut setup = boot();
    let mut store = CheckpointStore::new();

    setup.kernel.freeze(setup.pid).unwrap();
    let parent = baseline(&mut setup);
    let parent_id = store.put_full(parent.clone()).unwrap();

    // Round one: dirty a page, take a delta, re-baseline.
    let page_a = writable_page(&setup, 0);
    setup
        .kernel
        .process_mut(setup.pid)
        .unwrap()
        .mem
        .write_unchecked(page_a, b"round-1");
    let delta_1 = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        parent_id,
        &parent,
    )
    .unwrap();
    let id_1 = store.put_delta(delta_1).unwrap();
    mark_clean_after_dump(&mut setup.kernel, &[setup.pid]).unwrap();
    let baseline_1 = store.materialize(id_1).unwrap();

    // Round two: another page, chained off the materialized first delta.
    let page_b = writable_page(&setup, 2);
    setup
        .kernel
        .process_mut(setup.pid)
        .unwrap()
        .mem
        .write_unchecked(page_b, b"round-2");
    let delta_2 = dump_incremental(
        &mut setup.kernel,
        &[setup.pid],
        &DumpOptions::default(),
        id_1,
        &baseline_1,
    )
    .unwrap();
    assert_eq!(delta_2.procs[0].dirty.pages, vec![page_b]);
    let id_2 = store.put_delta(delta_2).unwrap();

    // full → delta → delta resolves to exactly today's full dump.
    let full = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let materialized = store.materialize(id_2).unwrap();
    assert_eq!(materialized, full);
    assert_eq!(materialized.to_bytes(), full.to_bytes());

    // The store holds one full image plus two small deltas.
    assert_eq!(store.len(), 3);
    assert!(store.stored_pages_bytes() < 2 * full.pages_bytes());
}
