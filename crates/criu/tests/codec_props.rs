//! Property tests for the checkpoint codec: round trips, truncation and
//! bit-flip robustness on arbitrary synthetic images.

use dynacut_criu::{
    CheckpointImage, CoreImage, FdImage, FilesImage, MmImage, ModuleRef, PagemapImage,
    PagesImage, ProcessImage, TcpConnImage, TcpImage, VmaImage,
};
use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{ConnId, Pid, SigAction, Signal};
use proptest::prelude::*;

fn arb_perms() -> impl Strategy<Value = Perms> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(read, write, exec)| Perms {
        read,
        write,
        exec,
    })
}

fn arb_proc_image() -> impl Strategy<Value = ProcessImage> {
    (
        1u32..1000,                                             // pid
        proptest::option::of(1u32..1000),                       // parent
        "[a-z]{1,12}",                                          // name
        proptest::array::uniform16(any::<u64>()),               // regs
        any::<u64>(),                                           // pc
        0u64..8,                                                // flags
        proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), Signal::COUNT),
        proptest::collection::vec((0u64..1 << 30, 1u64..64), 0..6), // vmas (page idx, pages)
        0usize..5,                                              // populated pages
        proptest::collection::vec((0u32..64, 0u8..5), 0..6),    // fds
        proptest::collection::vec(any::<u8>(), 0..32),          // tcp payload
        any::<bool>(),                                          // exec_pages_dumped
    )
        .prop_map(
            |(pid, parent, name, regs, pc, flags, sigs, vmas, pages, fds, payload, exec_dumped)| {
                let mut sigactions = [SigAction::default(); Signal::COUNT];
                for (index, (handler, restorer, mask)) in sigs.iter().enumerate() {
                    sigactions[index] = SigAction {
                        handler: *handler,
                        restorer: *restorer,
                        mask: *mask,
                    };
                }
                let mut sorted_vmas: Vec<VmaImage> = Vec::new();
                let mut cursor = 0u64;
                for (gap, len) in vmas {
                    let start = cursor + (gap % 64 + 1) * PAGE_SIZE;
                    let end = start + len * PAGE_SIZE;
                    cursor = end;
                    sorted_vmas.push(VmaImage {
                        start,
                        end,
                        perms: Perms::RW,
                        name: "anon".into(),
                    });
                }
                let pagemap: Vec<u64> = sorted_vmas
                    .iter()
                    .flat_map(|v| (v.start..v.end).step_by(PAGE_SIZE as usize))
                    .take(pages)
                    .collect();
                let page_bytes = vec![0xA5u8; pagemap.len() * PAGE_SIZE as usize];
                let fds = fds
                    .into_iter()
                    .map(|(fd, kind)| {
                        let entry = match kind {
                            0 => FdImage::Console,
                            1 => FdImage::File {
                                path: "/etc/x".into(),
                                pos: u64::from(fd),
                            },
                            2 => FdImage::Socket,
                            3 => FdImage::Listener { port: fd as u16 },
                            _ => FdImage::Conn {
                                id: ConnId(u64::from(fd)),
                            },
                        };
                        (fd, entry)
                    })
                    .collect();
                ProcessImage {
                    core: CoreImage {
                        pid: Pid(pid),
                        parent: parent.map(Pid),
                        name: name.clone(),
                        regs,
                        pc,
                        flags_bits: flags,
                        sigactions,
                        signal_depth: 0,
                        insns_retired: pc,
                        modules: vec![ModuleRef {
                            name,
                            base: 0x40_0000,
                        }],
                        syscall_filter: pc ^ flags,
                    },
                    mm: MmImage { vmas: sorted_vmas },
                    pagemap: PagemapImage { pages: pagemap },
                    pages: PagesImage { bytes: page_bytes },
                    files: FilesImage { fds },
                    tcp: TcpImage {
                        conns: vec![TcpConnImage {
                            id: ConnId(7),
                            port: 80,
                            to_server: payload.clone(),
                            to_client: payload,
                        }],
                    },
                    exec_pages_dumped: exec_dumped,
                }
            },
        )
}

fn arb_perms_unused() -> impl Strategy<Value = Perms> {
    arb_perms()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint serialisation round trips for arbitrary images.
    #[test]
    fn checkpoint_codec_round_trips(
        procs in proptest::collection::vec(arb_proc_image(), 1..3),
        time in any::<u64>(),
    ) {
        let checkpoint = CheckpointImage { procs, time_ns: time };
        let bytes = checkpoint.to_bytes();
        let parsed = CheckpointImage::from_bytes(&bytes).expect("parses");
        prop_assert_eq!(parsed, checkpoint);
    }

    /// Truncation fails cleanly at every cut point (sampled).
    #[test]
    fn checkpoint_truncation_never_panics(
        image in arb_proc_image(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let checkpoint = CheckpointImage { procs: vec![image], time_ns: 1 };
        let bytes = checkpoint.to_bytes();
        let cut = cut.index(bytes.len());
        prop_assert!(CheckpointImage::from_bytes(&bytes[..cut]).is_err());
    }

    /// Random bit flips never panic the parser.
    #[test]
    fn checkpoint_bitflips_never_panic(
        image in arb_proc_image(),
        position in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let checkpoint = CheckpointImage { procs: vec![image], time_ns: 1 };
        let mut bytes = checkpoint.to_bytes();
        let position = position.index(bytes.len());
        bytes[position] ^= flip;
        let _ = CheckpointImage::from_bytes(&bytes);
    }

    /// Editing invariants: write_mem/read_mem round trip inside mapped
    /// memory and fail outside it.
    #[test]
    fn edit_round_trip(
        mut image in arb_proc_image(),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(!image.mm.vmas.is_empty());
        let vma = image.mm.vmas[0].clone();
        prop_assume!(vma.end - vma.start >= payload.len() as u64);
        image.write_mem(vma.start, &payload).expect("mapped write");
        let back = image.read_mem(vma.start, payload.len()).expect("mapped read");
        prop_assert_eq!(back, payload);
        // Unmapped access fails.
        let beyond = image.mm.vmas.last().unwrap().end + PAGE_SIZE;
        prop_assert!(image.read_mem(beyond, 1).is_err());
        // Pagemap stays sorted and consistent.
        for window in image.pagemap.pages.windows(2) {
            prop_assert!(window[0] < window[1]);
        }
        prop_assert_eq!(
            image.pages.bytes.len(),
            image.pagemap.pages.len() * PAGE_SIZE as usize
        );
    }
}

#[test]
fn strategies_compile() {
    // Keep the helper alive even if unused by a future refactor.
    let _ = arb_perms_unused();
}
