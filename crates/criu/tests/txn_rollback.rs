//! Staged-restore transaction tests at the checkpoint layer: a commit
//! that fails partway through a multi-process swap must re-insert every
//! already-swapped original, and an explicit [`CommittedRestore::undo`]
//! must revert a successful commit bit-exactly. Only built with
//! `--features fault-injection` (the commit failure is injected).
#![cfg(feature = "fault-injection")]

use dynacut_criu::{
    dump_many, CriuError, DumpOptions, ModuleRegistry, RestoreTransaction,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::fault::{self, FaultPhase};
use dynacut_vm::{Kernel, LoadSpec, Pid, ProcState, Sysno};
use std::sync::Arc;

/// A minimal echo server bound to `port`, replying `reply` to anything.
fn echo_server(name: &str, port: u16, reply: &[u8]) -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, u64::from(port)));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "msg", 0);
    asm.push(Insn::Movi(Reg::R3, reply.len() as u64));
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new(name, ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("buf", 64);
    builder.rodata("msg", reply);
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

struct Setup {
    kernel: Kernel,
    pids: Vec<Pid>,
    registry: ModuleRegistry,
}

/// Two independent echo servers — a stand-in for a multi-process guest.
fn boot_pair() -> Setup {
    let mut kernel = Kernel::new();
    let mut registry = ModuleRegistry::new();
    let mut pids = Vec::new();
    for (name, port, reply) in [("alpha", 8080u16, b"ALFA"), ("bravo", 8081u16, b"BRVO")] {
        let exe = echo_server(name, port, reply);
        registry.insert(Arc::new(exe.clone()));
        let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
        kernel.run_until_event(1, 10_000_000).expect("server up");
        pids.push(pid);
    }
    Setup {
        kernel,
        pids,
        registry,
    }
}

/// Commit fails on the second process's swap: the first process — whose
/// swap already happened — must be put back, leaving the kernel exactly
/// as it was when the transaction started.
#[test]
fn commit_failure_on_second_process_reinserts_the_first() {
    let mut setup = boot_pair();
    let conns: Vec<_> = [8080u16, 8081]
        .iter()
        .map(|&port| setup.kernel.client_connect(port).unwrap())
        .collect();
    assert_eq!(
        setup.kernel.client_request(conns[0], b"x", 1_000_000).unwrap(),
        b"ALFA"
    );
    for &pid in &setup.pids {
        setup.kernel.freeze(pid).unwrap();
    }
    let checkpoint = dump_many(&mut setup.kernel, &setup.pids, &DumpOptions::default()).unwrap();
    let frozen_state = setup.kernel.state_fingerprint();

    fault::arm(FaultPhase::RestoreCommit, 1);
    let txn = RestoreTransaction::prepare(&setup.kernel, &checkpoint, &setup.registry).unwrap();
    let err = txn.commit(&mut setup.kernel).expect_err("second swap must fail");
    assert!(matches!(
        err,
        CriuError::FaultInjected(FaultPhase::RestoreCommit)
    ));

    // Both originals are back, untouched and still frozen.
    assert_eq!(setup.kernel.state_fingerprint(), frozen_state);
    for &pid in &setup.pids {
        assert_eq!(setup.kernel.process(pid).unwrap().state, ProcState::Frozen);
    }

    // A clean retry swaps both; the servers keep answering on the
    // connections that predate the whole episode.
    let txn = RestoreTransaction::prepare(&setup.kernel, &checkpoint, &setup.registry).unwrap();
    let committed = txn.commit(&mut setup.kernel).expect("clean commit");
    assert_eq!(committed.pids(), setup.pids);
    assert_eq!(
        setup.kernel.client_request(conns[0], b"y", 1_000_000).unwrap(),
        b"ALFA"
    );
    assert_eq!(
        setup.kernel.client_request(conns[1], b"z", 1_000_000).unwrap(),
        b"BRVO"
    );
}

/// `CommittedRestore::undo` reverts a successful commit: the original
/// process objects come back bit-identically. The reference fingerprint
/// is taken *before* freeze/dump because the commit's leave-repair step
/// is one-way — `undo` hands back originals whose connections are
/// already re-established, and the caller finishes with thaw/unrepair
/// (exactly what `DynaCut::customize`'s rollback does).
#[test]
fn committed_restore_undo_reverts_the_swap() {
    let mut setup = boot_pair();
    let conn = setup.kernel.client_connect(8080).unwrap();
    assert_eq!(
        setup.kernel.client_request(conn, b"x", 1_000_000).unwrap(),
        b"ALFA"
    );
    let pristine = setup.kernel.state_fingerprint();
    for &pid in &setup.pids {
        setup.kernel.freeze(pid).unwrap();
    }
    let checkpoint = dump_many(&mut setup.kernel, &setup.pids, &DumpOptions::default()).unwrap();

    let txn = RestoreTransaction::prepare(&setup.kernel, &checkpoint, &setup.registry).unwrap();
    let committed = txn.commit(&mut setup.kernel).expect("commit");
    committed.undo(&mut setup.kernel);

    // Caller-side rollback duties, then the kernel is exactly pre-freeze.
    for &pid in &setup.pids {
        setup.kernel.thaw(pid).unwrap();
        let ids = setup.kernel.conn_ids_of(pid).unwrap();
        setup.kernel.unrepair_connections(&ids);
    }
    assert_eq!(setup.kernel.state_fingerprint(), pristine);
    assert_eq!(
        setup.kernel.client_request(conn, b"y", 1_000_000).unwrap(),
        b"ALFA"
    );
}

/// A failure while **building** staged processes (before any swap) must
/// leave the kernel completely untouched — prepare is read-only.
#[test]
fn prepare_failure_leaves_kernel_untouched() {
    let mut setup = boot_pair();
    for &pid in &setup.pids {
        setup.kernel.freeze(pid).unwrap();
    }
    let checkpoint = dump_many(&mut setup.kernel, &setup.pids, &DumpOptions::default()).unwrap();
    let frozen_state = setup.kernel.state_fingerprint();

    fault::arm(FaultPhase::RestoreBuild, 0);
    let err = RestoreTransaction::prepare(&setup.kernel, &checkpoint, &setup.registry)
        .expect_err("prepare must fail");
    assert!(matches!(
        err,
        CriuError::FaultInjected(FaultPhase::RestoreBuild)
    ));
    assert_eq!(setup.kernel.state_fingerprint(), frozen_state);
}
