//! Checkpoint/rewrite/restore integration tests — the core DynaCut
//! mechanism, exercised end to end on a live guest server.

use dynacut_criu::{
    dump, dump_many, restore, CheckpointImage, DumpOptions, ModuleRegistry,
};
use dynacut_isa::{Assembler, Cond, Insn, Reg, TRAP_OPCODE};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_vm::{Kernel, LoadSpec, Pid, RunOutcome, Signal, Sysno};

/// An echo server with a distinguishable "FEATURE" code path: input
/// starting with 'F' is answered by feature code, everything else by the
/// default path.
fn feature_server() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 8080));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("accept_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R11, Reg::R0));
    asm.label("serve_loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Read as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "buf", 0);
    asm.push(Insn::Movi(Reg::R3, 64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Cmpi(Reg::R0, 0));
    asm.jcc(Cond::Eq, "accept_loop");
    // Dispatch: first byte 'F' -> feature, else default.
    asm.lea_ext(Reg::R4, "buf", 0);
    asm.push(Insn::Ld(dynacut_isa::Width::B1, Reg::R5, Reg::R4, 0));
    asm.push(Insn::Cmpi(Reg::R5, b'F' as i32));
    asm.jcc(Cond::Eq, "feature");
    // default path: reply "dflt"
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "dflt_msg", 0);
    asm.push(Insn::Movi(Reg::R3, 4));
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");
    asm.func("feature");
    asm.push(Insn::Movi(Reg::R0, Sysno::Write as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R11));
    asm.lea_ext(Reg::R2, "feat_msg", 0);
    asm.push(Insn::Movi(Reg::R3, 4));
    asm.push(Insn::Syscall);
    asm.jmp("serve_loop");

    let mut builder = ModuleBuilder::new("feature_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.bss("buf", 64);
    builder.rodata("dflt_msg", b"dflt");
    builder.rodata("feat_msg", b"FEAT");
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

struct Setup {
    kernel: Kernel,
    pid: Pid,
    registry: ModuleRegistry,
}

fn boot() -> Setup {
    let exe = feature_server();
    let mut registry = ModuleRegistry::new();
    registry.insert(std::sync::Arc::new(exe.clone()));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    kernel.run_until_event(1, 10_000_000).expect("server up");
    Setup {
        kernel,
        pid,
        registry,
    }
}

#[test]
fn dump_requires_frozen_process() {
    let mut setup = boot();
    assert!(dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).is_err());
}

#[test]
fn dump_restore_identity_preserves_behaviour() {
    let mut setup = boot();
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup.kernel.client_request(conn, b"x", 1_000_000).unwrap();
    assert_eq!(reply, b"dflt");

    setup.kernel.freeze(setup.pid).unwrap();
    let image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    setup.kernel.remove_process(setup.pid).unwrap();
    let pid = restore(&mut setup.kernel, &image, &setup.registry).unwrap();
    assert_eq!(pid, setup.pid);

    // Same connection keeps working (TCP repair).
    let reply = setup.kernel.client_request(conn, b"F1", 1_000_000).unwrap();
    assert_eq!(reply, b"FEAT");
    let reply = setup.kernel.client_request(conn, b"y", 1_000_000).unwrap();
    assert_eq!(reply, b"dflt");
}

#[test]
fn restore_preserves_registers_and_memory_exactly() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    let original = setup.kernel.remove_process(setup.pid).unwrap();
    restore(&mut setup.kernel, &image, &setup.registry).unwrap();
    let restored = setup.kernel.process(setup.pid).unwrap();
    assert_eq!(restored.cpu, original.cpu);
    assert_eq!(restored.sigactions, original.sigactions);
    assert_eq!(restored.mem.vmas(), original.mem.vmas());
    // Every populated page in the original reads identically.
    for (base, bytes) in original.mem.populated_pages() {
        let mut buf = vec![0u8; bytes.len()];
        restored.mem.read_unchecked(base, &mut buf);
        assert_eq!(buf, bytes, "page {base:#x} differs");
    }
}

#[test]
fn checkpoint_serialisation_round_trips() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let checkpoint = dump_many(&mut setup.kernel, &[setup.pid], &DumpOptions::default()).unwrap();
    let bytes = checkpoint.to_bytes();
    let parsed = CheckpointImage::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, checkpoint);
    assert!(checkpoint.pages_bytes() > 0);
    // Truncations fail without panicking.
    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(CheckpointImage::from_bytes(&bytes[..cut]).is_err());
    }
}

/// The paper's criu/mem.c patch: with exec-page dumping, a text rewrite in
/// the image survives restore and blocks the feature; with stock CRIU
/// options the rewrite is lost because the restorer reconstructs the text
/// from the binary.
#[test]
fn text_rewrite_survives_only_with_exec_page_dumping() {
    for (options, expect_blocked) in [
        (DumpOptions::default(), true),
        (DumpOptions::stock_criu(), false),
    ] {
        let mut setup = boot();
        let exe = setup.registry.get("feature_server").unwrap().clone();
        let feature_off = exe.symbols["feature"].offset;
        let feature_addr = dynacut_vm::EXE_BASE + feature_off;

        setup.kernel.freeze(setup.pid).unwrap();
        let mut image = dump(&mut setup.kernel, setup.pid, &options).unwrap();
        // Rewrite: first byte of the feature handler becomes int3.
        image.write_mem(feature_addr, &[TRAP_OPCODE]).unwrap();
        setup.kernel.remove_process(setup.pid).unwrap();
        restore(&mut setup.kernel, &image, &setup.registry).unwrap();

        let conn = setup.kernel.client_connect(8080).unwrap();
        let reply = setup.kernel.client_request(conn, b"F!", 1_000_000).unwrap();
        if expect_blocked {
            // No handler installed: the server dies with SIGTRAP.
            assert_eq!(reply, b"");
            let status = setup.kernel.exit_status(setup.pid).expect("killed");
            assert_eq!(status.fatal_signal, Some(Signal::Sigtrap));
        } else {
            assert_eq!(
                reply, b"FEAT",
                "stock CRIU reconstructs pristine text from the binary"
            );
        }
    }
}

#[test]
fn unmap_range_in_image_removes_pages_and_vma() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let mut image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    let text_vma = image
        .mm
        .vmas
        .iter()
        .find(|v| v.name.contains("text"))
        .unwrap()
        .clone();
    let pages_before = image.pagemap.pages.len();
    image.unmap_range(text_vma.start, text_vma.end).unwrap();
    assert!(image.mm.vma_at(text_vma.start).is_none());
    assert!(image.pagemap.pages.len() < pages_before);
    // Consistency: every remaining page is inside some VMA.
    for &page in &image.pagemap.pages {
        assert!(image.mm.vma_at(page).is_some(), "orphan page {page:#x}");
    }
}

#[test]
fn write_mem_to_unmapped_address_fails() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let mut image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    assert!(image.write_mem(0xDEAD_0000_0000, &[1]).is_err());
    assert!(image.read_mem(0xDEAD_0000_0000, 4).is_err());
}

#[test]
fn decode_text_mentions_key_facts() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    let text = image.decode_text();
    assert!(text.contains("feature_server"));
    assert!(text.contains("listener :8080"));
    assert!(text.contains("r-x"));
}

/// Library injection: a PIC "sighandler" library whose GOT resolves
/// against the main binary's exported symbols.
#[test]
fn inject_library_creates_vmas_and_resolves_got() {
    // A library that calls an exported function of the server binary.
    let mut lib_asm = Assembler::new();
    lib_asm.func("helper_entry");
    lib_asm.call_ext("feature");
    lib_asm.push(Insn::Ret);
    let mut lib_builder = ModuleBuilder::new("sighelper", ObjectKind::SharedLib);
    lib_builder.text(lib_asm.finish().unwrap());
    let server = feature_server();
    let library = lib_builder.link(&[&server]).unwrap();

    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let mut image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    let base = image
        .inject_library(&library, None, &setup.registry)
        .unwrap();
    // New VMA exists and holds the library text.
    assert!(image.mm.vma_at(base).is_some());
    let text = image.read_mem(base, library.text.len()).unwrap();
    assert_eq!(text[0], library.text[0]);
    // The GOT slot points at the server's `feature` function.
    let got_addr = base + library.plt[0].got_offset;
    let slot = image.read_mem(got_addr, 8).unwrap();
    let resolved = u64::from_le_bytes(slot.try_into().unwrap());
    let expected = dynacut_vm::EXE_BASE + server.symbols["feature"].offset;
    assert_eq!(resolved, expected);
    // The module list now records the injection.
    assert!(image.core.modules.iter().any(|m| m.name == "sighelper"));
}

/// Restoring into an occupied pid slot fails cleanly.
#[test]
fn restore_conflicting_pid_fails() {
    let mut setup = boot();
    setup.kernel.freeze(setup.pid).unwrap();
    let image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    // Process still present.
    assert!(restore(&mut setup.kernel, &image, &setup.registry).is_err());
}

/// A frozen-but-not-removed process plus restore-after-remove equals the
/// full CRIU cycle; the kernel keeps running other processes meanwhile.
#[test]
fn other_processes_run_during_checkpoint() {
    let mut setup = boot();
    // Busy sibling process.
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.label("spin");
    asm.push(Insn::Addi(Reg::R1, 1));
    asm.push(Insn::Cmpi(Reg::R1, 100_000));
    asm.jcc(Cond::Ne, "spin");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("spinner", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let spinner = builder.link(&[]).unwrap();
    let spinner_pid = setup.kernel.spawn(&LoadSpec::exe_only(spinner)).unwrap();

    setup.kernel.freeze(setup.pid).unwrap();
    let image = dump(&mut setup.kernel, setup.pid, &DumpOptions::default()).unwrap();
    // The sibling makes progress while the server is frozen.
    let outcome = setup.kernel.run_for(1_000_000);
    assert_ne!(outcome, RunOutcome::AllExited);
    assert!(setup.kernel.exit_status(spinner_pid).is_some());

    setup.kernel.remove_process(setup.pid).unwrap();
    restore(&mut setup.kernel, &image, &setup.registry).unwrap();
    let conn = setup.kernel.client_connect(8080).unwrap();
    let reply = setup.kernel.client_request(conn, b"z", 1_000_000).unwrap();
    assert_eq!(reply, b"dflt");
}
