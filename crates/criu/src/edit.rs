//! CRIT-style image editing — the paper's extended `crit` APIs
//! ("update memory contents, enlarge or unmap the VMAs, and insert
//! position-independent shared libraries", §3.3).

use crate::images::{ProcessImage, VmaImage};
use crate::CriuError;
use dynacut_obj::{materialize, page_align, Image, Perms, PAGE_SIZE};
use dynacut_vm::{SigAction, Signal};
use std::collections::BTreeMap;

impl ProcessImage {
    /// Reads `len` bytes at `addr` from the image (unpopulated pages read
    /// as zero).
    ///
    /// # Errors
    ///
    /// Fails if any byte lies outside every VMA.
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<Vec<u8>, CriuError> {
        self.check_mapped(addr, len)?;
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(len - done);
            if let Ok(index) = self.pagemap.pages.binary_search(&page_base) {
                let start = index * PAGE_SIZE as usize + in_page;
                out[done..done + chunk].copy_from_slice(&self.pages.bytes[start..start + chunk]);
            }
            done += chunk;
        }
        Ok(out)
    }

    /// Writes bytes into the image at `addr`, materialising pages in the
    /// pagemap as needed — the primitive behind "replacing arbitrary
    /// instructions with one-byte `int3` instructions" (paper §3.2.1).
    ///
    /// # Errors
    ///
    /// Fails if any byte lies outside every VMA.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) -> Result<(), CriuError> {
        self.check_mapped(addr, bytes.len())?;
        let mut done = 0usize;
        while done < bytes.len() {
            let cursor = addr + done as u64;
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = (cursor - page_base) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(bytes.len() - done);
            let index = match self.pagemap.pages.binary_search(&page_base) {
                Ok(index) => index,
                Err(index) => {
                    // Materialise a zero page at the right position.
                    self.pagemap.pages.insert(index, page_base);
                    let at = index * PAGE_SIZE as usize;
                    self.pages
                        .bytes
                        .splice(at..at, std::iter::repeat_n(0u8, PAGE_SIZE as usize));
                    index
                }
            };
            let start = index * PAGE_SIZE as usize + in_page;
            self.pages.bytes[start..start + chunk].copy_from_slice(&bytes[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Overwrites `[addr, addr+len)` with a constant byte (the "wipe out a
    /// block of code memory" policy).
    ///
    /// # Errors
    ///
    /// Fails if the range is not mapped.
    pub fn fill_mem(&mut self, addr: u64, len: usize, value: u8) -> Result<(), CriuError> {
        self.write_mem(addr, &vec![value; len])
    }

    /// Adds a fresh VMA to the image and returns its start address.
    ///
    /// # Errors
    ///
    /// Fails if the requested range overlaps an existing VMA.
    pub fn add_vma(
        &mut self,
        start: u64,
        len: u64,
        perms: Perms,
        name: &str,
    ) -> Result<u64, CriuError> {
        let len = page_align(len.max(1));
        let end = start + len;
        if self.mm.vmas.iter().any(|v| v.start < end && start < v.end) {
            return Err(CriuError::VmaOverlap(start));
        }
        self.mm.vmas.push(VmaImage {
            start,
            end,
            perms,
            name: name.to_owned(),
        });
        self.mm.vmas.sort_by_key(|v| v.start);
        Ok(start)
    }

    /// Removes `[start, end)` from the VMA list and drops its pages — the
    /// "unmap an entire memory page" policy. VMAs straddling the range are
    /// split.
    ///
    /// # Errors
    ///
    /// Fails if the bounds are not page-aligned.
    pub fn unmap_range(&mut self, start: u64, end: u64) -> Result<(), CriuError> {
        if !start.is_multiple_of(PAGE_SIZE) || !end.is_multiple_of(PAGE_SIZE) || start >= end {
            return Err(CriuError::Inconsistent(format!(
                "bad unmap range {start:#x}..{end:#x}"
            )));
        }
        let mut next = Vec::with_capacity(self.mm.vmas.len() + 1);
        for vma in self.mm.vmas.drain(..) {
            if !(vma.start < end && start < vma.end) {
                next.push(vma);
                continue;
            }
            if vma.start < start {
                next.push(VmaImage {
                    start: vma.start,
                    end: start,
                    perms: vma.perms,
                    name: vma.name.clone(),
                });
            }
            if vma.end > end {
                next.push(VmaImage {
                    start: end,
                    end: vma.end,
                    perms: vma.perms,
                    name: vma.name.clone(),
                });
            }
        }
        next.sort_by_key(|v| v.start);
        self.mm.vmas = next;

        // Drop the affected pages from pagemap/pages.
        let mut index = 0;
        while index < self.pagemap.pages.len() {
            let page = self.pagemap.pages[index];
            if page >= start && page < end {
                self.pagemap.pages.remove(index);
                let at = index * PAGE_SIZE as usize;
                self.pages.bytes.drain(at..at + PAGE_SIZE as usize);
            } else {
                index += 1;
            }
        }
        Ok(())
    }

    /// Installs a signal disposition in the core image — how DynaCut
    /// "adds the signal handler address, restorer address, and signal mask
    /// into the SIGTRAP sigaction field" (paper §3.3).
    pub fn set_sigaction(&mut self, signal: Signal, action: SigAction) {
        self.core.sigactions[signal.number() as usize] = action;
    }

    /// Installs a syscall allow-bitmask in the core image (bit *n*
    /// permits syscall number *n*) — dynamic seccomp filtering through
    /// process rewriting, the paper's §5 extension.
    pub fn set_syscall_filter(&mut self, filter: u64) {
        self.core.syscall_filter = filter;
    }

    /// Injects a position-independent shared library into the image at
    /// `base` (or a free address chosen from `hint` when `base` is
    /// `None`), resolving its imports against the modules already mapped.
    /// Returns the base address used.
    ///
    /// This reproduces §3.3's library injection: new VMAs and pages are
    /// created, the library's GOT is filled with the resolved libc symbol
    /// addresses, and global-data relocations are applied relative to the
    /// chosen base.
    ///
    /// # Errors
    ///
    /// Fails on overlap, unresolved imports, or malformed library images.
    pub fn inject_library(
        &mut self,
        library: &Image,
        base: Option<u64>,
        registry: &crate::ModuleRegistry,
    ) -> Result<u64, CriuError> {
        if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::LibraryInjection) {
            return Err(CriuError::FaultInjected(
                dynacut_vm::fault::FaultPhase::LibraryInjection,
            ));
        }
        // Resolve import symbols against the mapped modules.
        let mut globals: BTreeMap<String, u64> = BTreeMap::new();
        for module_ref in &self.core.modules {
            let Some(binary) = registry.get(&module_ref.name) else {
                continue;
            };
            for (name, def) in &binary.symbols {
                globals
                    .entry(name.clone())
                    .or_insert(module_ref.base + def.offset);
            }
        }

        let footprint = page_align(library.footprint());
        let base = match base {
            Some(base) => base,
            None => self.mm.find_free(0x6000_0000_0000, footprint),
        };
        let segments = materialize(library, base, |symbol| globals.get(symbol).copied())
            .map_err(|err| match err {
                dynacut_obj::ObjError::MissingImport { symbol, .. } => {
                    CriuError::UnresolvedSymbol(symbol)
                }
                other => CriuError::Inconsistent(other.to_string()),
            })?;
        for segment in &segments {
            self.add_vma(segment.vaddr, segment.map_len(), segment.perms, &segment.name)?;
            if !segment.bytes.is_empty() {
                self.write_mem(segment.vaddr, &segment.bytes)?;
            }
        }
        // Record the module so future dumps and rewrites can find it.
        self.core.modules.push(crate::images::ModuleRef {
            name: library.name.clone(),
            base,
        });
        Ok(base)
    }

    /// Unloads a previously injected module: every VMA inside its
    /// footprint is unmapped, its pages dropped, and its [`ModuleRef`]
    /// removed — "unused shared library code can be dynamically unloaded
    /// through the process rewriting approach" (paper §5). If the
    /// `SIGTRAP` sigaction points into the module it is reset to the
    /// default disposition.
    ///
    /// Returns the number of pages removed.
    ///
    /// # Errors
    ///
    /// Fails if no module of that name is mapped or its binary is missing
    /// from the registry (needed to know the footprint).
    ///
    /// [`ModuleRef`]: crate::images::ModuleRef
    pub fn unload_module(
        &mut self,
        name: &str,
        registry: &crate::ModuleRegistry,
    ) -> Result<u64, CriuError> {
        let position = self
            .core
            .modules
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| CriuError::UnknownModule(name.to_owned()))?;
        let base = self.core.modules[position].base;
        let binary = registry
            .get(name)
            .ok_or_else(|| CriuError::UnknownModule(name.to_owned()))?;
        let end = base + dynacut_obj::page_align(binary.footprint());
        let pages_before = self.pagemap.pages.len();
        self.unmap_range(base, end)?;
        self.core.modules.remove(position);
        // A dangling SIGTRAP handler inside the unloaded module would
        // fault on delivery; reset it.
        let trap = Signal::Sigtrap.number() as usize;
        let action = self.core.sigactions[trap];
        if action.handler >= base && action.handler < end {
            self.core.sigactions[trap] = SigAction::default();
        }
        Ok((pages_before - self.pagemap.pages.len()) as u64)
    }

    /// The mapped module reference whose text contains `addr`, if any.
    pub fn module_containing(
        &self,
        addr: u64,
        registry: &crate::ModuleRegistry,
    ) -> Option<(crate::images::ModuleRef, std::sync::Arc<Image>)> {
        for module_ref in &self.core.modules {
            let Some(binary) = registry.get(&module_ref.name) else {
                continue;
            };
            let text_end = module_ref.base + binary.text.len() as u64;
            if addr >= module_ref.base && addr < text_end {
                return Some((module_ref.clone(), std::sync::Arc::clone(binary)));
            }
        }
        None
    }

    fn check_mapped(&self, addr: u64, len: usize) -> Result<(), CriuError> {
        let mut cursor = addr;
        let end = addr
            .checked_add(len as u64)
            .ok_or(CriuError::AddressNotMapped(addr))?;
        while cursor < end {
            let vma = self
                .mm
                .vma_at(cursor)
                .ok_or(CriuError::AddressNotMapped(cursor))?;
            cursor = vma.end.min(end);
        }
        Ok(())
    }
}
