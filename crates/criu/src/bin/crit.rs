//! `crit` — the CRIU image tool for DCVM checkpoints, mirroring the
//! workflows the paper built on ("users can use CRIT to print all memory
//! regions of the application (i.e., `crit x <dir> mems`) or check the
//! register values of a process snapshot (i.e., `crit show core.img`)",
//! §3.3).
//!
//! ```text
//! crit decode <checkpoint.dcr>        # full human-readable dump
//! crit mems   <checkpoint.dcr>        # VMA listing per process
//! crit core   <checkpoint.dcr>        # registers + sigactions
//! crit info   <checkpoint.dcr>        # one-line summary
//! ```

use dynacut_criu::CheckpointImage;

fn usage() -> ! {
    eprintln!("usage: crit <decode|mems|core|info> <checkpoint-file>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), path.as_str()),
        _ => usage(),
    };
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("crit: cannot read `{path}`: {err}");
            std::process::exit(1);
        }
    };
    let checkpoint = match CheckpointImage::from_bytes(&raw) {
        Ok(checkpoint) => checkpoint,
        Err(err) => {
            eprintln!("crit: `{path}` is not a valid checkpoint: {err}");
            std::process::exit(1);
        }
    };
    match command {
        "decode" => print!("{}", checkpoint.decode_text()),
        "mems" => {
            for image in &checkpoint.procs {
                println!("pid {} ({}):", image.core.pid.0, image.core.name);
                for vma in &image.mm.vmas {
                    println!(
                        "  {:012x}-{:012x} {} {}",
                        vma.start, vma.end, vma.perms, vma.name
                    );
                }
            }
        }
        "core" => {
            for image in &checkpoint.procs {
                println!("pid {} ({}):", image.core.pid.0, image.core.name);
                println!("  pc: {:#x}", image.core.pc);
                for (index, value) in image.core.regs.iter().enumerate() {
                    if *value != 0 {
                        println!("  r{index}: {value:#x}");
                    }
                }
                for (signo, action) in image.core.sigactions.iter().enumerate() {
                    if action.is_handled() {
                        println!(
                            "  sigaction[{signo}]: handler={:#x} restorer={:#x}",
                            action.handler, action.restorer
                        );
                    }
                }
            }
        }
        "info" => {
            println!(
                "checkpoint @ {} ns: {} process(es), {} page bytes",
                checkpoint.time_ns,
                checkpoint.procs.len(),
                checkpoint.pages_bytes()
            );
            for image in &checkpoint.procs {
                println!(
                    "  pid {} {} — {} vmas, {} pages, {} fds, {} tcp conns{}",
                    image.core.pid.0,
                    image.core.name,
                    image.mm.vmas.len(),
                    image.pagemap.pages.len(),
                    image.files.fds.len(),
                    image.tcp.conns.len(),
                    if image.exec_pages_dumped {
                        " (exec pages dumped)"
                    } else {
                        ""
                    }
                );
            }
        }
        _ => usage(),
    }
}
