//! Content-addressed, refcounted page storage.
//!
//! A fleet of processes running the same binary dumps the same text,
//! rodata and (mostly) heap pages N times over; repeated incremental
//! cycles of one process dump the same clean pages again and again. The
//! [`PageStore`] collapses all of that to **one stored copy per distinct
//! page content**: pages are keyed by a content hash ([`PageKey`]) and
//! refcounted, so a checkpoint store holds page *references* while the
//! bytes live here exactly once.
//!
//! Invariants:
//!
//! * **Bit identity** — [`SharedPages::intern`] followed by
//!   [`SharedPages::materialize`] reproduces the original
//!   [`PagesImage`] byte for byte (tested by property in
//!   `tests/page_store.rs`).
//! * **Refcount lifecycle** — every `intern` bumps the refcount of each
//!   page it references; [`SharedPages::release`] decrements them and a
//!   page's bytes are dropped exactly when its last reference goes.
//!   Materializing after release fails loudly
//!   ([`CriuError::Inconsistent`]) instead of fabricating pages.
//! * **Accounting** — [`PageStore::logical_bytes`] counts what callers
//!   handed in (references × page size), [`PageStore::unique_bytes`]
//!   counts what is actually held; their ratio is the dedup win the
//!   fleet experiment reports.

use crate::images::PagesImage;
use crate::CriuError;
use dynacut_obj::PAGE_SIZE;
use dynacut_vm::SharedFrame;
use std::collections::BTreeMap;

/// Content hash of one page: 128-bit FNV-1a over the page bytes.
///
/// 128 bits keep accidental collisions out of reach for any realistic
/// store size; [`PageStore::intern`] additionally compares bytes on
/// every hash hit and fails with [`CriuError::PageCollision`], so a
/// collision can never silently hand a guest the wrong page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageKey(u128);

impl PageKey {
    /// Hashes one page's bytes.
    pub fn of(bytes: &[u8]) -> Self {
        const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
        let mut hash = OFFSET;
        for &byte in bytes {
            hash ^= u128::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        PageKey(hash)
    }
}

impl std::fmt::Display for PageKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page-{:032x}", self.0)
    }
}

#[derive(Debug, Clone)]
struct PageEntry {
    /// The page bytes, held as a [`SharedFrame`] so restores can hand
    /// zero-copy handles straight into guest address spaces.
    frame: SharedFrame,
    refs: u64,
}

/// The content-addressed store: hash → (page frame, refcount).
///
/// Store refcounts (`refs`) and frame handles are deliberately distinct
/// lifetimes: `refs` counts *checkpoint* references (what the store must
/// keep retrievable), while [`SharedFrame::handle_count`] counts every
/// live alias including pages mapped into running address spaces. A
/// frame whose store entry is released stays alive for as long as any
/// guest still maps it — but [`PageStore::get`] and materialization fail
/// loudly, because the *store* no longer vouches for it.
#[derive(Debug, Clone, Default)]
pub struct PageStore {
    pages: BTreeMap<PageKey, PageEntry>,
    /// Cumulative bytes physically copied into the store by first-sight
    /// interns. Hash hits copy nothing; this counter is the store-side
    /// half of the zero-copy restore accounting.
    copied_bytes: u64,
    /// Test hook: overrides the content hash so a unit test can force two
    /// distinct pages onto one key and exercise the collision guard.
    #[cfg(test)]
    hasher: Option<fn(&[u8]) -> PageKey>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn key_of(&self, bytes: &[u8]) -> PageKey {
        #[cfg(test)]
        if let Some(hasher) = self.hasher {
            return hasher(bytes);
        }
        PageKey::of(bytes)
    }

    /// Interns one page, bumping its refcount, and returns its key. The
    /// bytes are copied only on first sight.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::PageCollision`] when the key is already
    /// held by a page with *different* bytes. Bytes are compared on every
    /// hash hit — in release builds too — because handing out the wrong
    /// page would silently corrupt a restored guest.
    pub fn intern(&mut self, bytes: &[u8]) -> Result<PageKey, CriuError> {
        let key = self.key_of(bytes);
        match self.pages.get_mut(&key) {
            Some(entry) => {
                if entry.frame.bytes() != bytes {
                    return Err(CriuError::PageCollision(key));
                }
                entry.refs += 1;
            }
            None => {
                self.copied_bytes += bytes.len() as u64;
                self.pages.insert(
                    key,
                    PageEntry {
                        frame: SharedFrame::new(bytes),
                        refs: 1,
                    },
                );
            }
        }
        Ok(key)
    }

    /// The bytes of an interned page, if it is still referenced.
    pub fn get(&self, key: PageKey) -> Option<&[u8]> {
        self.pages.get(&key).map(|entry| entry.frame.bytes())
    }

    /// A zero-copy handle on an interned page, if it is still
    /// referenced. Cloning the frame does **not** take a store
    /// reference — the Arc keeps the bytes alive, the store's refcount
    /// keeps them *retrievable*.
    pub fn frame(&self, key: PageKey) -> Option<SharedFrame> {
        self.pages.get(&key).map(|entry| entry.frame.clone())
    }

    /// Cumulative bytes physically copied into the store by first-sight
    /// interns (hash hits and frame handouts copy nothing). Monotonic:
    /// never decremented by releases.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// Current refcount of a page (0 if absent).
    pub fn refs(&self, key: PageKey) -> u64 {
        self.pages.get(&key).map_or(0, |entry| entry.refs)
    }

    /// Drops one reference; the bytes are freed when the last one goes.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::UnknownPage`] when the key is not held —
    /// a double release or a release of something never interned. The
    /// store is unchanged on error.
    pub fn release(&mut self, key: PageKey) -> Result<(), CriuError> {
        let entry = self
            .pages
            .get_mut(&key)
            .ok_or(CriuError::UnknownPage(key))?;
        entry.refs -= 1;
        if entry.refs == 0 {
            self.pages.remove(&key);
        }
        Ok(())
    }

    /// Number of distinct pages held.
    pub fn unique_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes actually held: one copy per distinct page content.
    pub fn unique_bytes(&self) -> usize {
        self.pages
            .values()
            .map(|entry| entry.frame.bytes().len())
            .sum()
    }

    /// Bytes callers handed in: every reference counts its page size.
    /// This is what a store without dedup would hold.
    pub fn logical_bytes(&self) -> usize {
        self.pages
            .values()
            .map(|entry| entry.refs as usize * entry.frame.bytes().len())
            .sum()
    }

    /// Bytes shared away: `logical_bytes − unique_bytes`, i.e. the
    /// copies the content addressing made unnecessary.
    pub fn shared_bytes(&self) -> usize {
        self.logical_bytes() - self.unique_bytes()
    }

    /// Dedup win: `logical_bytes / unique_bytes` (1.0 when empty). ≥ 1.0
    /// by construction.
    pub fn dedup_ratio(&self) -> f64 {
        let unique = self.unique_bytes();
        if unique == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / unique as f64
    }
}

/// The interned form of a [`PagesImage`]: an ordered list of page
/// references into a [`PageStore`]. Holding one of these *is* holding a
/// reference on every page it lists — drop it through [`release`]
/// (never silently), and rebuild the original byte-identical payload
/// with [`materialize`].
///
/// [`release`]: SharedPages::release
/// [`materialize`]: SharedPages::materialize
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPages {
    keys: Vec<PageKey>,
}

impl SharedPages {
    /// Interns every page of `pages` (in order), taking one reference on
    /// each.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::PageCollision`] if any page's key is held
    /// by different bytes; references taken for earlier pages are
    /// released again, leaving the store exactly as it was.
    pub fn intern(store: &mut PageStore, pages: &PagesImage) -> Result<Self, CriuError> {
        let mut keys = Vec::with_capacity(pages.bytes.len() / PAGE_SIZE as usize);
        for page in pages.bytes.chunks(PAGE_SIZE as usize) {
            match store.intern(page) {
                Ok(key) => keys.push(key),
                Err(err) => {
                    for &taken in keys.iter().rev() {
                        // These references were just taken above, so the
                        // release cannot miss; the collision is the error
                        // worth reporting.
                        let _ = store.release(taken);
                    }
                    return Err(err);
                }
            }
        }
        Ok(SharedPages { keys })
    }

    /// Rebuilds the original [`PagesImage`], byte for byte.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::Inconsistent`] if any referenced page is
    /// gone — i.e. these shared pages were already released.
    pub fn materialize(&self, store: &PageStore) -> Result<PagesImage, CriuError> {
        let mut bytes = Vec::with_capacity(self.keys.len() * PAGE_SIZE as usize);
        for &key in &self.keys {
            let page = store.get(key).ok_or_else(|| {
                CriuError::Inconsistent(format!("{key} is not in the page store"))
            })?;
            bytes.extend_from_slice(page);
        }
        Ok(PagesImage { bytes })
    }

    /// Releases one reference on every page listed.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::UnknownPage`] naming the first key the
    /// store did not hold. Every *other* listed reference is still
    /// released — the miss is an accounting bug to surface, not a reason
    /// to leak the rest.
    pub fn release(&self, store: &mut PageStore) -> Result<(), CriuError> {
        let mut first_miss = None;
        for &key in &self.keys {
            if let Err(err) = store.release(key) {
                first_miss.get_or_insert(err);
            }
        }
        match first_miss {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Number of page references held.
    pub fn page_count(&self) -> usize {
        self.keys.len()
    }

    /// Logical payload size: references × page size.
    pub fn pages_bytes(&self) -> usize {
        self.keys.len() * PAGE_SIZE as usize
    }

    /// The page keys, in payload order.
    pub fn keys(&self) -> &[PageKey] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE as usize]
    }

    #[test]
    fn intern_dedups_and_refcounts() {
        let mut store = PageStore::new();
        let a1 = store.intern(&page(0xAA)).unwrap();
        let a2 = store.intern(&page(0xAA)).unwrap();
        let b = store.intern(&page(0xBB)).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(store.unique_pages(), 2);
        assert_eq!(store.refs(a1), 2);
        assert_eq!(store.refs(b), 1);
        assert_eq!(store.logical_bytes(), 3 * PAGE_SIZE as usize);
        assert_eq!(store.unique_bytes(), 2 * PAGE_SIZE as usize);
        assert_eq!(store.shared_bytes(), PAGE_SIZE as usize);
    }

    #[test]
    fn release_frees_at_zero_refs() {
        let mut store = PageStore::new();
        let key = store.intern(&page(0x11)).unwrap();
        store.intern(&page(0x11)).unwrap();
        store.release(key).unwrap();
        assert_eq!(store.refs(key), 1);
        assert!(store.get(key).is_some());
        store.release(key).unwrap();
        assert_eq!(store.refs(key), 0);
        assert!(store.get(key).is_none());
        assert_eq!(store.unique_bytes(), 0);
        assert_eq!(store.dedup_ratio(), 1.0);
    }

    #[test]
    fn copied_bytes_counts_only_first_sight_interns() {
        let mut store = PageStore::new();
        store.intern(&page(0x01)).unwrap();
        store.intern(&page(0x01)).unwrap();
        store.intern(&page(0x02)).unwrap();
        assert_eq!(store.copied_bytes(), 2 * PAGE_SIZE, "hash hits copy nothing");
        let key = PageKey::of(&page(0x01));
        store.frame(key).unwrap();
        assert_eq!(store.copied_bytes(), 2 * PAGE_SIZE, "handouts copy nothing");
    }

    #[test]
    fn frames_outlive_released_entries_but_store_lookups_fail() {
        let mut store = PageStore::new();
        let key = store.intern(&page(0x77)).unwrap();
        let frame = store.frame(key).unwrap();
        store.release(key).unwrap();
        assert!(store.get(key).is_none(), "store no longer vouches");
        assert!(store.frame(key).is_none());
        assert_eq!(frame.bytes(), &page(0x77)[..], "the handle keeps the bytes alive");
        assert_eq!(frame.handle_count(), 1);
    }

    #[test]
    fn reintern_after_release_recopies_and_yields_a_fresh_frame() {
        let mut store = PageStore::new();
        let key = store.intern(&page(0x33)).unwrap();
        let old = store.frame(key).unwrap();
        store.release(key).unwrap();
        let key2 = store.intern(&page(0x33)).unwrap();
        assert_eq!(key, key2, "content addressing is stable");
        assert_eq!(store.copied_bytes(), 2 * PAGE_SIZE);
        let fresh = store.frame(key2).unwrap();
        assert_eq!(old.bytes(), fresh.bytes());
        assert_eq!(old.handle_count(), 1, "old frame is not resurrected");
    }

    #[test]
    fn shared_pages_round_trip_bit_identical() {
        let mut store = PageStore::new();
        let mut image = PagesImage::default();
        image.bytes.extend_from_slice(&page(0x01));
        image.bytes.extend_from_slice(&page(0x02));
        image.bytes.extend_from_slice(&page(0x01));
        let shared = SharedPages::intern(&mut store, &image).unwrap();
        assert_eq!(shared.page_count(), 3);
        assert_eq!(store.unique_pages(), 2);
        let back = shared.materialize(&store).unwrap();
        assert_eq!(back, image);
        shared.release(&mut store).unwrap();
        assert_eq!(store.unique_pages(), 0);
        assert!(matches!(
            shared.materialize(&store),
            Err(CriuError::Inconsistent(_))
        ));
    }

    /// Regression (PR 7): a hash collision used to be guarded only by a
    /// `debug_assert_eq!` — release builds would silently alias two
    /// distinct pages onto one entry and hand restores the wrong bytes.
    /// The injected hasher maps *everything* to one key, so the second
    /// distinct page is a guaranteed collision.
    #[test]
    fn intern_refuses_hash_collisions() {
        let mut store = PageStore::new();
        store.hasher = Some(|_| PageKey(0xDEAD_BEEF));
        let key = store.intern(&page(0xAA)).unwrap();
        assert_eq!(key, PageKey(0xDEAD_BEEF));
        // Same bytes, same key: a legitimate dedup hit.
        store.intern(&page(0xAA)).unwrap();
        assert_eq!(store.refs(key), 2);
        // Different bytes, same key: refused, store untouched.
        let err = store.intern(&page(0xBB)).unwrap_err();
        assert_eq!(err, CriuError::PageCollision(key));
        assert_eq!(store.refs(key), 2, "failed intern takes no reference");
        assert_eq!(store.unique_pages(), 1);
        assert_eq!(store.copied_bytes(), PAGE_SIZE, "collision copies nothing");
        assert_eq!(store.get(key).unwrap(), &page(0xAA)[..], "original bytes intact");
    }

    /// A colliding page mid-image must not strand references taken for
    /// the pages interned before it.
    #[test]
    fn shared_intern_unwinds_refs_on_collision() {
        let mut store = PageStore::new();
        store.hasher = Some(|bytes| PageKey(u128::from(bytes[0] & 0x0F)));
        let mut image = PagesImage::default();
        image.bytes.extend_from_slice(&page(0x01));
        image.bytes.extend_from_slice(&page(0x02));
        image.bytes.extend_from_slice(&page(0x11)); // collides with 0x01
        let err = SharedPages::intern(&mut store, &image).unwrap_err();
        assert!(matches!(err, CriuError::PageCollision(_)));
        assert_eq!(store.unique_pages(), 0, "partial refs were unwound");
        assert_eq!(store.logical_bytes(), 0);
    }

    /// Regression (PR 7): releasing an unknown key used to be a silent
    /// no-op, masking double-release bugs from the leak invariant.
    #[test]
    fn release_of_unknown_key_is_a_typed_error() {
        let mut store = PageStore::new();
        let never = PageKey::of(&page(0x42));
        assert_eq!(store.release(never), Err(CriuError::UnknownPage(never)));
        let key = store.intern(&page(0x42)).unwrap();
        store.release(key).unwrap();
        assert_eq!(
            store.release(key),
            Err(CriuError::UnknownPage(key)),
            "double release is reported, not swallowed"
        );
    }

    /// A release miss is reported but does not leak the remaining
    /// references in the same [`SharedPages`].
    #[test]
    fn shared_release_reports_miss_but_frees_the_rest() {
        let mut store = PageStore::new();
        let mut image = PagesImage::default();
        image.bytes.extend_from_slice(&page(0x01));
        image.bytes.extend_from_slice(&page(0x02));
        let shared = SharedPages::intern(&mut store, &image).unwrap();
        // Drop the first page's reference behind the SharedPages' back.
        store.release(shared.keys()[0]).unwrap();
        let err = shared.release(&mut store).unwrap_err();
        assert_eq!(err, CriuError::UnknownPage(shared.keys()[0]));
        assert_eq!(store.unique_pages(), 0, "the other reference was still freed");
    }
}
