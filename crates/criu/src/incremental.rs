//! Incremental (dirty-page) checkpointing.
//!
//! The paper's rewrite loop freezes the application for the whole
//! checkpoint→edit→restore round trip. Most of that window is spent
//! copying pages that have not changed since the previous checkpoint.
//! This module reproduces the two CRIU mechanisms that shrink it:
//!
//! * **Incremental dumps** ([`dump_incremental`]): using the kernel's
//!   dirty-page bitmap (the soft-dirty analogue,
//!   [`AddressSpace::dirty_pages`]), a dump emits a [`DeltaImage`] that
//!   references a parent checkpoint and carries page *data* only for the
//!   pages written since that parent was taken. A delta chain
//!   materializes ([`materialize_chain`]) to an image **bit-identical**
//!   to the full dump taken at the same instant.
//! * **Pre-dump** ([`pre_dump`]): the two-phase protocol that copies the
//!   current page contents while the guest is still running, then
//!   freezes only to collect the *dirty residue* — pages written between
//!   the pre-copy and the freeze — plus registers, sigactions and
//!   TCP-repair state. [`PreDump::complete`] reports how many page bytes
//!   actually had to be copied inside the freeze window.
//!
//! Baseline contract: the dirty bitmap means "written since the last
//! [`AddressSpace::mark_clean`] sweep". [`pre_dump`] sweeps as part of
//! its atomic pre-copy; plain dumps do **not** sweep (a failed dump must
//! not invalidate the baseline) — callers establish a new baseline
//! explicitly with [`mark_clean_after_dump`] once a dump is safely
//! stored. [`dump_incremental`]'s `parent` must be the checkpoint that
//! established the current baseline, otherwise the delta under-reports.
//!
//! [`AddressSpace::dirty_pages`]: dynacut_vm::AddressSpace::dirty_pages
//! [`AddressSpace::mark_clean`]: dynacut_vm::AddressSpace::mark_clean

use crate::dump::{dump, dump_many, DumpOptions};
use crate::images::*;
use crate::page_store::{PageKey, PageStore, SharedPages};
use crate::restore::{build_process_shared, RestoreTransaction, StagedProcess};
use crate::CriuError;
use dynacut_obj::PAGE_SIZE;
use dynacut_vm::{Kernel, Pid};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a checkpoint in a [`CheckpointStore`] (sequential).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CkptId(pub u64);

impl std::fmt::Display for CkptId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckpt-{}", self.0)
    }
}

/// The per-process part of a [`DeltaImage`].
///
/// Everything except page *data* is recorded in full (registers, VMAs,
/// descriptors, TCP state are tiny next to memory). The `pagemap` lists
/// **all** populated pages at delta time — so pages dropped or unmapped
/// since the parent disappear on materialization — while `pages` holds
/// data only for the `dirty` subset; clean pages are looked up in the
/// parent at materialization time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaProcessImage {
    /// Registers and signal state (full copy).
    pub core: CoreImage,
    /// VMA list (full copy).
    pub mm: MmImage,
    /// All populated pages at delta time, sorted.
    pub pagemap: PagemapImage,
    /// The subset of `pagemap` whose data ships in `pages`, sorted.
    pub dirty: PagemapImage,
    /// Page data for `dirty` only, in the same order.
    pub pages: PagesImage,
    /// Descriptor table (full copy).
    pub files: FilesImage,
    /// TCP connections (full copy).
    pub tcp: TcpImage,
    /// Mirrors [`ProcessImage::exec_pages_dumped`].
    pub exec_pages_dumped: bool,
}

/// An incremental checkpoint: a parent reference plus per-process deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaImage {
    /// The checkpoint this delta applies on top of.
    pub parent: CkptId,
    /// Per-process deltas, in pid order.
    pub procs: Vec<DeltaProcessImage>,
    /// Kernel time at dump.
    pub time_ns: u64,
}

impl DeltaImage {
    /// Total size of the dirty-page payload, in bytes — the number this
    /// whole module exists to shrink relative to
    /// [`CheckpointImage::pages_bytes`].
    pub fn pages_bytes(&self) -> usize {
        self.procs.iter().map(|p| p.pages.bytes.len()).sum()
    }

    /// Builds a delta by comparing two materialized checkpoints byte for
    /// byte: a page is dirty if it is absent from `parent` or its
    /// contents differ. Useful when the kernel-side dirty bitmap is not
    /// available for the interval (e.g. diffing two stored images);
    /// [`dump_incremental`] is the live-process path.
    pub fn diff(parent_id: CkptId, parent: &CheckpointImage, current: &CheckpointImage) -> Self {
        let page = PAGE_SIZE as usize;
        let procs = current
            .procs
            .iter()
            .map(|image| {
                let parent_proc = parent.proc_image(image.core.pid);
                let mut dirty = PagemapImage::default();
                let mut pages = PagesImage::default();
                for (index, &base) in image.pagemap.pages.iter().enumerate() {
                    let bytes = &image.pages.bytes[index * page..(index + 1) * page];
                    let same_in_parent = parent_proc.is_some_and(|p| {
                        p.pagemap
                            .pages
                            .binary_search(&base)
                            .is_ok_and(|i| &p.pages.bytes[i * page..(i + 1) * page] == bytes)
                    });
                    if !same_in_parent {
                        dirty.pages.push(base);
                        pages.bytes.extend_from_slice(bytes);
                    }
                }
                DeltaProcessImage {
                    core: image.core.clone(),
                    mm: image.mm.clone(),
                    pagemap: image.pagemap.clone(),
                    dirty,
                    pages,
                    files: image.files.clone(),
                    tcp: image.tcp.clone(),
                    exec_pages_dumped: image.exec_pages_dumped,
                }
            })
            .collect();
        DeltaImage {
            parent: parent_id,
            procs,
            time_ns: current.time_ns,
        }
    }
}

/// Applies one delta on top of a materialized parent checkpoint.
///
/// Processes absent from the delta are dropped (they exited before the
/// delta was taken); processes absent from the parent must be fully
/// dirty.
///
/// # Errors
///
/// Fails with [`CriuError::BadImage`] if the delta is internally
/// inconsistent, or [`CriuError::Inconsistent`] if a clean page cannot be
/// found in the parent.
pub fn apply_delta(
    parent: &CheckpointImage,
    delta: &DeltaImage,
) -> Result<CheckpointImage, CriuError> {
    let page = PAGE_SIZE as usize;
    let mut procs = Vec::with_capacity(delta.procs.len());
    for d in &delta.procs {
        if d.pages.bytes.len() != d.dirty.pages.len() * page {
            return Err(CriuError::BadImage(format!(
                "delta pages hold {} bytes but {} dirty pages are listed",
                d.pages.bytes.len(),
                d.dirty.pages.len()
            )));
        }
        for base in &d.dirty.pages {
            if d.pagemap.pages.binary_search(base).is_err() {
                return Err(CriuError::BadImage(format!(
                    "dirty page {base:#x} is not in the delta pagemap"
                )));
            }
        }
        let parent_proc = parent.proc_image(d.core.pid);
        let mut bytes = Vec::with_capacity(d.pagemap.pages.len() * page);
        for &base in &d.pagemap.pages {
            if let Ok(index) = d.dirty.pages.binary_search(&base) {
                bytes.extend_from_slice(&d.pages.bytes[index * page..(index + 1) * page]);
                continue;
            }
            let source = parent_proc.ok_or_else(|| {
                CriuError::Inconsistent(format!(
                    "pid {} is new in the delta but page {base:#x} is not dirty",
                    d.core.pid.0
                ))
            })?;
            let index = source.pagemap.pages.binary_search(&base).map_err(|_| {
                CriuError::Inconsistent(format!(
                    "clean page {base:#x} is missing from the parent checkpoint"
                ))
            })?;
            bytes.extend_from_slice(&source.pages.bytes[index * page..(index + 1) * page]);
        }
        procs.push(ProcessImage {
            core: d.core.clone(),
            mm: d.mm.clone(),
            pagemap: d.pagemap.clone(),
            pages: PagesImage { bytes },
            files: d.files.clone(),
            tcp: d.tcp.clone(),
            exec_pages_dumped: d.exec_pages_dumped,
        });
    }
    Ok(CheckpointImage {
        procs,
        time_ns: delta.time_ns,
    })
}

/// Materializes a delta chain: applies each delta of `deltas`, in order,
/// on top of `parent`. The result is bit-identical to the full dump that
/// would have been taken at the last delta's instant.
///
/// # Errors
///
/// Propagates [`apply_delta`] failures.
pub fn materialize_chain<'a>(
    parent: &CheckpointImage,
    deltas: impl IntoIterator<Item = &'a DeltaImage>,
) -> Result<CheckpointImage, CriuError> {
    let mut current = parent.clone();
    for delta in deltas {
        current = apply_delta(&current, delta)?;
    }
    Ok(current)
}

/// Dumps processes as a [`DeltaImage`] against `parent`, carrying page
/// data only for pages the kernel's dirty bitmap flags — plus pages
/// absent from the parent's pagemap, which have no clean copy to fall
/// back on (e.g. binary-reconstructed text after a restore).
///
/// `parent` must be the checkpoint that established the current clean
/// baseline (the bitmap was swept when it was stored, via [`pre_dump`]
/// or [`mark_clean_after_dump`]). Like [`dump`], this does **not** sweep
/// the bitmap; sweep once the delta is safely stored.
///
/// # Errors
///
/// Fails if any process is missing or not frozen.
pub fn dump_incremental(
    kernel: &mut Kernel,
    pids: &[Pid],
    options: &DumpOptions,
    parent_id: CkptId,
    parent: &CheckpointImage,
) -> Result<DeltaImage, CriuError> {
    let page = PAGE_SIZE as usize;
    let mut procs = Vec::with_capacity(pids.len());
    let mut time_ns = kernel.clock_ns();
    for &pid in pids {
        let dirty_now: BTreeSet<u64> = kernel.process(pid)?.mem.dirty_pages().collect();
        let full = dump(kernel, pid, options)?;
        time_ns = kernel.clock_ns();
        let parent_proc = parent.proc_image(pid);
        let mut dirty = PagemapImage::default();
        let mut pages = PagesImage::default();
        for (index, &base) in full.pagemap.pages.iter().enumerate() {
            let in_parent = parent_proc
                .map(|p| p.pagemap.pages.binary_search(&base).is_ok())
                .unwrap_or(false);
            if dirty_now.contains(&base) || !in_parent {
                dirty.pages.push(base);
                pages
                    .bytes
                    .extend_from_slice(&full.pages.bytes[index * page..(index + 1) * page]);
            }
        }
        procs.push(DeltaProcessImage {
            core: full.core,
            mm: full.mm,
            pagemap: full.pagemap,
            dirty,
            pages,
            files: full.files,
            tcp: full.tcp,
            exec_pages_dumped: full.exec_pages_dumped,
        });
    }
    Ok(DeltaImage {
        parent: parent_id,
        procs,
        time_ns,
    })
}

/// Sweeps the dirty bitmap of each process, establishing the checkpoint
/// just taken as the clean baseline for future [`dump_incremental`]
/// calls. Call this only after the dump is safely stored — a dump that
/// failed (or was discarded) must leave the old baseline intact.
///
/// # Errors
///
/// Fails if a process does not exist.
pub fn mark_clean_after_dump(kernel: &mut Kernel, pids: &[Pid]) -> Result<(), CriuError> {
    if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::MarkClean) {
        return Err(CriuError::FaultInjected(
            dynacut_vm::fault::FaultPhase::MarkClean,
        ));
    }
    for &pid in pids {
        kernel.process_mut(pid)?.mem.mark_clean();
    }
    Ok(())
}

/// Page contents copied by [`pre_dump`] while the guest was running.
#[derive(Debug, Clone)]
pub struct PreDump {
    snapshots: BTreeMap<Pid, BTreeMap<u64, Vec<u8>>>,
}

/// How many page bytes [`PreDump::complete`] copied in each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreDumpStats {
    /// Bytes copied inside the freeze window: the dirty residue plus
    /// pages populated after the pre-copy. This is the term the freeze
    /// window scales with (registers/sigactions/TCP state are O(1)).
    pub frozen_page_bytes: usize,
    /// Bytes served from the pre-copy, i.e. moved while the guest ran.
    pub prewritten_page_bytes: usize,
}

impl PreDumpStats {
    /// Total page payload of the completed dump.
    pub fn total_page_bytes(&self) -> usize {
        self.frozen_page_bytes + self.prewritten_page_bytes
    }
}

/// Phase one of the two-phase dump: copies every populated page of every
/// process **without requiring a freeze**, then sweeps the dirty bitmap
/// so [`PreDump::complete`] can identify the residue written afterwards.
///
/// # Errors
///
/// Fails if a process does not exist.
pub fn pre_dump(kernel: &mut Kernel, pids: &[Pid]) -> Result<PreDump, CriuError> {
    if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::PreDump) {
        return Err(CriuError::FaultInjected(
            dynacut_vm::fault::FaultPhase::PreDump,
        ));
    }
    let mut snapshots = BTreeMap::new();
    for &pid in pids {
        let mem = &mut kernel.process_mut(pid)?.mem;
        let pages: BTreeMap<u64, Vec<u8>> = mem
            .populated_pages()
            .map(|(base, bytes)| (base, bytes.to_vec()))
            .collect();
        mem.mark_clean();
        let page_bytes = (pages.len() * PAGE_SIZE as usize) as u64;
        snapshots.insert(pid, pages);
        kernel.record_flight(
            Some(pid),
            dynacut_vm::EventKind::ProcessPreDumped { page_bytes },
        );
    }
    Ok(PreDump { snapshots })
}

impl PreDump {
    /// Total bytes copied during the pre-dump phase.
    pub fn page_bytes(&self) -> usize {
        self.snapshots.values().map(|pages| pages.len() * PAGE_SIZE as usize).sum()
    }

    /// Phase two: with the processes now frozen, produces a
    /// [`CheckpointImage`] bit-identical to a plain [`dump_many`] at this
    /// instant, copying only the dirty residue inside the freeze window.
    /// Returns the checkpoint plus the phase accounting.
    ///
    /// # Errors
    ///
    /// Fails if any process is missing or not frozen.
    pub fn complete(
        &self,
        kernel: &mut Kernel,
        pids: &[Pid],
        options: &DumpOptions,
    ) -> Result<(CheckpointImage, PreDumpStats), CriuError> {
        let checkpoint = dump_many(kernel, pids, options)?;
        let page = PAGE_SIZE as usize;
        let mut stats = PreDumpStats::default();
        for image in &checkpoint.procs {
            let mem = &kernel.process(image.core.pid)?.mem;
            let snapshot = self.snapshots.get(&image.core.pid);
            for (index, &base) in image.pagemap.pages.iter().enumerate() {
                let prewritten = !mem.page_dirty(base)
                    && snapshot.and_then(|pages| pages.get(&base)).is_some();
                if prewritten {
                    // The clean page the freeze-window copy skips must
                    // match what the pre-dump copied — the invariant the
                    // dirty bitmap guarantees.
                    debug_assert_eq!(
                        snapshot.and_then(|pages| pages.get(&base)).map(|b| &b[..]),
                        Some(&image.pages.bytes[index * page..(index + 1) * page]),
                    );
                    stats.prewritten_page_bytes += page;
                } else {
                    stats.frozen_page_bytes += page;
                }
            }
        }
        Ok((checkpoint, stats))
    }
}

/// One entry of a [`CheckpointStore`]: the checkpoint's *skeleton*
/// (registers, VMAs, pagemaps, descriptors, TCP state — everything but
/// the page bytes) plus one [`SharedPages`] reference set per process.
/// The page payload itself lives, deduplicated, in the store's
/// [`PageStore`].
#[derive(Debug, Clone)]
pub enum StoredCheckpoint {
    /// A self-contained checkpoint.
    Full {
        /// The checkpoint with every process's `pages.bytes` emptied.
        skeleton: CheckpointImage,
        /// Interned page payload, one entry per process, in `procs` order.
        pages: Vec<SharedPages>,
    },
    /// A delta referencing an earlier entry.
    Delta {
        /// The delta with every process's `pages.bytes` emptied.
        skeleton: DeltaImage,
        /// Interned dirty-page payload, one entry per process.
        pages: Vec<SharedPages>,
    },
}

impl StoredCheckpoint {
    /// Logical page payload of this entry — what a store without content
    /// addressing would hold for it (full payload for a full checkpoint,
    /// the dirty payload for a delta).
    pub fn pages_bytes(&self) -> usize {
        match self {
            StoredCheckpoint::Full { pages, .. } | StoredCheckpoint::Delta { pages, .. } => {
                pages.iter().map(SharedPages::pages_bytes).sum()
            }
        }
    }

    fn shared_pages(&self) -> &[SharedPages] {
        match self {
            StoredCheckpoint::Full { pages, .. } | StoredCheckpoint::Delta { pages, .. } => pages,
        }
    }
}

/// The tmpfs-like checkpoint store, extended to hold delta chains and
/// backed by a content-addressed [`PageStore`]: every dump written into
/// the store interns its page payload (N processes running the same
/// binary share one copy of every identical page; repeated cycles dedup
/// against prior checkpoints), and every materialization reads back
/// through it bit-identically.
///
/// Entries get sequential [`CkptId`]s; a delta's parent must already be
/// stored (and not released), so chains always resolve backwards.
/// [`release`] drops an entry and its page references; released ids —
/// and chains through them — fail with [`CriuError::MissingParent`].
///
/// [`release`]: CheckpointStore::release
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    entries: Vec<Option<StoredCheckpoint>>,
    pages: PageStore,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a full checkpoint, interning its page payload, and returns
    /// its id.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::PageCollision`] if any page's content key
    /// is already held by different bytes; references taken for earlier
    /// processes are released again and nothing is stored.
    pub fn put_full(&mut self, mut image: CheckpointImage) -> Result<CkptId, CriuError> {
        let mut pages = Vec::with_capacity(image.procs.len());
        for proc in &mut image.procs {
            match SharedPages::intern(&mut self.pages, &proc.pages) {
                Ok(shared) => {
                    proc.pages.bytes.clear();
                    pages.push(shared);
                }
                Err(err) => {
                    Self::unwind_interned(&mut self.pages, &pages);
                    return Err(err);
                }
            }
        }
        self.entries.push(Some(StoredCheckpoint::Full {
            skeleton: image,
            pages,
        }));
        Ok(CkptId(self.entries.len() as u64 - 1))
    }

    /// Releases references taken for a partially-interned checkpoint
    /// whose later process hit a collision. The refs were just taken, so
    /// misses are impossible; the collision stays the reported error.
    fn unwind_interned(pages: &mut PageStore, taken: &[SharedPages]) {
        for shared in taken.iter().rev() {
            let _ = shared.release(pages);
        }
    }

    /// Stores a delta, interning its dirty-page payload and validating
    /// that its parent exists and has not been released.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::MissingParent`] if the parent id is not
    /// live in the store, or [`CriuError::PageCollision`] if a dirty
    /// page's key is already held by different bytes (nothing is stored).
    pub fn put_delta(&mut self, mut delta: DeltaImage) -> Result<CkptId, CriuError> {
        if self.get(delta.parent).is_none() {
            return Err(CriuError::MissingParent(delta.parent));
        }
        let mut pages = Vec::with_capacity(delta.procs.len());
        for proc in &mut delta.procs {
            match SharedPages::intern(&mut self.pages, &proc.pages) {
                Ok(shared) => {
                    proc.pages.bytes.clear();
                    pages.push(shared);
                }
                Err(err) => {
                    Self::unwind_interned(&mut self.pages, &pages);
                    return Err(err);
                }
            }
        }
        self.entries.push(Some(StoredCheckpoint::Delta {
            skeleton: delta,
            pages,
        }));
        Ok(CkptId(self.entries.len() as u64 - 1))
    }

    /// Looks up a live entry. The entry is a skeleton — page payloads
    /// live in the [`PageStore`]; use [`materialize`] to rehydrate.
    ///
    /// [`materialize`]: CheckpointStore::materialize
    pub fn get(&self, id: CkptId) -> Option<&StoredCheckpoint> {
        self.entries.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Releases a checkpoint: drops its entry and one page-store
    /// reference per page it interned; bytes no other checkpoint shares
    /// are freed. Ids are never reused, so later [`materialize`] or
    /// [`CheckpointStore::put_delta`] calls naming this id (or chaining through it) fail
    /// with [`CriuError::MissingParent`].
    ///
    /// [`materialize`]: CheckpointStore::materialize
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::MissingParent`] if the id is absent or
    /// already released, or [`CriuError::UnknownPage`] if one of its page
    /// references was already gone from the page store (every other
    /// reference is still released).
    pub fn release(&mut self, id: CkptId) -> Result<(), CriuError> {
        let slot = self
            .entries
            .get_mut(id.0 as usize)
            .ok_or(CriuError::MissingParent(id))?;
        let entry = slot.take().ok_or(CriuError::MissingParent(id))?;
        let mut first_miss = None;
        for shared in entry.shared_pages() {
            if let Err(err) = shared.release(&mut self.pages) {
                first_miss.get_or_insert(err);
            }
        }
        match first_miss {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total **logical** page payload across live entries — what a store
    /// without delta chains *and* without content addressing would hold,
    /// the sum a full-dump-only policy would inflate. The physically
    /// held bytes are [`unique_pages_bytes`].
    ///
    /// [`unique_pages_bytes`]: CheckpointStore::unique_pages_bytes
    pub fn stored_pages_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(StoredCheckpoint::pages_bytes)
            .sum()
    }

    /// The content-addressed page store backing this checkpoint store.
    pub fn page_store(&self) -> &PageStore {
        &self.pages
    }

    /// Mutable access to the backing page store, for handle-based
    /// restore paths ([`RestoreTransaction::prepare_shared`]) that
    /// intern a transient payload and release it before returning.
    /// Callers own the refcount discipline: every reference taken
    /// through this must be released through it.
    pub fn page_store_mut(&mut self) -> &mut PageStore {
        &mut self.pages
    }

    /// Physically held page bytes: one copy per distinct page content.
    pub fn unique_pages_bytes(&self) -> usize {
        self.pages.unique_bytes()
    }

    /// Page bytes written through the store (references × page size).
    pub fn logical_pages_bytes(&self) -> usize {
        self.pages.logical_bytes()
    }

    /// Page bytes deduplicated away: `logical − unique`.
    pub fn shared_pages_bytes(&self) -> usize {
        self.pages.shared_bytes()
    }

    /// Dedup win of the content addressing: `logical / unique` (1.0 when
    /// empty).
    pub fn dedup_ratio(&self) -> f64 {
        self.pages.dedup_ratio()
    }

    /// Rehydrates one live entry's page payload from the page store.
    fn rehydrate(&self, entry: &StoredCheckpoint) -> Result<RehydratedCheckpoint, CriuError> {
        match entry {
            StoredCheckpoint::Full { skeleton, pages } => {
                let mut image = skeleton.clone();
                for (proc, shared) in image.procs.iter_mut().zip(pages) {
                    proc.pages = shared.materialize(&self.pages)?;
                }
                Ok(RehydratedCheckpoint::Full(image))
            }
            StoredCheckpoint::Delta { skeleton, pages } => {
                let mut delta = skeleton.clone();
                for (proc, shared) in delta.procs.iter_mut().zip(pages) {
                    proc.pages = shared.materialize(&self.pages)?;
                }
                Ok(RehydratedCheckpoint::Delta(delta))
            }
        }
    }

    /// Materializes the checkpoint `id` by walking its delta chain back
    /// to the nearest full checkpoint, rehydrating every page payload
    /// from the content-addressed store, and replaying the deltas in
    /// order. Bit-identical to the images originally written in.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::MissingParent`] if `id` or any ancestor is
    /// absent or released, or propagates [`apply_delta`] failures.
    pub fn materialize(&self, id: CkptId) -> Result<CheckpointImage, CriuError> {
        let mut chain: Vec<DeltaImage> = Vec::new();
        let mut cursor = id;
        let base = loop {
            match self.get(cursor) {
                None => return Err(CriuError::MissingParent(cursor)),
                Some(entry) => match self.rehydrate(entry)? {
                    RehydratedCheckpoint::Full(image) => break image,
                    RehydratedCheckpoint::Delta(delta) => {
                        cursor = delta.parent;
                        chain.push(delta);
                    }
                },
            }
        };
        materialize_chain(&base, chain.iter().rev())
    }

    /// Dumps frozen processes straight **through** the store: a full
    /// [`dump_many`] whose page payload is interned on the way in.
    /// Returns the new entry's id.
    ///
    /// # Errors
    ///
    /// Propagates [`dump_many`] failures.
    pub fn dump_full(
        &mut self,
        kernel: &mut Kernel,
        pids: &[Pid],
        options: &DumpOptions,
    ) -> Result<CkptId, CriuError> {
        let image = dump_many(kernel, pids, options)?;
        self.put_full(image)
    }

    /// Dumps frozen processes as a delta against a stored parent,
    /// reading the parent back through the page store and interning the
    /// dirty payload on the way in. Returns the new entry's id.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::MissingParent`] if the parent is absent
    /// or released; propagates [`dump_incremental`] failures.
    pub fn dump_delta(
        &mut self,
        kernel: &mut Kernel,
        pids: &[Pid],
        options: &DumpOptions,
        parent_id: CkptId,
    ) -> Result<CkptId, CriuError> {
        let parent = self.materialize(parent_id)?;
        let delta = dump_incremental(kernel, pids, options, parent_id, &parent)?;
        self.put_delta(delta)
    }

    /// Restores the checkpoint `id` **through** the store: the delta
    /// chain and every page payload are read back from the
    /// content-addressed store and the processes are rebuilt with
    /// [`restore_many`] — bit-identical to restoring the original dump.
    ///
    /// # Errors
    ///
    /// Propagates [`materialize`] and [`restore_many`] failures.
    ///
    /// [`materialize`]: CheckpointStore::materialize
    /// [`restore_many`]: crate::restore_many
    pub fn restore(
        &self,
        kernel: &mut Kernel,
        id: CkptId,
        registry: &crate::ModuleRegistry,
    ) -> Result<Vec<Pid>, CriuError> {
        let image = self.materialize(id)?;
        crate::restore_many(kernel, &image, registry)
    }

    /// Restores the checkpoint `id` **zero-copy**: instead of
    /// materializing the page payload, the delta chain is resolved at
    /// the *key* level (newest delta wins per page) and every restored
    /// page is backed by a [`SharedFrame`](dynacut_vm::SharedFrame)
    /// handle straight out of the content-addressed store. No page byte
    /// is copied by the restore itself ([`PageStore::copied_bytes`] does
    /// not move); the first guest write to each page copy-on-writes it
    /// private. Guest-visible state — `state_fingerprint()` included —
    /// is bit-identical to [`restore`](CheckpointStore::restore).
    ///
    /// The commit is transactional exactly like the copying path, and
    /// flushes every restored process's block cache (the
    /// `RestoreTransaction::commit` choke point), so no decoded block
    /// survives the swap.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::MissingParent`] if `id` or any ancestor
    /// is absent or released, [`CriuError::BadImage`] /
    /// [`CriuError::Inconsistent`] on a malformed chain, or propagates
    /// build/commit failures (kernel untouched or rolled back).
    pub fn restore_shared(
        &self,
        kernel: &mut Kernel,
        id: CkptId,
        registry: &crate::ModuleRegistry,
    ) -> Result<Vec<Pid>, CriuError> {
        let resolved = self.resolve_shared(id)?;
        let mut staged: Vec<StagedProcess> = Vec::with_capacity(resolved.len());
        for (image, keys) in &resolved {
            if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::RestoreHandles) {
                return Err(CriuError::FaultInjected(
                    dynacut_vm::fault::FaultPhase::RestoreHandles,
                ));
            }
            staged.push(build_process_shared(
                kernel,
                image,
                registry,
                keys,
                &self.pages,
            )?);
        }
        let committed = RestoreTransaction::from_staged(staged).commit(kernel)?;
        Ok(committed.pids().to_vec())
    }

    /// Promotes the checkpoint `id` — a customized canary image — onto a
    /// *different* replica group: each frozen `target` process is
    /// replaced by a clone of the corresponding canary process built
    /// entirely from shared page handles. This is the fleet-rollout fast
    /// path: no page is dumped from the target, no page byte is copied
    /// out of the store ([`PageStore::copied_bytes`] does not move), and
    /// the rewrite itself is never repeated.
    ///
    /// The canary image is **retargeted** before building: the target
    /// keeps its own pid, parent and descriptor table (captured live,
    /// exactly as [`dump`](crate::dump) would record them), while
    /// memory, registers, sigactions, modules and the syscall filter
    /// come from the canary — the promoted replica *is* the canary,
    /// wearing the target's identity. Targets must match the canary
    /// group one-to-one and be frozen.
    ///
    /// Returns the [`CommittedRestore`](crate::CommittedRestore) receipt
    /// so a rollout engine can [`undo`](crate::CommittedRestore::undo)
    /// the promotion if a later replica
    /// fails — the same PR 2 transaction machinery as a normal cycle.
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::Inconsistent`] on a group-size mismatch,
    /// [`CriuError::Vm`] if a target is missing or not frozen, or
    /// propagates chain-resolution/build/commit failures; the kernel is
    /// untouched or rolled back on every error path.
    pub fn promote_shared(
        &self,
        kernel: &mut Kernel,
        id: CkptId,
        registry: &crate::ModuleRegistry,
        targets: &[Pid],
    ) -> Result<crate::CommittedRestore, CriuError> {
        let resolved = self.resolve_shared(id)?;
        if resolved.len() != targets.len() {
            return Err(CriuError::Inconsistent(format!(
                "canary image holds {} processes but the target group has {}",
                resolved.len(),
                targets.len()
            )));
        }
        let mut staged: Vec<StagedProcess> = Vec::with_capacity(targets.len());
        for ((image, keys), &pid) in resolved.iter().zip(targets) {
            if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::PromoteRestore) {
                return Err(CriuError::FaultInjected(
                    dynacut_vm::fault::FaultPhase::PromoteRestore,
                ));
            }
            let retargeted = Self::retarget(kernel, image, pid)?;
            staged.push(build_process_shared(
                kernel,
                &retargeted,
                registry,
                keys,
                &self.pages,
            )?);
        }
        RestoreTransaction::from_staged(staged).commit(kernel)
    }

    /// Rewrites a canary process image to wear a live target process's
    /// identity: pid, parent, name and descriptor table come from the
    /// (frozen) target; everything else stays the canary's.
    fn retarget(
        kernel: &Kernel,
        canary: &ProcessImage,
        pid: Pid,
    ) -> Result<ProcessImage, CriuError> {
        use dynacut_vm::{FileDesc, ProcState};
        let proc = kernel.process(pid)?;
        if proc.state != ProcState::Frozen {
            return Err(CriuError::Vm(dynacut_vm::VmError::BadProcessState {
                pid,
                expected: "frozen",
            }));
        }
        let files = FilesImage {
            fds: proc
                .fds
                .iter()
                .map(|(fd, desc)| {
                    let entry = match desc {
                        FileDesc::Console => FdImage::Console,
                        FileDesc::File { file, pos } => FdImage::File {
                            path: file.path.clone(),
                            pos: *pos,
                        },
                        FileDesc::Socket => FdImage::Socket,
                        FileDesc::Listener { port } => FdImage::Listener { port: *port },
                        FileDesc::Conn(id) => FdImage::Conn { id: *id },
                    };
                    (fd, entry)
                })
                .collect(),
        };
        Ok(ProcessImage {
            core: CoreImage {
                pid,
                parent: proc.parent,
                name: proc.name.clone(),
                ..canary.core.clone()
            },
            mm: canary.mm.clone(),
            pagemap: canary.pagemap.clone(),
            // Page payloads live in the store; the skeleton carries none.
            pages: PagesImage::default(),
            files,
            // `tcp` only matters for repair-mode buffer transplants on a
            // serialized restore; the target's live connections stay in
            // the net stack untouched.
            tcp: TcpImage::default(),
            exec_pages_dumped: canary.exec_pages_dumped,
        })
    }

    /// Resolves checkpoint `id` to per-process skeletons plus one page
    /// key per pagemap entry, walking the delta chain with newest-wins
    /// semantics — the key-level analogue of [`materialize`], with no
    /// page bytes touched.
    ///
    /// [`materialize`]: CheckpointStore::materialize
    fn resolve_shared(&self, id: CkptId) -> Result<Vec<(ProcessImage, Vec<PageKey>)>, CriuError> {
        // Collect the chain newest-first, stopping at the full base.
        let mut chain: Vec<&StoredCheckpoint> = Vec::new();
        let mut cursor = id;
        loop {
            let entry = self.get(cursor).ok_or(CriuError::MissingParent(cursor))?;
            chain.push(entry);
            match entry {
                StoredCheckpoint::Full { .. } => break,
                StoredCheckpoint::Delta { skeleton, .. } => cursor = skeleton.parent,
            }
        }

        // Replay oldest-first, carrying a per-pid map of page base → key.
        let mut keymaps: BTreeMap<Pid, BTreeMap<u64, PageKey>> = BTreeMap::new();
        let mut skeletons: Vec<(Pid, ProcessImage)> = Vec::new();
        for entry in chain.iter().rev() {
            match entry {
                StoredCheckpoint::Full { skeleton, pages } => {
                    keymaps.clear();
                    skeletons.clear();
                    for (proc, shared) in skeleton.procs.iter().zip(pages) {
                        if shared.page_count() != proc.pagemap.pages.len() {
                            return Err(CriuError::BadImage(format!(
                                "stored checkpoint holds {} page refs but pagemap lists {} pages",
                                shared.page_count(),
                                proc.pagemap.pages.len()
                            )));
                        }
                        let map = proc
                            .pagemap
                            .pages
                            .iter()
                            .copied()
                            .zip(shared.keys().iter().copied())
                            .collect();
                        keymaps.insert(proc.core.pid, map);
                        skeletons.push((proc.core.pid, proc.clone()));
                    }
                }
                StoredCheckpoint::Delta { skeleton, pages } => {
                    let mut next_maps: BTreeMap<Pid, BTreeMap<u64, PageKey>> = BTreeMap::new();
                    let mut next_skeletons: Vec<(Pid, ProcessImage)> = Vec::new();
                    for (d, shared) in skeleton.procs.iter().zip(pages) {
                        if shared.page_count() != d.dirty.pages.len() {
                            return Err(CriuError::BadImage(format!(
                                "stored delta holds {} page refs but {} dirty pages are listed",
                                shared.page_count(),
                                d.dirty.pages.len()
                            )));
                        }
                        let dirty: BTreeMap<u64, PageKey> = d
                            .dirty
                            .pages
                            .iter()
                            .copied()
                            .zip(shared.keys().iter().copied())
                            .collect();
                        let parent_map = keymaps.get(&d.core.pid);
                        let mut map = BTreeMap::new();
                        for &base in &d.pagemap.pages {
                            let key = match dirty.get(&base) {
                                Some(&key) => key,
                                None => *parent_map.and_then(|m| m.get(&base)).ok_or_else(|| {
                                    CriuError::Inconsistent(format!(
                                        "clean page {base:#x} is missing from the parent checkpoint"
                                    ))
                                })?,
                            };
                            map.insert(base, key);
                        }
                        next_maps.insert(d.core.pid, map);
                        next_skeletons.push((
                            d.core.pid,
                            ProcessImage {
                                core: d.core.clone(),
                                mm: d.mm.clone(),
                                pagemap: d.pagemap.clone(),
                                pages: PagesImage::default(),
                                files: d.files.clone(),
                                tcp: d.tcp.clone(),
                                exec_pages_dumped: d.exec_pages_dumped,
                            },
                        ));
                    }
                    // Processes absent from the delta exited before it.
                    keymaps = next_maps;
                    skeletons = next_skeletons;
                }
            }
        }

        skeletons
            .into_iter()
            .map(|(pid, image)| {
                let map = keymaps
                    .get(&pid)
                    .ok_or_else(|| CriuError::Inconsistent(format!("no key map for pid {}", pid.0)))?;
                let keys = image
                    .pagemap
                    .pages
                    .iter()
                    .map(|base| {
                        map.get(base).copied().ok_or_else(|| {
                            CriuError::Inconsistent(format!("no key for page {base:#x}"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((image, keys))
            })
            .collect()
    }
}

/// A store entry with its page payload read back out of the page store.
enum RehydratedCheckpoint {
    Full(CheckpointImage),
    Delta(DeltaImage),
}
