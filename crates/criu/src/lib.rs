//! # dynacut-criu — checkpoint/restore in userspace for the DCVM
//!
//! The paper's process rewriter works on **static process images** dumped
//! by CRIU and edited through an extended CRIT tool (paper §3.2.1, §3.3).
//! This crate reproduces that layer for DCVM processes:
//!
//! * [`ProcessImage`] — the image-file set CRIU produces per process:
//!   `core` (registers, sigactions), `mm` (VMAs), `pagemap` (which pages
//!   are populated), `pages` (raw page bytes), `files` (descriptors) and
//!   `tcp` (repaired connections),
//! * [`dump`]/[`restore`] — checkpoint a frozen process and bring it back,
//!   including live TCP connections (`TCP_REPAIR` analogue),
//! * [`DumpOptions::dump_exec_pages`] — the paper's one-line but essential
//!   CRIU patch: stock CRIU skips file-backed executable pages (they are
//!   reconstructed from the binary on restore), so **rewites to text would
//!   be lost**; DynaCut's patched `criu/mem.c` dumps `PROT_EXEC` pages so
//!   the rewriter's edits survive. Both behaviours are implemented and
//!   tested,
//! * CRIT-style editing ([`ProcessImage::write_mem`],
//!   [`ProcessImage::add_vma`], [`ProcessImage::unmap_range`],
//!   [`ProcessImage::set_sigaction`], …) — the API surface the paper added
//!   to CRIT "to provide easy-to-use APIs for process transformation",
//! * a binary codec ([`CheckpointImage::to_bytes`],
//!   [`DeltaImage::to_bytes`]) so checkpoints can be stored on a
//!   tmpfs-like in-memory store and their sizes reported (Figure 7's
//!   "image size" row),
//! * **incremental checkpointing** ([`dump_incremental`], [`pre_dump`],
//!   [`CheckpointStore`]) — dirty-page deltas and the two-phase pre-dump
//!   protocol that shrink the rewrite freeze window; a delta chain
//!   materializes bit-identically to the full dump taken at the same
//!   instant, and
//! * a textual decoder ([`ProcessImage::decode_text`]) mirroring
//!   `crit decode`.

mod codec;
mod dump;
mod edit;
mod images;
mod incremental;
mod page_store;
mod restore;
mod text;

pub use dump::{dump, dump_many, DumpOptions};
pub use images::{
    CheckpointImage, CoreImage, FdImage, FilesImage, MmImage, ModuleRef, PagemapImage,
    PagesImage, ProcessImage, TcpConnImage, TcpImage, VmaImage,
};
pub use incremental::{
    apply_delta, dump_incremental, mark_clean_after_dump, materialize_chain, pre_dump,
    CheckpointStore, CkptId, DeltaImage, DeltaProcessImage, PreDump, PreDumpStats,
    StoredCheckpoint,
};
pub use page_store::{PageKey, PageStore, SharedPages};
pub use restore::{
    build_process, build_process_shared, restore, restore_chain, restore_many, CommittedRestore,
    ModuleRegistry, RestoreTransaction, StagedProcess,
};

/// Error type shared by dump, restore and editing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CriuError {
    /// The kernel rejected an operation.
    Vm(dynacut_vm::VmError),
    /// An address is not covered by any VMA in the image.
    AddressNotMapped(u64),
    /// A new VMA overlaps an existing one.
    VmaOverlap(u64),
    /// The image is malformed or truncated.
    BadImage(String),
    /// A module named in the image is missing from the registry.
    UnknownModule(String),
    /// A symbol could not be resolved during library injection.
    UnresolvedSymbol(String),
    /// Image editing produced an inconsistent state.
    Inconsistent(String),
    /// A delta references a checkpoint that is not in the store.
    MissingParent(CkptId),
    /// Two pages with distinct contents hashed to the same
    /// [`PageKey`]. Interning the second would hand
    /// later restores the first page's bytes, so intern refuses instead.
    PageCollision(page_store::PageKey),
    /// A page reference was released against a key the store does not
    /// hold — a double release or a release of something never interned.
    /// Silently ignoring it would mask the exact refcount bugs the leak
    /// invariant (`logical_pages_bytes == stored_pages_bytes`) exists to
    /// catch.
    UnknownPage(page_store::PageKey),
    /// An armed test fault fired at this phase (see
    /// [`dynacut_vm::fault`]); only possible under the `fault-injection`
    /// feature.
    FaultInjected(dynacut_vm::fault::FaultPhase),
}

impl std::fmt::Display for CriuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CriuError::Vm(err) => write!(f, "kernel error: {err}"),
            CriuError::AddressNotMapped(addr) => {
                write!(f, "address {addr:#x} is not mapped in the image")
            }
            CriuError::VmaOverlap(addr) => write!(f, "new vma at {addr:#x} overlaps"),
            CriuError::BadImage(reason) => write!(f, "malformed checkpoint image: {reason}"),
            CriuError::UnknownModule(name) => write!(f, "module `{name}` not in registry"),
            CriuError::UnresolvedSymbol(name) => write!(f, "cannot resolve symbol `{name}`"),
            CriuError::Inconsistent(reason) => write!(f, "inconsistent image: {reason}"),
            CriuError::MissingParent(id) => {
                write!(f, "delta parent {id} is not in the checkpoint store")
            }
            CriuError::PageCollision(key) => {
                write!(f, "page hash collision on {key}: distinct contents map to one key")
            }
            CriuError::UnknownPage(key) => {
                write!(f, "{key} is not in the page store (double release or never interned)")
            }
            CriuError::FaultInjected(phase) => {
                write!(f, "injected fault fired at phase `{phase}`")
            }
        }
    }
}

impl std::error::Error for CriuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CriuError::Vm(err) => Some(err),
            _ => None,
        }
    }
}

impl From<dynacut_vm::VmError> for CriuError {
    fn from(err: dynacut_vm::VmError) -> Self {
        CriuError::Vm(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_nonempty() {
        let samples = [
            CriuError::AddressNotMapped(0x10),
            CriuError::VmaOverlap(0x20),
            CriuError::BadImage("short".into()),
            CriuError::UnknownModule("libc".into()),
            CriuError::UnresolvedSymbol("f".into()),
            CriuError::Inconsistent("pagemap".into()),
            CriuError::MissingParent(CkptId(7)),
            CriuError::PageCollision(PageKey::of(b"a")),
            CriuError::UnknownPage(PageKey::of(b"b")),
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }
}
