//! Checkpointing a frozen process into images.

use crate::images::*;
use crate::CriuError;
use dynacut_vm::{FileDesc, Kernel, Pid, ProcState};

/// Options controlling the dump, mirroring the paper's CRIU modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpOptions {
    /// Dump pages of executable (file-backed text) VMAs.
    ///
    /// Stock CRIU skips them — "code pages do not have to be saved because
    /// file-backed memory can be reconstructed … when a restored process
    /// attempts to access the virtual memory again" — which would silently
    /// discard the rewriter's `int3` patches. DynaCut "added an option in
    /// `criu/mem.c` to dump the private and executable pages" (§3.3); set
    /// this to `true` for that behaviour.
    pub dump_exec_pages: bool,
}

impl Default for DumpOptions {
    fn default() -> Self {
        // DynaCut's default: text edits must survive restore.
        DumpOptions {
            dump_exec_pages: true,
        }
    }
}

impl DumpOptions {
    /// Stock-CRIU behaviour: skip executable pages.
    pub fn stock_criu() -> Self {
        DumpOptions {
            dump_exec_pages: false,
        }
    }
}

/// Dumps one frozen process into a [`ProcessImage`], putting its TCP
/// connections into repair mode.
///
/// # Errors
///
/// Fails if the process does not exist or is not frozen.
pub fn dump(
    kernel: &mut Kernel,
    pid: Pid,
    options: &DumpOptions,
) -> Result<ProcessImage, CriuError> {
    if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::Dump) {
        return Err(CriuError::FaultInjected(dynacut_vm::fault::FaultPhase::Dump));
    }
    {
        let proc = kernel.process(pid)?;
        if proc.state != ProcState::Frozen {
            return Err(CriuError::Vm(dynacut_vm::VmError::BadProcessState {
                pid,
                expected: "frozen",
            }));
        }
    }

    // TCP repair first, so buffered bytes are stable while we snapshot.
    let conn_ids = kernel.conn_ids_of(pid)?;
    kernel.repair_connections(&conn_ids);

    let proc = kernel.process(pid)?;

    let core = CoreImage {
        pid: proc.pid,
        parent: proc.parent,
        name: proc.name.clone(),
        regs: proc.cpu.regs,
        pc: proc.cpu.pc,
        flags_bits: proc.cpu.flags.to_bits(),
        sigactions: proc.sigactions,
        signal_depth: proc.signal_depth,
        insns_retired: proc.insns_retired,
        modules: proc
            .modules
            .iter()
            .map(|m| ModuleRef {
                name: m.image.name.clone(),
                base: m.base,
            })
            .collect(),
        syscall_filter: proc.syscall_filter,
    };

    let mm = MmImage {
        vmas: proc
            .mem
            .vmas()
            .iter()
            .map(|v| VmaImage {
                start: v.start,
                end: v.end,
                perms: v.perms,
                name: v.name.clone(),
            })
            .collect(),
    };

    let mut pagemap = PagemapImage::default();
    let mut pages = PagesImage::default();
    for (base, bytes) in proc.mem.populated_pages() {
        let vma = proc.mem.vma_at(base);
        let exec = vma.map(|v| v.perms.exec).unwrap_or(false);
        if exec && !options.dump_exec_pages {
            continue;
        }
        pagemap.pages.push(base);
        pages.bytes.extend_from_slice(bytes);
    }

    let files = FilesImage {
        fds: proc
            .fds
            .iter()
            .map(|(fd, desc)| {
                let entry = match desc {
                    FileDesc::Console => FdImage::Console,
                    FileDesc::File { file, pos } => FdImage::File {
                        path: file.path.clone(),
                        pos: *pos,
                    },
                    FileDesc::Socket => FdImage::Socket,
                    FileDesc::Listener { port } => FdImage::Listener { port: *port },
                    FileDesc::Conn(id) => FdImage::Conn { id: *id },
                };
                (fd, entry)
            })
            .collect(),
    };

    let mut tcp = TcpImage::default();
    for id in &conn_ids {
        if let Some(conn) = kernel.conn_snapshot(*id) {
            tcp.conns.push(TcpConnImage {
                id: *id,
                port: conn.port,
                to_server: conn.to_server.iter().copied().collect(),
                to_client: conn.to_client.iter().copied().collect(),
            });
        }
    }

    kernel.record_flight(
        Some(pid),
        dynacut_vm::EventKind::ProcessDumped {
            page_bytes: pages.bytes.len() as u64,
        },
    );

    Ok(ProcessImage {
        core,
        mm,
        pagemap,
        pages,
        files,
        tcp,
        exec_pages_dumped: options.dump_exec_pages,
    })
}

/// Dumps several processes (e.g. an Nginx master and its worker) into one
/// [`CheckpointImage`].
///
/// # Errors
///
/// Fails if any process is missing or not frozen.
pub fn dump_many(
    kernel: &mut Kernel,
    pids: &[Pid],
    options: &DumpOptions,
) -> Result<CheckpointImage, CriuError> {
    let mut procs = Vec::with_capacity(pids.len());
    for &pid in pids {
        procs.push(dump(kernel, pid, options)?);
    }
    Ok(CheckpointImage {
        procs,
        time_ns: kernel.clock_ns(),
    })
}
