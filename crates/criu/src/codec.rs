//! Binary serialisation of checkpoint images (the protobuf-format
//! analogue; stored on the harness's tmpfs-like in-memory store).
//!
//! Full checkpoints ([`CheckpointImage`]) and incremental deltas
//! ([`DeltaImage`]) share the per-image encoders below; a delta is the
//! same record with a parent reference, a dirty-page index and a
//! dirty-only page payload.

use crate::images::*;
use crate::incremental::{CkptId, DeltaImage, DeltaProcessImage};
use crate::CriuError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dynacut_obj::Perms;
use dynacut_vm::{ConnId, Pid, SigAction, Signal};

const MAGIC: &[u8; 4] = b"DCR1";
const DELTA_MAGIC: &[u8; 4] = b"DCD1";

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_vec(buf: &mut BytesMut, v: &[u8]) {
    buf.put_u64_le(v.len() as u64);
    buf.put_slice(v);
}

fn put_perms(buf: &mut BytesMut, perms: Perms) {
    buf.put_u8((perms.read as u8) | (perms.write as u8) << 1 | (perms.exec as u8) << 2);
}

struct Reader(Bytes);

impl Reader {
    fn u8(&mut self) -> Result<u8, CriuError> {
        if self.0.remaining() < 1 {
            return Err(CriuError::BadImage("truncated u8".into()));
        }
        Ok(self.0.get_u8())
    }
    fn u16(&mut self) -> Result<u16, CriuError> {
        if self.0.remaining() < 2 {
            return Err(CriuError::BadImage("truncated u16".into()));
        }
        Ok(self.0.get_u16_le())
    }
    fn u32(&mut self) -> Result<u32, CriuError> {
        if self.0.remaining() < 4 {
            return Err(CriuError::BadImage("truncated u32".into()));
        }
        Ok(self.0.get_u32_le())
    }
    fn u64(&mut self) -> Result<u64, CriuError> {
        if self.0.remaining() < 8 {
            return Err(CriuError::BadImage("truncated u64".into()));
        }
        Ok(self.0.get_u64_le())
    }
    fn str(&mut self) -> Result<String, CriuError> {
        let len = self.u32()? as usize;
        if self.0.remaining() < len {
            return Err(CriuError::BadImage("truncated string".into()));
        }
        String::from_utf8(self.0.split_to(len).to_vec())
            .map_err(|_| CriuError::BadImage("non-utf8 string".into()))
    }
    fn vec(&mut self) -> Result<Vec<u8>, CriuError> {
        let len = self.u64()? as usize;
        if self.0.remaining() < len {
            return Err(CriuError::BadImage("truncated byte vector".into()));
        }
        Ok(self.0.split_to(len).to_vec())
    }
    fn perms(&mut self) -> Result<Perms, CriuError> {
        let bits = self.u8()?;
        Ok(Perms {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            exec: bits & 4 != 0,
        })
    }
    fn magic(&mut self, expected: &[u8; 4]) -> Result<(), CriuError> {
        if self.0.remaining() < 4 || &self.0.split_to(4)[..] != expected {
            return Err(CriuError::BadImage("bad magic".into()));
        }
        Ok(())
    }
}

impl CheckpointImage {
    /// Serialises the checkpoint to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.time_ns);
        buf.put_u32_le(self.procs.len() as u32);
        for image in &self.procs {
            encode_proc(&mut buf, image);
        }
        buf.to_vec()
    }

    /// Parses a checkpoint previously produced by
    /// [`CheckpointImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::BadImage`] on malformed input.
    pub fn from_bytes(raw: &[u8]) -> Result<CheckpointImage, CriuError> {
        let mut reader = Reader(Bytes::copy_from_slice(raw));
        reader.magic(MAGIC)?;
        let time_ns = reader.u64()?;
        let count = reader.u32()?;
        let mut procs = Vec::with_capacity((count as usize).min(4096));
        for _ in 0..count {
            procs.push(decode_proc(&mut reader)?);
        }
        Ok(CheckpointImage { procs, time_ns })
    }
}

impl DeltaImage {
    /// Serialises the delta to bytes. The layout mirrors
    /// [`CheckpointImage::to_bytes`] with a distinct magic, the parent
    /// id, and a per-process dirty-page index in front of the (dirty-only)
    /// page payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(DELTA_MAGIC);
        buf.put_u64_le(self.parent.0);
        buf.put_u64_le(self.time_ns);
        buf.put_u32_le(self.procs.len() as u32);
        for image in &self.procs {
            buf.put_u8(image.exec_pages_dumped as u8);
            encode_core(&mut buf, &image.core);
            encode_mm(&mut buf, &image.mm);
            encode_pagemap(&mut buf, &image.pagemap);
            encode_pagemap(&mut buf, &image.dirty);
            put_vec(&mut buf, &image.pages.bytes);
            encode_files(&mut buf, &image.files);
            encode_tcp(&mut buf, &image.tcp);
        }
        buf.to_vec()
    }

    /// Parses a delta previously produced by [`DeltaImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails with [`CriuError::BadImage`] on malformed input.
    pub fn from_bytes(raw: &[u8]) -> Result<DeltaImage, CriuError> {
        let mut reader = Reader(Bytes::copy_from_slice(raw));
        reader.magic(DELTA_MAGIC)?;
        let parent = CkptId(reader.u64()?);
        let time_ns = reader.u64()?;
        let count = reader.u32()?;
        let mut procs = Vec::with_capacity((count as usize).min(4096));
        for _ in 0..count {
            let exec_pages_dumped = reader.u8()? != 0;
            let core = decode_core(&mut reader)?;
            let mm = decode_mm(&mut reader)?;
            let pagemap = decode_pagemap(&mut reader)?;
            let dirty = decode_pagemap(&mut reader)?;
            let pages = PagesImage {
                bytes: reader.vec()?,
            };
            let files = decode_files(&mut reader)?;
            let tcp = decode_tcp(&mut reader)?;
            procs.push(DeltaProcessImage {
                core,
                mm,
                pagemap,
                dirty,
                pages,
                files,
                tcp,
                exec_pages_dumped,
            });
        }
        Ok(DeltaImage {
            parent,
            procs,
            time_ns,
        })
    }
}

fn encode_proc(buf: &mut BytesMut, image: &ProcessImage) {
    buf.put_u8(image.exec_pages_dumped as u8);
    encode_core(buf, &image.core);
    encode_mm(buf, &image.mm);
    encode_pagemap(buf, &image.pagemap);
    put_vec(buf, &image.pages.bytes);
    encode_files(buf, &image.files);
    encode_tcp(buf, &image.tcp);
}

fn decode_proc(reader: &mut Reader) -> Result<ProcessImage, CriuError> {
    let exec_pages_dumped = reader.u8()? != 0;
    let core = decode_core(reader)?;
    let mm = decode_mm(reader)?;
    let pagemap = decode_pagemap(reader)?;
    let pages = PagesImage {
        bytes: reader.vec()?,
    };
    let files = decode_files(reader)?;
    let tcp = decode_tcp(reader)?;
    Ok(ProcessImage {
        core,
        mm,
        pagemap,
        pages,
        files,
        tcp,
        exec_pages_dumped,
    })
}

fn encode_core(buf: &mut BytesMut, core: &CoreImage) {
    buf.put_u32_le(core.pid.0);
    match core.parent {
        Some(pid) => {
            buf.put_u8(1);
            buf.put_u32_le(pid.0);
        }
        None => buf.put_u8(0),
    }
    put_str(buf, &core.name);
    for reg in core.regs {
        buf.put_u64_le(reg);
    }
    buf.put_u64_le(core.pc);
    buf.put_u64_le(core.flags_bits);
    for action in core.sigactions {
        buf.put_u64_le(action.handler);
        buf.put_u64_le(action.restorer);
        buf.put_u64_le(action.mask);
    }
    buf.put_u32_le(core.signal_depth);
    buf.put_u64_le(core.insns_retired);
    buf.put_u64_le(core.syscall_filter);
    buf.put_u32_le(core.modules.len() as u32);
    for module in &core.modules {
        put_str(buf, &module.name);
        buf.put_u64_le(module.base);
    }
}

fn decode_core(reader: &mut Reader) -> Result<CoreImage, CriuError> {
    let pid = Pid(reader.u32()?);
    let parent = match reader.u8()? {
        0 => None,
        1 => Some(Pid(reader.u32()?)),
        other => return Err(CriuError::BadImage(format!("bad parent flag {other}"))),
    };
    let name = reader.str()?;
    let mut regs = [0u64; 16];
    for reg in &mut regs {
        *reg = reader.u64()?;
    }
    let pc = reader.u64()?;
    let flags_bits = reader.u64()?;
    let mut sigactions = [SigAction::default(); Signal::COUNT];
    for action in &mut sigactions {
        action.handler = reader.u64()?;
        action.restorer = reader.u64()?;
        action.mask = reader.u64()?;
    }
    let signal_depth = reader.u32()?;
    let insns_retired = reader.u64()?;
    let syscall_filter = reader.u64()?;
    let module_count = reader.u32()?;
    let mut modules = Vec::with_capacity((module_count as usize).min(4096));
    for _ in 0..module_count {
        let name = reader.str()?;
        let base = reader.u64()?;
        modules.push(ModuleRef { name, base });
    }
    Ok(CoreImage {
        pid,
        parent,
        name,
        regs,
        pc,
        flags_bits,
        sigactions,
        signal_depth,
        insns_retired,
        modules,
        syscall_filter,
    })
}

fn encode_mm(buf: &mut BytesMut, mm: &MmImage) {
    buf.put_u32_le(mm.vmas.len() as u32);
    for vma in &mm.vmas {
        buf.put_u64_le(vma.start);
        buf.put_u64_le(vma.end);
        put_perms(buf, vma.perms);
        put_str(buf, &vma.name);
    }
}

fn decode_mm(reader: &mut Reader) -> Result<MmImage, CriuError> {
    let vma_count = reader.u32()?;
    let mut vmas = Vec::with_capacity((vma_count as usize).min(4096));
    for _ in 0..vma_count {
        let start = reader.u64()?;
        let end = reader.u64()?;
        let perms = reader.perms()?;
        let name = reader.str()?;
        vmas.push(VmaImage {
            start,
            end,
            perms,
            name,
        });
    }
    Ok(MmImage { vmas })
}

fn encode_pagemap(buf: &mut BytesMut, pagemap: &PagemapImage) {
    buf.put_u32_le(pagemap.pages.len() as u32);
    for page in &pagemap.pages {
        buf.put_u64_le(*page);
    }
}

fn decode_pagemap(reader: &mut Reader) -> Result<PagemapImage, CriuError> {
    let page_count = reader.u32()?;
    let mut pages = Vec::with_capacity((page_count as usize).min(4096));
    for _ in 0..page_count {
        pages.push(reader.u64()?);
    }
    Ok(PagemapImage { pages })
}

fn encode_files(buf: &mut BytesMut, files: &FilesImage) {
    buf.put_u32_le(files.fds.len() as u32);
    for (fd, entry) in &files.fds {
        buf.put_u32_le(*fd);
        match entry {
            FdImage::Console => buf.put_u8(0),
            FdImage::File { path, pos } => {
                buf.put_u8(1);
                put_str(buf, path);
                buf.put_u64_le(*pos);
            }
            FdImage::Socket => buf.put_u8(2),
            FdImage::Listener { port } => {
                buf.put_u8(3);
                buf.put_u16_le(*port);
            }
            FdImage::Conn { id } => {
                buf.put_u8(4);
                buf.put_u64_le(id.0);
            }
        }
    }
}

fn decode_files(reader: &mut Reader) -> Result<FilesImage, CriuError> {
    let fd_count = reader.u32()?;
    let mut fds = Vec::with_capacity((fd_count as usize).min(4096));
    for _ in 0..fd_count {
        let fd = reader.u32()?;
        let entry = match reader.u8()? {
            0 => FdImage::Console,
            1 => {
                let path = reader.str()?;
                let pos = reader.u64()?;
                FdImage::File { path, pos }
            }
            2 => FdImage::Socket,
            3 => FdImage::Listener {
                port: reader.u16()?,
            },
            4 => FdImage::Conn {
                id: ConnId(reader.u64()?),
            },
            other => return Err(CriuError::BadImage(format!("bad fd kind {other}"))),
        };
        fds.push((fd, entry));
    }
    Ok(FilesImage { fds })
}

fn encode_tcp(buf: &mut BytesMut, tcp: &TcpImage) {
    buf.put_u32_le(tcp.conns.len() as u32);
    for conn in &tcp.conns {
        buf.put_u64_le(conn.id.0);
        buf.put_u16_le(conn.port);
        put_vec(buf, &conn.to_server);
        put_vec(buf, &conn.to_client);
    }
}

fn decode_tcp(reader: &mut Reader) -> Result<TcpImage, CriuError> {
    let conn_count = reader.u32()?;
    let mut conns = Vec::with_capacity((conn_count as usize).min(4096));
    for _ in 0..conn_count {
        let id = ConnId(reader.u64()?);
        let port = reader.u16()?;
        let to_server = reader.vec()?;
        let to_client = reader.vec()?;
        conns.push(TcpConnImage {
            id,
            port,
            to_server,
            to_client,
        });
    }
    Ok(TcpImage { conns })
}
