//! `crit decode`-style textual rendering of images.

use crate::images::{CheckpointImage, FdImage, ProcessImage};
use std::fmt::Write as _;

impl ProcessImage {
    /// Renders the image set as human-readable text, the way
    /// `crit show core.img` / `crit x <dir> mems` do for CRIU images
    /// (paper §3.3).
    pub fn decode_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "core:");
        let _ = writeln!(out, "  pid: {}", self.core.pid.0);
        let _ = writeln!(out, "  name: {}", self.core.name);
        let _ = writeln!(out, "  pc: {:#x}", self.core.pc);
        for (index, reg) in self.core.regs.iter().enumerate() {
            if *reg != 0 {
                let _ = writeln!(out, "  r{index}: {reg:#x}");
            }
        }
        for (signo, action) in self.core.sigactions.iter().enumerate() {
            if action.is_handled() {
                let _ = writeln!(
                    out,
                    "  sigaction[{signo}]: handler={:#x} restorer={:#x} mask={:#x}",
                    action.handler, action.restorer, action.mask
                );
            }
        }
        let _ = writeln!(out, "  modules:");
        for module in &self.core.modules {
            let _ = writeln!(out, "    {} @ {:#x}", module.name, module.base);
        }
        let _ = writeln!(out, "mm: {} vmas", self.mm.vmas.len());
        for vma in &self.mm.vmas {
            let _ = writeln!(
                out,
                "  {:012x}-{:012x} {} {}",
                vma.start, vma.end, vma.perms, vma.name
            );
        }
        let _ = writeln!(
            out,
            "pagemap: {} pages ({} bytes)",
            self.pagemap.pages.len(),
            self.pages.bytes.len()
        );
        let _ = writeln!(out, "files:");
        for (fd, entry) in &self.files.fds {
            let desc = match entry {
                FdImage::Console => "console".to_owned(),
                FdImage::File { path, pos } => format!("file {path} @ {pos}"),
                FdImage::Socket => "socket".to_owned(),
                FdImage::Listener { port } => format!("listener :{port}"),
                FdImage::Conn { id } => format!("{id}"),
            };
            let _ = writeln!(out, "  fd {fd}: {desc}");
        }
        let _ = writeln!(out, "tcp: {} repaired connections", self.tcp.conns.len());
        out
    }
}

impl CheckpointImage {
    /// Renders all process images.
    pub fn decode_text(&self) -> String {
        let mut out = format!("checkpoint @ {} ns, {} processes\n", self.time_ns, self.procs.len());
        for image in &self.procs {
            out.push_str(&image.decode_text());
        }
        out
    }
}
